//! Concurrent stress tests for `ShardedMap::update_cas` / `replace` under
//! mixed workloads — the operations the FT scheduler's recovery table and
//! task-map incarnation swap are built on.
//!
//! The sequential semantics are covered by the proptest model in
//! `map_model.rs`; these tests hammer the same operations from many
//! threads and assert the linearizability-shaped invariants that recovery
//! correctness depends on: no lost `update_cas` read-modify-writes, each
//! replaced value surfacing exactly once, a single `insert_if_absent`
//! winner.

use ft_cmap::ShardedMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

#[test]
fn update_cas_never_loses_increments_under_same_shard_churn() {
    // One shard, so the counter key shares its lock/table with all the
    // churn keys: replace/insert/get interference cannot break update_cas
    // atomicity or lose an increment.
    let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
    m.insert_if_absent(0, || 0);
    const THREADS: u64 = 4;
    const INCS: u64 = 2000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let inc = Arc::clone(&m);
            // Incrementers on key 0.
            s.spawn(move || {
                for _ in 0..INCS {
                    inc.update_cas(0, |cur| (Some(cur.copied().unwrap() + 1), ()));
                }
            });
            let churn = Arc::clone(&m);
            // Churners on other keys in the same shard.
            s.spawn(move || {
                for i in 0..INCS {
                    let k = 1 + ((t * INCS + i) % 64) as i64;
                    churn.insert_if_absent(k, || 0);
                    churn.replace(k, t * INCS + i);
                    let _ = churn.get(k);
                }
            });
        }
    });
    assert_eq!(m.get(0), Some(THREADS * INCS));
    assert_eq!(m.len(), 65, "64 churn keys + the counter");
}

#[test]
fn concurrent_replace_yields_each_value_exactly_once() {
    // Replace returns the previous value atomically: across all threads,
    // every written value must surface exactly once — either as some
    // replace's previous value or as the final map value — and the initial
    // value exactly once. A torn or non-atomic swap would duplicate or
    // drop one.
    let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(2));
    m.insert_if_absent(7, || 0);
    const THREADS: u64 = 8;
    const REPS: u64 = 500;
    let prevs: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            let prevs = Arc::clone(&prevs);
            s.spawn(move || {
                let mut local = Vec::with_capacity(REPS as usize);
                for i in 0..REPS {
                    // Unique nonzero tag per write.
                    let v = 1 + t * REPS + i;
                    local.push(m.replace(7, v).expect("key pre-inserted"));
                }
                prevs.lock().unwrap().extend(local);
            });
        }
    });
    let mut seen = prevs.lock().unwrap().clone();
    seen.push(m.get(7).unwrap());
    seen.sort_unstable();
    let expected: Vec<u64> = (0..=THREADS * REPS).collect();
    assert_eq!(seen, expected, "every value observed exactly once");
}

#[test]
fn insert_if_absent_has_one_winner_per_key() {
    let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(4));
    for key in 0..32i64 {
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                let wins = &wins;
                s.spawn(move || {
                    if m.insert_if_absent(key, || t) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1, "key {key}");
        assert!(m.get(key).unwrap() < 8);
    }
}

#[test]
fn recovery_table_claim_protocol_under_replace_noise() {
    // The `IsRecovering` pattern: for each life, exactly one thread's
    // update_cas claims the recovery, even while other keys in the same
    // shard are being replaced concurrently.
    let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
    for life in 1..=20u64 {
        let claims = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..6 {
                let claimer = Arc::clone(&m);
                let claims = &claims;
                s.spawn(move || {
                    let claimed = claimer.update_cas(99, |cur| match cur {
                        None => (Some(life), true),
                        Some(&stored) if stored + 1 == life => (Some(life), true),
                        Some(_) => (None, false),
                    });
                    if claimed {
                        claims.fetch_add(1, Ordering::Relaxed);
                    }
                });
                let noise = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..200 {
                        noise.insert_if_absent(i % 16, || 0);
                        noise.replace(i % 16, i as u64);
                    }
                });
            }
        });
        assert_eq!(
            claims.load(Ordering::Relaxed),
            1,
            "exactly one claimant for life {life}"
        );
    }
}
