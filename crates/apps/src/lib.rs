//! `ft-apps` — the five SC14 application benchmarks as dynamic task graphs.
//!
//! Section VI evaluates the fault-tolerant scheduler on LCS,
//! Smith-Waterman, Floyd-Warshall, LU decomposition, and Cholesky
//! factorization, all blocked into tiles with the configurations of
//! Table I. Each module here implements one benchmark as a
//! [`nabbit_ft::graph::TaskGraph`] over a versioned
//! [`nabbit_ft::blocks::BlockStore`], plus an independent sequential
//! reference implementation used to verify results (Theorem 1: identical
//! results with and without faults).
//!
//! Memory-reuse strategies follow the paper:
//!
//! | app      | blocks              | versions          | retention |
//! |----------|---------------------|-------------------|-----------|
//! | LCS      | one per tile        | 1 (single-assign) | KeepAll   |
//! | SW       | one per tile column | one per tile row  | KeepLast(2) |
//! | FW       | one per tile        | one per round     | KeepLast(2) (paper) or KeepLast(1) (ablation) |
//! | LU       | one per tile        | one per update    | KeepLast(2) |
//! | Cholesky | one per tile        | one per update    | KeepLast(2) |
//!
//! Where eviction could outrun a reader (SW's diagonal read, FW's row/col
//! broadcasts), the task graphs carry explicit **anti-dependence edges** so
//! that "all uses of a data block causally precede a subsequent definition"
//! (Section II) — these extra edges are what reconciles our edge counts with
//! the paper's Table I (e.g. FW: ~187k data-flow edges + ~122k anti edges ≈
//! the paper's 308,880).

#![warn(missing_docs)]

pub mod cholesky;
pub mod common;
pub mod fw;
pub mod lcs;
pub mod lu;
pub mod sw;

pub use common::{AppConfig, BenchApp, VersionClass};
