//! Convenience builder for explicit (non-dynamic) task graphs.
//!
//! The [`TaskGraph`](crate::graph::TaskGraph) trait is designed for
//! *dynamic* graphs whose structure is a function of the key (the paper's
//! target). For small or irregular graphs known up front — tests, glue
//! pipelines, teaching examples — [`GraphBuilder`] assembles an
//! [`ExplicitGraph`] from nodes and edges, deriving ordered
//! predecessor/successor lists and validating acyclicity and the
//! unique-sink requirement at build time.
//!
//! ```
//! use nabbit_ft::builder::GraphBuilder;
//! use nabbit_ft::scheduler::FtScheduler;
//! use ft_steal::pool::{Pool, PoolConfig};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let hits = Arc::new(AtomicU64::new(0));
//! let h = Arc::clone(&hits);
//! let graph = GraphBuilder::new()
//!     .task(0, {
//!         let h = Arc::clone(&h);
//!         move |_k, _ctx| { h.fetch_add(1, Ordering::Relaxed); Ok(()) }
//!     })
//!     .task(1, {
//!         let h = Arc::clone(&h);
//!         move |_k, _ctx| { h.fetch_add(10, Ordering::Relaxed); Ok(()) }
//!     })
//!     .edge(0, 1)
//!     .build()
//!     .unwrap();
//!
//! let pool = Pool::new(PoolConfig::with_threads(2));
//! let report = FtScheduler::new(Arc::new(graph)).run(&pool);
//! assert!(report.sink_completed);
//! assert_eq!(hits.load(Ordering::Relaxed), 11);
//! ```

use crate::fault::Fault;
use crate::graph::{ComputeCtx, Key, TaskGraph};
use std::collections::HashMap;

/// Boxed compute callback.
pub type ComputeFn = Box<dyn Fn(Key, &ComputeCtx<'_>) -> Result<(), Fault> + Send + Sync>;

/// Errors detected while assembling an [`ExplicitGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// An edge references a key with no registered task.
    UnknownKey(Key),
    /// The same task key was registered twice.
    DuplicateKey(Key),
    /// The same edge was added twice (would corrupt the ordered pred list).
    DuplicateEdge(Key, Key),
    /// The graph has no tasks.
    Empty,
    /// The graph has a cycle (detected via Kahn's algorithm).
    Cyclic,
    /// More than one task has no outgoing edges; the scheduler needs a
    /// unique sink. The offending keys are listed.
    MultipleSinks(Vec<Key>),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownKey(k) => write!(f, "edge references unknown task {k}"),
            BuildError::DuplicateKey(k) => write!(f, "task {k} registered twice"),
            BuildError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            BuildError::Empty => write!(f, "graph has no tasks"),
            BuildError::Cyclic => write!(f, "graph has a dependence cycle"),
            BuildError::MultipleSinks(ks) => write!(f, "multiple sinks: {ks:?}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally assembles an [`ExplicitGraph`].
#[derive(Default)]
pub struct GraphBuilder {
    computes: HashMap<Key, ComputeFn>,
    preds: HashMap<Key, Vec<Key>>,
    succs: HashMap<Key, Vec<Key>>,
    order: Vec<Key>,
    dup_key: Option<Key>,
    dup_edge: Option<(Key, Key)>,
    unknown: Option<Key>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a task with its compute callback.
    pub fn task<F>(mut self, key: Key, compute: F) -> Self
    where
        F: Fn(Key, &ComputeCtx<'_>) -> Result<(), Fault> + Send + Sync + 'static,
    {
        if self.computes.insert(key, Box::new(compute)).is_some() {
            self.dup_key.get_or_insert(key);
        } else {
            self.preds.entry(key).or_default();
            self.succs.entry(key).or_default();
            self.order.push(key);
        }
        self
    }

    /// Register a no-op task (pure synchronization node).
    pub fn noop(self, key: Key) -> Self {
        self.task(key, |_, _| Ok(()))
    }

    /// Add a dependence `from → to` (`to` consumes `from`'s output).
    pub fn edge(mut self, from: Key, to: Key) -> Self {
        if !self.computes.contains_key(&from) {
            self.unknown.get_or_insert(from);
            return self;
        }
        if !self.computes.contains_key(&to) {
            self.unknown.get_or_insert(to);
            return self;
        }
        let preds = self.preds.entry(to).or_default();
        if preds.contains(&from) {
            self.dup_edge.get_or_insert((from, to));
            return self;
        }
        preds.push(from);
        self.succs.entry(from).or_default().push(to);
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<ExplicitGraph, BuildError> {
        if let Some(k) = self.dup_key {
            return Err(BuildError::DuplicateKey(k));
        }
        if let Some((a, b)) = self.dup_edge {
            return Err(BuildError::DuplicateEdge(a, b));
        }
        if let Some(k) = self.unknown {
            return Err(BuildError::UnknownKey(k));
        }
        if self.computes.is_empty() {
            return Err(BuildError::Empty);
        }
        // Unique sink.
        let mut sinks: Vec<Key> = self
            .order
            .iter()
            .copied()
            .filter(|k| self.succs[k].is_empty())
            .collect();
        sinks.sort_unstable();
        let sink = match sinks.as_slice() {
            [one] => *one,
            _ => return Err(BuildError::MultipleSinks(sinks)),
        };
        // Acyclicity via Kahn.
        let mut indeg: HashMap<Key, usize> =
            self.preds.iter().map(|(&k, p)| (k, p.len())).collect();
        let mut ready: Vec<Key> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&k, _)| k)
            .collect();
        let mut seen = 0usize;
        while let Some(k) = ready.pop() {
            seen += 1;
            for &s in &self.succs[&k] {
                let d = indeg.get_mut(&s).expect("registered");
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
        if seen != self.computes.len() {
            return Err(BuildError::Cyclic);
        }
        Ok(ExplicitGraph {
            computes: self.computes,
            preds: self.preds,
            succs: self.succs,
            sink,
        })
    }
}

/// A fully materialized task graph built by [`GraphBuilder`].
pub struct ExplicitGraph {
    computes: HashMap<Key, ComputeFn>,
    preds: HashMap<Key, Vec<Key>>,
    succs: HashMap<Key, Vec<Key>>,
    sink: Key,
}

impl ExplicitGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.computes.len()
    }

    /// True if the graph has no tasks (never: `build` rejects empty).
    pub fn is_empty(&self) -> bool {
        self.computes.is_empty()
    }

    /// All task keys, in registration order lost — sorted.
    pub fn keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.computes.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl TaskGraph for ExplicitGraph {
    fn sink(&self) -> Key {
        self.sink
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        self.preds.get(&key).cloned().unwrap_or_default()
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        self.succs.get(&key).cloned().unwrap_or_default()
    }

    fn compute(&self, key: Key, ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        (self.computes.get(&key).expect("registered task"))(key, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{FaultPlan, Phase};
    use crate::scheduler::FtScheduler;
    use ft_steal::pool::{Pool, PoolConfig};
    use ft_sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn diamond() -> GraphBuilder {
        GraphBuilder::new()
            .noop(0)
            .noop(1)
            .noop(2)
            .noop(3)
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
    }

    #[test]
    fn builds_and_answers_structure() {
        let g = diamond().build().unwrap();
        assert_eq!(g.sink(), 3);
        assert_eq!(g.len(), 4);
        assert_eq!(g.predecessors(3), vec![1, 2]);
        assert_eq!(g.successors(0), vec![1, 2]);
        assert_eq!(g.keys(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new().build().err(), Some(BuildError::Empty));
    }

    #[test]
    fn rejects_duplicate_key() {
        let err = GraphBuilder::new().noop(1).noop(1).build().err();
        assert_eq!(err, Some(BuildError::DuplicateKey(1)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = GraphBuilder::new()
            .noop(0)
            .noop(1)
            .edge(0, 1)
            .edge(0, 1)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::DuplicateEdge(0, 1)));
    }

    #[test]
    fn rejects_unknown_edge_endpoint() {
        let err = GraphBuilder::new().noop(0).edge(0, 9).build().err();
        assert_eq!(err, Some(BuildError::UnknownKey(9)));
    }

    #[test]
    fn rejects_cycle() {
        let err = GraphBuilder::new()
            .noop(0)
            .noop(1)
            .noop(2)
            .edge(0, 1)
            .edge(1, 0)
            .edge(1, 2)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::Cyclic));
    }

    #[test]
    fn rejects_multiple_sinks() {
        let err = GraphBuilder::new()
            .noop(0)
            .noop(1)
            .noop(2)
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .err();
        assert_eq!(err, Some(BuildError::MultipleSinks(vec![1, 2])));
    }

    #[test]
    fn runs_on_ft_scheduler_with_faults() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut b = GraphBuilder::new();
        for k in 0..10i64 {
            let s = Arc::clone(&sum);
            b = b.task(k, move |key, _| {
                s.fetch_add(1 << key, Ordering::Relaxed);
                Ok(())
            });
        }
        // A chain 0 -> 1 -> ... -> 9.
        for k in 0..9i64 {
            b = b.edge(k, k + 1);
        }
        let g = Arc::new(b.build().unwrap());
        let pool = Pool::new(PoolConfig::with_threads(2));
        let plan = Arc::new(FaultPlan::sample(
            &(0..10).collect::<Vec<_>>(),
            4,
            Phase::AfterCompute,
            1,
        ));
        let report = FtScheduler::with_plan(g, plan).run(&pool);
        assert!(report.sink_completed);
        // Re-executions double-count some bits; the *distinct* work is full.
        assert_eq!(report.distinct_tasks_executed, 10);
    }

    #[test]
    fn display_of_errors() {
        assert!(format!("{}", BuildError::Cyclic).contains("cycle"));
        assert!(format!("{}", BuildError::UnknownKey(5)).contains('5'));
        assert!(format!("{}", BuildError::MultipleSinks(vec![1, 2])).contains("[1, 2]"));
    }
}
