//! Deterministic schedule-exploration campaigns.
//!
//! Every test here runs the *unmodified* FT scheduler on the seeded
//! single-threaded [`DetPool`], so each `(graph, fault plan, seed)` triple
//! is one fully replayable interleaving. Recorded traces are validated
//! against the Section-IV guarantee oracle in `Strict` mode (exact
//! counting applies on a deterministic trace), and failing runs dump a
//! JSON report with the seed and fault plan under
//! `target/oracle-failures/`.

use ft_bench::dag_gen::{DagGenConfig, RandDag};
use ft_det::DetPool;
use ft_integration::graphs::{Chain, Grid, ValueDag};
use ft_integration::{assert_oracle_clean, det_traced_run, det_traced_run_opts, oracle_violations};
use ft_steal::Priority;
use nabbit_ft::deadline::DeadlineMonitor;
use nabbit_ft::graph::{Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::{FtScheduler, SchedOpts};
use nabbit_ft::seq;
use nabbit_ft::trace::oracle::{check_result_equivalence, OracleMode};
use nabbit_ft::trace::{Event, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// Values from a sequential fault-free execution (the Theorem 1
/// reference).
fn sequential_reference(widths: &[usize], edges_seed: u64) -> HashMap<Key, u64> {
    let dag = ValueDag::generate(widths, edges_seed);
    seq::run(&dag).unwrap();
    dag.all_keys()
        .into_iter()
        .map(|k| (k, dag.value_of(k).unwrap()))
        .collect()
}

fn phase_of(round: u64) -> Phase {
    match round % 3 {
        0 => Phase::BeforeCompute,
        1 => Phase::AfterCompute,
        _ => Phase::AfterNotify,
    }
}

/// The headline campaign: ≥ 200 seeded (schedule × fault-plan) runs, each
/// oracle-checked and result-checked against the sequential reference.
#[test]
fn two_hundred_seeded_oracle_checked_runs() {
    const SHAPES: &[&[usize]] = &[
        &[1],
        &[3, 3, 3],
        &[1, 4, 1, 4],
        &[5, 2, 5],
        &[2, 2, 2, 2, 2],
        &[6, 6],
        &[1, 1, 1, 1, 1, 1],
    ];
    const ROUNDS_PER_SHAPE: u64 = 30;

    let mut runs = 0u64;
    for (si, shape) in SHAPES.iter().enumerate() {
        let edges_seed = 0x5EED_0001 + si as u64 * 977;
        let reference = sequential_reference(shape, edges_seed);
        for round in 0..ROUNDS_PER_SHAPE {
            let dag = Arc::new(ValueDag::generate(shape, edges_seed));
            let keys = dag.all_keys();
            let phase = phase_of(round);
            // 0%, 25%, 50%, 75% of the tasks fail this round.
            let count = (round as usize % 4) * keys.len() / 4;
            let plan_seed = round.wrapping_mul(1013) + si as u64;
            let plan = Arc::new(FaultPlan::sample(&keys, count, phase, plan_seed));
            let schedule_seed = ((si as u64) << 32) | round;
            let label = format!("campaign-shape{si}-round{round}-{phase:?}");

            let (_, trace, report) = det_traced_run(
                Arc::clone(&dag) as Arc<dyn TaskGraph>,
                Arc::clone(&plan),
                schedule_seed,
            );
            assert!(report.sink_completed, "{label}: sink must complete");
            let dag2 = Arc::clone(&dag);
            let extra = check_result_equivalence(
                &keys,
                |k| dag2.value_of(k),
                |k| reference.get(&k).copied(),
            );
            assert_oracle_clean(
                &label,
                schedule_seed,
                &plan,
                dag.as_ref(),
                &trace,
                &report,
                OracleMode::Strict,
                extra,
            );
            runs += 1;
        }
    }
    assert!(runs >= 200, "campaign must cover >= 200 runs, got {runs}");
}

/// PR-6 campaign: ≥ 200 seeded runs over *irregular* DAGs from the
/// `dag_gen` workload family — (config × fault plan × schedule seed ×
/// pop order) — every one oracle-checked in Strict mode and
/// result-checked against the sequential reference. The FIFO and
/// priority runs share each (config, plan, seed) triple, so a guarantee
/// that held under FIFO but breaks under the hot lane shows up as a
/// paired failure.
#[test]
fn randdag_campaign_two_hundred_runs_both_pop_orders() {
    // Shapes chosen to hit the structural extremes: near-serial,
    // bushy-sparse, dense, wide-shallow, and tall-narrow.
    let configs: Vec<DagGenConfig> = [
        (3usize, 2usize, 0.5f64, 0.5f64),
        (6, 4, 0.15, 0.3),
        (4, 4, 0.8, 0.7),
        (2, 6, 0.4, 0.2),
        (10, 2, 0.3, 1.0),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(layers, width, p, ratio))| {
        let mut cfg = DagGenConfig::new(layers, width, p, 0xDA6_5EED + i as u64 * 131);
        cfg.critical_ratio = ratio;
        cfg.wcet_max = 8;
        cfg
    })
    .collect();
    const ROUNDS_PER_CONFIG: u64 = 20;

    let mut runs = 0u64;
    for (ci, cfg) in configs.iter().enumerate() {
        let reference = {
            let dag = RandDag::generate(cfg.clone());
            seq::run(&dag).unwrap();
            dag.all_keys()
                .into_iter()
                .map(|k| (k, dag.value_of(k).unwrap()))
                .collect::<HashMap<Key, u64>>()
        };
        for round in 0..ROUNDS_PER_CONFIG {
            for use_priority in [false, true] {
                let dag = Arc::new(RandDag::generate(cfg.clone()));
                let keys = dag.all_keys();
                let phase = phase_of(round);
                // 0%, 25%, 50%, 75% of the tasks fail this round.
                let count = (round as usize % 4) * keys.len() / 4;
                let plan_seed = round.wrapping_mul(2027) + ci as u64;
                let plan = Arc::new(FaultPlan::sample(&keys, count, phase, plan_seed));
                let schedule_seed = ((ci as u64) << 32) | (round << 1) | use_priority as u64;
                let mode = if use_priority { "prio" } else { "fifo" };
                let label = format!("randdag-cfg{ci}-round{round}-{phase:?}-{mode}");

                let monitor = Arc::new(DeadlineMonitor::new());
                let opts = SchedOpts {
                    priority: use_priority.then(|| dag.priority_fn()),
                    deadline: Some(Arc::clone(&monitor)),
                };
                let (_, trace, report) = det_traced_run_opts(
                    Arc::clone(&dag) as Arc<dyn TaskGraph>,
                    Arc::clone(&plan),
                    schedule_seed,
                    opts,
                );
                assert!(report.sink_completed, "{label}: sink must complete");
                assert_eq!(
                    monitor.len(),
                    dag.task_count(),
                    "{label}: every task records exactly one first completion"
                );
                let dag2 = Arc::clone(&dag);
                let extra = check_result_equivalence(
                    &keys,
                    |k| dag2.value_of(k),
                    |k| reference.get(&k).copied(),
                );
                assert_oracle_clean(
                    &label,
                    schedule_seed,
                    &plan,
                    dag.as_ref(),
                    &trace,
                    &report,
                    OracleMode::Strict,
                    extra,
                );
                runs += 1;
            }
        }
    }
    assert!(runs >= 200, "campaign must cover >= 200 runs, got {runs}");
}

/// Mutation test (acceptance criterion): invert the priority comparator —
/// boost exactly the *non*-critical tasks — and verify the deadline
/// metric regresses while G1–G6 still hold. On the deterministic pool the
/// metric is `DeadlineMonitor::mean_seq` over the Hard tasks (their mean
/// completion index): a pure function of the schedule seed, so the
/// comparison is noise-free. The intact priority function must place Hard
/// tasks strictly earlier on average than the inverted one; correctness
/// guarantees must be indifferent to the pop order either way.
#[test]
fn inverted_priority_regresses_deadline_metric_but_not_guarantees() {
    let mut cfg = DagGenConfig::new(8, 5, 0.12, 0x1BAD_C0DE);
    cfg.critical_ratio = 0.3;
    cfg.wcet_max = 8;
    const SEEDS: u64 = 32;

    let run_with = |prio_fn: nabbit_ft::scheduler::PriorityFn, seed: u64, label: &str| -> f64 {
        let dag = Arc::new(RandDag::generate(cfg.clone()));
        let keys = dag.all_keys();
        let plan = Arc::new(FaultPlan::sample(&keys, 3, Phase::AfterCompute, seed));
        let monitor = Arc::new(DeadlineMonitor::new());
        let opts = SchedOpts {
            priority: Some(prio_fn),
            deadline: Some(Arc::clone(&monitor)),
        };
        let (_, trace, report) = det_traced_run_opts(
            Arc::clone(&dag) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
            opts,
        );
        assert!(report.sink_completed, "{label} seed {seed}");
        assert_oracle_clean(
            label,
            seed,
            &plan,
            dag.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            Vec::new(),
        );
        monitor.mean_seq(&dag.hard_tasks())
    };

    let probe = RandDag::generate(cfg.clone());
    assert!(
        !probe.hard_tasks().is_empty() && probe.critical_tasks().len() < probe.task_count() - 1,
        "config must leave both critical and non-critical tasks to reorder"
    );

    let mut good_total = 0.0f64;
    let mut bad_total = 0.0f64;
    for seed in 0..SEEDS {
        let dag = RandDag::generate(cfg.clone());
        good_total += run_with(dag.priority_fn(), seed, "prio-mutation-good");
        // The broken comparator: exactly inverted — critical tasks wait
        // behind everything else.
        let correct = dag.priority_fn();
        let inverted: nabbit_ft::scheduler::PriorityFn = Arc::new(move |k| match correct(k) {
            Priority::High => Priority::Normal,
            Priority::Normal => Priority::High,
        });
        bad_total += run_with(inverted, seed, "prio-mutation-inverted");
    }
    let good_mean = good_total / SEEDS as f64;
    let bad_mean = bad_total / SEEDS as f64;
    assert!(
        good_mean < bad_mean,
        "inverted priority must regress the mean Hard-task completion index: \
         intact {good_mean:.2} vs inverted {bad_mean:.2} — if this fails, the \
         deadline metric cannot detect a broken comparator"
    );
}

/// The whole point of the deterministic pool: the same (graph, fault
/// plan, seed) triple replays as the identical event sequence, and
/// different seeds genuinely explore different interleavings.
#[test]
fn same_triple_replays_identically_and_seeds_differ() {
    let shape: &[usize] = &[3, 3, 3];
    let run_events = |schedule_seed: u64| -> Vec<Event> {
        let dag = Arc::new(ValueDag::generate(shape, 42));
        let keys = dag.all_keys();
        let plan = Arc::new(FaultPlan::sample(&keys, 3, Phase::AfterCompute, 7));
        let (_, trace, report) =
            det_traced_run(Arc::clone(&dag) as Arc<dyn TaskGraph>, plan, schedule_seed);
        assert!(report.sink_completed);
        trace.events().into_iter().map(|te| te.event).collect()
    };

    assert_eq!(
        run_events(123),
        run_events(123),
        "same (graph, plan, seed) must replay the identical trace"
    );

    let mut distinct: Vec<Vec<Event>> = Vec::new();
    for seed in 0..8 {
        let evs = run_events(seed);
        if !distinct.contains(&evs) {
            distinct.push(evs);
        }
    }
    assert!(
        distinct.len() >= 2,
        "8 seeds explored only {} distinct interleavings",
        distinct.len()
    );
}

/// Mutation test (acceptance criterion): deliberately break the notify
/// bit vector — duplicate notifications decrement the join counter, the
/// classic bug Guarantee 3 exists to prevent — and verify the oracle
/// flags the resulting traces as G3 violations. The same campaign with
/// the bit vector intact must be clean, so the detection is the oracle's
/// doing, not noise.
#[test]
fn broken_notify_bitvec_is_caught_by_oracle() {
    // Before-compute faults on the multi-predecessor tasks of a 3×3 grid:
    // the failed task's old and new incarnations both register with their
    // predecessors, so many schedules deliver duplicate notifications.
    let sites = || [4, 5, 7, 8].map(|k: Key| FaultSite::once(k, Phase::BeforeCompute));
    const SEEDS: u64 = 96;

    let mut caught = 0u64;
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::new(sites()));
        let trace = Arc::new(Trace::new());
        let sched = FtScheduler::with_plan_traced(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            Arc::clone(&trace),
        );
        sched.sabotage_notify_bitvec();
        let report = sched.run(&DetPool::new(seed));
        let violations = oracle_violations(g.as_ref(), &trace, &report, OracleMode::Strict);
        if violations.iter().any(|v| v.guarantee == "G3") {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "sabotaged bit vector produced no G3 violation in {SEEDS} seeds — \
         the oracle would miss a broken implementation"
    );

    // Control: the intact scheduler is clean on every one of those seeds.
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::new(sites()));
        let (_, trace, report) = det_traced_run(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
        );
        assert!(report.sink_completed);
        assert_oracle_clean(
            "mutation-control-grid3",
            seed,
            &plan,
            g.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            Vec::new(),
        );
    }
}

/// Mutation test for the PR-8 inline-chain path: break the bit-vector
/// gate **only on the inline delivery site** (`notify_entry`'s in-place
/// chain notification) and verify the oracle flags the resulting traces
/// as G3 violations. Recovery re-registers a failed task's incarnations
/// with its predecessors, so the predecessor's drain — which runs through
/// the inline gate — delivers duplicate notifications; with the gate
/// sabotaged each duplicate decrements the join counter. The spawned
/// delivery path (`notify_once`) stays intact, so a catch here proves the
/// campaigns exercise the inline path specifically, not just the legacy
/// spawn path.
#[test]
fn broken_inline_chain_is_caught_by_oracle() {
    // Same fault geometry as the bit-vector mutation above: before-compute
    // faults on the multi-predecessor tasks of a 3×3 grid maximize
    // duplicate-notification schedules.
    let sites = || [4, 5, 7, 8].map(|k: Key| FaultSite::once(k, Phase::BeforeCompute));
    const SEEDS: u64 = 96;

    let mut caught = 0u64;
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::new(sites()));
        let trace = Arc::new(Trace::new());
        let sched = FtScheduler::with_plan_traced(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            Arc::clone(&trace),
        );
        sched.sabotage_inline_chain();
        let report = sched.run(&DetPool::new(seed));
        let violations = oracle_violations(g.as_ref(), &trace, &report, OracleMode::Strict);
        if violations.iter().any(|v| v.guarantee == "G3") {
            caught += 1;
        }
    }
    assert!(
        caught > 0,
        "sabotaged inline-chain gate produced no G3 violation in {SEEDS} seeds — \
         the oracle would miss a broken inline-notify path"
    );

    // Control: the intact scheduler (inline chains enabled, gate intact)
    // is clean on every one of those seeds.
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::new(sites()));
        let (_, trace, report) = det_traced_run(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
        );
        assert!(report.sink_completed);
        assert_oracle_clean(
            "inline-chain-mutation-control-grid3",
            seed,
            &plan,
            g.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            Vec::new(),
        );
    }
}

/// Mutation test for the PR-9 lock-free notify cells: drop a single
/// Release publish (the sabotaged registrant claims its slot but never
/// stores its key, and skips the self-delivery fallback too). The drain
/// scan sees an empty cell and skips it, so one notification is lost and
/// the successor's join counter never reaches zero: the run quiesces with
/// tasks stranded mid-graph and the sink incomplete, which the oracle
/// flags as a G4 violation. The same campaign with the publish intact
/// must be clean, so the detection is the oracle's doing, not noise.
///
/// The campaign runs **fault-free**: an injected fault on the affected
/// predecessor would replace it and rebuild its notify cells
/// (`ReinitNotifyEntry`), re-registering the stranded successor and
/// thereby *masking* the dropped publish — recovery repairing exactly
/// this damage is Guarantee 4 working as designed, not a missed bug.
#[test]
fn broken_notify_cell_is_caught_by_oracle() {
    const SEEDS: u64 = 96;

    let mut caught = 0u64;
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::none());
        let trace = Arc::new(Trace::new());
        let sched = FtScheduler::with_plan_traced(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            Arc::clone(&trace),
        );
        sched.sabotage_notify_cell();
        let report = sched.run(&DetPool::new(seed));
        // Do NOT assert sink_completed here — the whole point is that the
        // sabotaged run strands the graph.
        let violations = oracle_violations(g.as_ref(), &trace, &report, OracleMode::Strict);
        if violations
            .iter()
            .any(|v| v.guarantee == "G4" || v.guarantee == "G3")
        {
            caught += 1;
        }
    }
    assert_eq!(
        caught, SEEDS,
        "dropped notify-cell publish must strand the graph under every \
         schedule — the oracle would miss a lost notification"
    );

    // Control: the intact scheduler is clean on every one of those seeds.
    for seed in 0..SEEDS {
        let g = Arc::new(Grid { n: 3 });
        let plan = Arc::new(FaultPlan::none());
        let (_, trace, report) = det_traced_run(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
        );
        assert!(report.sink_completed);
        assert_oracle_clean(
            "notify-cell-mutation-control-grid3",
            seed,
            &plan,
            g.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            Vec::new(),
        );
    }
}

/// Guarantee 6 at the integration level: sites with `fires = 3` fail the
/// original incarnation and its first two recoveries; every incarnation's
/// failure is recovered with a strictly increasing life number.
#[test]
fn multi_fire_faults_recursively_recovered_under_many_schedules() {
    const FAILED: [Key; 3] = [5, 17, 29];
    for seed in 0..24u64 {
        let g = Arc::new(Chain { len: 40 });
        let plan = Arc::new(FaultPlan::new(FAILED.map(|k| FaultSite {
            key: k,
            phase: Phase::AfterCompute,
            fires: 3,
        })));
        let (_, trace, report) = det_traced_run(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
        );
        assert!(report.sink_completed, "seed {seed}");
        assert_eq!(report.injected, 9, "seed {seed}");
        assert_eq!(
            report.re_executions, 9,
            "seed {seed}: three re-executions per failed task"
        );
        assert_eq!(
            report.recoveries, 9,
            "seed {seed}: one recovery per incarnation failure"
        );
        for key in FAILED {
            let lives: Vec<u64> = trace
                .events_for(key)
                .iter()
                .filter_map(|te| match te.event {
                    Event::RecoveryStarted { new_life, .. } => Some(new_life),
                    _ => None,
                })
                .collect();
            assert_eq!(
                lives,
                vec![2, 3, 4],
                "seed {seed}: task {key} must be recovered once per incarnation"
            );
        }
        assert_oracle_clean(
            "multi-fire-chain40",
            seed,
            &plan,
            g.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            Vec::new(),
        );
    }
}

/// An after-notify fault is only observable through a *later consumer*
/// that still needs the task's data or descriptor (Section VI). Depending
/// on the schedule the consumer trips over either the poisoned descriptor
/// (at registration, recovery only) or the poisoned *data block* (at
/// compute, recovery + ResetNode); across 24 seeds the data path must
/// occur, and the final values always match the sequential reference.
#[test]
fn after_notify_fault_observed_through_later_consumer() {
    let shape: &[usize] = &[1, 2, 2];
    let reference = sequential_reference(shape, 7);
    let mut data_path_runs = 0u64;
    for seed in 0..24u64 {
        let dag = Arc::new(ValueDag::generate(shape, 7));
        let keys = dag.all_keys();
        let plan = Arc::new(FaultPlan::single(0, Phase::AfterNotify));
        let (_, trace, report) = det_traced_run(
            Arc::clone(&dag) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            seed,
        );
        assert!(report.sink_completed, "seed {seed}");
        assert_eq!(report.injected, 1, "seed {seed}");
        assert!(
            report.recoveries >= 1,
            "seed {seed}: a later consumer of task 0 must observe the \
             after-notify fault and trigger recovery"
        );
        let observed_through_data = trace.events().iter().any(|te| {
            matches!(
                te.event,
                Event::FaultObserved {
                    source: 0,
                    kind: nabbit_ft::fault::FaultKind::Data
                }
            )
        });
        if observed_through_data {
            data_path_runs += 1;
            assert!(
                report.resets >= 1,
                "seed {seed}: a consumer that read poisoned data must \
                 re-explore via ResetNode"
            );
        }
        let dag2 = Arc::clone(&dag);
        let extra =
            check_result_equivalence(&keys, |k| dag2.value_of(k), |k| reference.get(&k).copied());
        assert_oracle_clean(
            "after-notify-consumer",
            seed,
            &plan,
            dag.as_ref(),
            &trace,
            &report,
            OracleMode::Strict,
            extra,
        );
    }
    assert!(
        data_path_runs >= 1,
        "no schedule exercised observation through the poisoned data block"
    );
}
