//! Bad fixture for L1: an `unsafe` block with no SAFETY comment.

fn deref(p: *const u32) -> u32 {
    // A comment that is not a safety justification.
    unsafe { *p }
}
