//! Concurrent-instance campaigns for the resident [`GraphService`].
//!
//! One long-lived executor serves a *stream* of graph submissions; these
//! tests interleave many instances — clean and fault-planned — over the
//! deterministic [`DetPool`] (per-instance G1–G6 oracle in `Strict` mode,
//! replayable cross-instance schedules) and over the real work-stealing
//! pool (oracle in `Concurrent` mode), always checking per-instance
//! result equivalence against the sequential reference and that
//! backpressure keeps the in-flight instance count bounded.

use ft_det::DetPool;
use ft_integration::assert_oracle_clean;
use ft_integration::graphs::ValueDag;
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::{
    BackpressureReason, FtScheduler, GraphService, InstanceTicket, ServiceConfig,
};
use nabbit_ft::seq;
use nabbit_ft::trace::oracle::{check_result_equivalence, OracleMode};
use nabbit_ft::trace::{Event, Trace};
use std::collections::HashMap;
use std::sync::Arc;

/// Mixed workload shapes for the multi-tenant campaigns.
const SHAPES: &[&[usize]] = &[
    &[3, 3, 3],
    &[1, 4, 1, 4],
    &[5, 2, 5],
    &[2, 2, 2, 2, 2],
    &[6, 6],
];

fn phase_of(i: u64) -> Phase {
    match i % 3 {
        0 => Phase::BeforeCompute,
        1 => Phase::AfterCompute,
        _ => Phase::AfterNotify,
    }
}

/// Values from a sequential fault-free execution (the Theorem 1 reference).
fn sequential_reference(widths: &[usize], edges_seed: u64) -> HashMap<Key, u64> {
    let dag = ValueDag::generate(widths, edges_seed);
    seq::run(&dag).unwrap();
    dag.all_keys()
        .into_iter()
        .map(|k| (k, dag.value_of(k).unwrap()))
        .collect()
}

/// One prepared tenant: its private graph, plan, trace and scheduler.
struct Tenant {
    dag: Arc<ValueDag>,
    keys: Vec<Key>,
    plan: Arc<FaultPlan>,
    trace: Arc<Trace>,
    sched: Arc<FtScheduler>,
    faulted: bool,
    shape_idx: usize,
}

/// Build tenant `i` of a campaign round: odd tenants get a sampled fault
/// plan (mixed faulty/clean population), every tenant its own engine.
fn make_tenant(i: u64, round: u64) -> Tenant {
    let shape_idx = (i as usize) % SHAPES.len();
    let edges_seed = 0x5E2_0001 + shape_idx as u64 * 977;
    let dag = Arc::new(ValueDag::generate(SHAPES[shape_idx], edges_seed));
    let keys = dag.all_keys();
    let faulted = i % 2 == 1;
    let count = if faulted {
        (1 + (i as usize + round as usize) % 3) * keys.len() / 4
    } else {
        0
    };
    let plan = Arc::new(FaultPlan::sample(
        &keys,
        count,
        phase_of(i + round),
        i.wrapping_mul(1013) + round,
    ));
    let trace = Arc::new(Trace::new());
    let sched = FtScheduler::with_plan_traced(
        Arc::clone(&dag) as Arc<dyn TaskGraph>,
        Arc::clone(&plan),
        Arc::clone(&trace),
    );
    Tenant {
        dag,
        keys,
        plan,
        trace,
        sched,
        faulted,
        shape_idx,
    }
}

/// Oracle + result-equivalence + isolation checks for one finished tenant.
fn check_tenant(
    label: &str,
    seed: u64,
    tenant: &Tenant,
    report: &nabbit_ft::metrics::RunReport,
    mode: OracleMode,
    references: &HashMap<usize, HashMap<Key, u64>>,
) {
    assert!(report.sink_completed, "{label}: sink must complete");
    if !tenant.faulted {
        // Recovery stays localized to the faulted epochs: a clean tenant
        // co-scheduled with faulty ones observes no fault activity at all
        // in its own namespace.
        assert_eq!(report.injected, 0, "{label}: clean tenant saw injections");
        assert_eq!(report.recoveries, 0, "{label}: clean tenant recovered");
        assert_eq!(report.re_executions, 0, "{label}: clean tenant re-executed");
    }
    let reference = &references[&tenant.shape_idx];
    let dag = Arc::clone(&tenant.dag);
    let extra = check_result_equivalence(
        &tenant.keys,
        |k| dag.value_of(k),
        |k| reference.get(&k).copied(),
    );
    assert_oracle_clean(
        label,
        seed,
        &tenant.plan,
        tenant.dag.as_ref(),
        &tenant.trace,
        report,
        mode,
        extra,
    );
}

fn shape_references() -> HashMap<usize, HashMap<Key, u64>> {
    (0..SHAPES.len())
        .map(|si| {
            let edges_seed = 0x5E2_0001 + si as u64 * 977;
            (si, sequential_reference(SHAPES[si], edges_seed))
        })
        .collect()
}

/// The headline acceptance campaign: ≥ 8 concurrently submitted instances
/// (mixed faulty/clean) interleaved by one deterministic pool, each epoch
/// passing the per-instance G1–G6 oracle in Strict mode with its own
/// intact `RunReport`.
#[test]
fn det_concurrent_instances_oracle_campaign() {
    const TENANTS: u64 = 10;
    const ROUNDS: u64 = 8;
    let references = shape_references();
    for round in 0..ROUNDS {
        let pool = DetPool::new(0xC0FFEE + round);
        let service = GraphService::with_config(
            &pool,
            ServiceConfig {
                max_in_flight: TENANTS as usize + 2,
                queued_jobs_watermark: u64::MAX,
            },
        );
        let tenants: Vec<Tenant> = (0..TENANTS).map(|i| make_tenant(i, round)).collect();
        let tickets: Vec<InstanceTicket<_>> = tenants
            .iter()
            .map(|t| service.submit(&t.sched).expect("admission within budget"))
            .collect();
        assert_eq!(
            service.in_flight(),
            TENANTS,
            "all tenants admitted and in flight before the drain"
        );
        // One seeded drain interleaves the jobs of every instance.
        service.drive();
        for (ticket, tenant) in tickets.into_iter().zip(&tenants) {
            assert!(ticket.is_done(), "instance finished by the drain");
            let label = format!(
                "service-det-round{round}-tenant{}-{}",
                ticket.id(),
                if tenant.faulted { "faulted" } else { "clean" }
            );
            let out = ticket.wait();
            check_tenant(
                &label,
                0xC0FFEE + round,
                tenant,
                &out.report,
                OracleMode::Strict,
                &references,
            );
            assert!(out.jobs.jobs_spawned > 0 && out.jobs.jobs_executed == out.jobs.jobs_spawned);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, TENANTS);
        assert_eq!(stats.completed, TENANTS);
        assert_eq!(stats.in_flight, 0);
    }
}

/// Same mixed-tenant population on the real work-stealing pool: per-epoch
/// oracle in Concurrent mode, per-epoch result equivalence, reports intact.
#[test]
fn real_pool_concurrent_instances_oracle() {
    const TENANTS: u64 = 12;
    let references = shape_references();
    let pool = Pool::new(PoolConfig::with_threads(4));
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: TENANTS as usize,
            queued_jobs_watermark: u64::MAX,
        },
    );
    let tenants: Vec<Tenant> = (0..TENANTS).map(|i| make_tenant(i, 77)).collect();
    let tickets: Vec<InstanceTicket<_>> = tenants
        .iter()
        .map(|t| service.submit(&t.sched).expect("admission within budget"))
        .collect();
    for (ticket, tenant) in tickets.into_iter().zip(&tenants) {
        let label = format!(
            "service-pool-tenant{}-{}",
            ticket.id(),
            if tenant.faulted { "faulted" } else { "clean" }
        );
        let out = ticket.wait();
        check_tenant(
            &label,
            0,
            tenant,
            &out.report,
            OracleMode::Concurrent,
            &references,
        );
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, TENANTS);
    assert_eq!(stats.completed, TENANTS);
    assert_eq!(stats.in_flight, 0);
}

/// Backpressure: the bounded in-flight budget rejects the N+1th
/// submission with an explicit error, and a slot freed by a quiesced
/// instance re-admits.
#[test]
fn backpressure_in_flight_budget() {
    let pool = DetPool::new(9);
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: 3,
            queued_jobs_watermark: u64::MAX,
        },
    );
    let tenants: Vec<Tenant> = (0..4).map(|i| make_tenant(i, 0)).collect();
    let mut tickets = Vec::new();
    for t in &tenants[..3] {
        tickets.push(service.submit(&t.sched).expect("within budget"));
    }
    let bp = service
        .submit(&tenants[3].sched)
        .expect_err("budget exhausted");
    assert_eq!(bp.reason, BackpressureReason::InFlightBudget);
    assert_eq!(bp.in_flight, 3);
    assert_eq!(service.stats().rejected, 1);

    service.drive();
    for ticket in tickets {
        assert!(ticket.wait().report.sink_completed);
    }
    assert_eq!(service.in_flight(), 0, "quiesced instances freed slots");
    let ticket = service
        .submit(&tenants[3].sched)
        .expect("slot available after quiescence");
    service.drive();
    assert!(ticket.wait().report.sink_completed);
}

/// Backpressure: the queued-jobs watermark refuses admission while the
/// executor's queues are deep, independent of the instance budget.
#[test]
fn backpressure_queue_watermark() {
    let pool = DetPool::new(11);
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: 64,
            queued_jobs_watermark: 1,
        },
    );
    let tenants: Vec<Tenant> = (0..2).map(|i| make_tenant(i, 1)).collect();
    // First submission: queues are empty, admitted.
    let t0 = service.submit(&tenants[0].sched).expect("empty queues");
    // Its root job is parked undrained in the DetPool queue, so the
    // watermark now rejects.
    let bp = service
        .submit(&tenants[1].sched)
        .expect_err("queue depth above watermark");
    assert_eq!(bp.reason, BackpressureReason::QueueDepth);
    assert!(bp.queued >= 1);
    service.drive();
    assert!(t0.wait().report.sink_completed);
    // Drained queues re-admit.
    let t1 = service.submit(&tenants[1].sched).expect("drained queues");
    service.drive();
    assert!(t1.wait().report.sink_completed);
}

/// A single-task graph whose compute blocks on a shared gate — used to
/// deterministically hold admission slots open on the real pool.
struct BlockingGraph {
    gate: Arc<ft_steal::Flag>,
}

impl TaskGraph for BlockingGraph {
    fn sink(&self) -> Key {
        0
    }
    fn predecessors(&self, _k: Key) -> Vec<Key> {
        vec![]
    }
    fn successors(&self, _k: Key) -> Vec<Key> {
        vec![]
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        self.gate.wait();
        Ok(())
    }
}

/// Acceptance: on the real pool, the in-flight budget deterministically
/// rejects the N+1th instance while N instances hold their slots, and a
/// saturating 32-graph stream never exceeds the budget with every graph
/// completing.
#[test]
fn bounded_in_flight_under_saturating_stream() {
    const GRAPHS: u64 = 32;
    const BUDGET: u64 = 4;
    let pool = Pool::new(PoolConfig::with_threads(4));
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: BUDGET as usize,
            queued_jobs_watermark: u64::MAX,
        },
    );

    // Phase 1: fill every slot with instances whose compute blocks on a
    // gate, so occupancy is pinned at the budget.
    let gate = Arc::new(ft_steal::Flag::new());
    let holders: Vec<_> = (0..BUDGET)
        .map(|_| {
            let g = Arc::new(BlockingGraph {
                gate: Arc::clone(&gate),
            }) as Arc<dyn TaskGraph>;
            let sched = FtScheduler::new(g);
            service.submit(&sched).expect("slot available")
        })
        .collect();
    let bp = service
        .submit(&FtScheduler::new(Arc::new(PanicGraph) as Arc<dyn TaskGraph>))
        .expect_err("budget pinned by blocked instances");
    assert_eq!(bp.reason, BackpressureReason::InFlightBudget);
    assert_eq!(bp.in_flight, BUDGET);
    gate.set();
    for h in holders {
        assert!(h.wait().report.sink_completed);
    }

    // Phase 2: stream 32 real graphs through the 4-slot budget.
    let mut tickets = Vec::new();
    for i in 0..GRAPHS {
        let tenant = make_tenant(i, 5);
        let ticket = loop {
            match service.submit(&tenant.sched) {
                Ok(t) => break t,
                Err(bp) => {
                    assert_eq!(bp.reason, BackpressureReason::InFlightBudget);
                    assert!(bp.in_flight <= BUDGET, "budget exceeded: {}", bp.in_flight);
                    std::thread::yield_now();
                }
            }
        };
        assert!(
            service.in_flight() <= BUDGET,
            "in-flight instances exceeded the budget"
        );
        tickets.push((ticket, tenant));
    }
    for (ticket, _tenant) in tickets {
        assert!(ticket.wait().report.sink_completed);
    }
    let stats = service.stats();
    assert_eq!(stats.submitted, GRAPHS + BUDGET);
    assert_eq!(stats.completed, GRAPHS + BUDGET);
    assert_eq!(stats.rejected, 1);
}

/// Per-epoch arena isolation (PR 8): every descriptor a tenant's engine
/// hands out lives in that engine's own epoch arena and in **no**
/// co-resident tenant's arena, even when the instances ran concurrently
/// interleaved on one pool, faulted tenants grew replacement
/// incarnations, and the epochs quiesced at different times. The handles
/// stay valid after `wait()` because the ticket's `Arc<Engine>` pins the
/// epoch's slabs until the scheduler itself drops.
#[test]
fn epoch_arenas_are_isolated_across_concurrent_instances() {
    const TENANTS: u64 = 6;
    let pool = DetPool::new(0xA12E);
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: TENANTS as usize,
            queued_jobs_watermark: u64::MAX,
        },
    );
    let tenants: Vec<Tenant> = (0..TENANTS).map(|i| make_tenant(i, 13)).collect();
    let tickets: Vec<InstanceTicket<_>> = tenants
        .iter()
        .map(|t| service.submit(&t.sched).expect("admitted"))
        .collect();
    service.drive();
    for t in tickets {
        assert!(t.wait().report.sink_completed);
    }
    for (i, owner) in tenants.iter().enumerate() {
        for &k in &owner.keys {
            let d = owner
                .sched
                .desc_handle(k)
                .expect("completed epoch retains every task");
            assert!(
                owner.sched.owns_desc(d),
                "tenant {i}: descriptor for task {k} must live in its own epoch arena"
            );
            for (j, other) in tenants.iter().enumerate() {
                if i != j {
                    assert!(
                        !other.sched.owns_desc(d),
                        "tenant {i}'s descriptor for task {k} found in tenant {j}'s arena — \
                         epoch slabs leaked across instances"
                    );
                }
            }
        }
    }
}

/// Deterministic replay: the same DetPool seed and submission sequence
/// reproduce the identical cross-instance interleaving — every tenant's
/// trace is event-for-event identical across the two runs.
#[test]
fn det_replay_reproduces_cross_instance_interleaving() {
    fn run_once(seed: u64) -> Vec<Vec<(u64, Event)>> {
        let pool = DetPool::new(seed);
        let service = GraphService::new(&pool);
        let tenants: Vec<Tenant> = (0..8).map(|i| make_tenant(i, 3)).collect();
        let tickets: Vec<_> = tenants
            .iter()
            .map(|t| service.submit(&t.sched).expect("admitted"))
            .collect();
        service.drive();
        for t in tickets {
            t.wait();
        }
        tenants
            .iter()
            .map(|t| {
                // Timestamps vary run to run; the (seq, event) projection
                // is the schedule-determined part of the trace.
                t.trace
                    .events()
                    .into_iter()
                    .map(|e| (e.seq, e.event))
                    .collect()
            })
            .collect()
    }
    for seed in [1u64, 42, 0xDEAD] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(a, b, "seed {seed}: replay diverged");
    }
}

/// A graph whose compute panics. The panic must stay inside its own
/// epoch: co-resident instances and the pool itself are unaffected, and
/// only the faulty ticket's `wait` re-raises.
struct PanicGraph;

impl TaskGraph for PanicGraph {
    fn sink(&self) -> Key {
        1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        if k == 1 {
            vec![0]
        } else {
            vec![]
        }
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        if k == 0 {
            vec![1]
        } else {
            vec![]
        }
    }
    fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        if k == 0 {
            panic!("tenant bug: compute(0) panicked");
        }
        Ok(())
    }
}

#[test]
fn instance_panic_stays_in_its_epoch() {
    let pool = Pool::new(PoolConfig::with_threads(2));
    let service = GraphService::new(&pool);
    let references = shape_references();

    let bad = FtScheduler::new(Arc::new(PanicGraph) as Arc<dyn TaskGraph>);
    let bad_ticket = service.submit(&bad).expect("admitted");
    let clean = make_tenant(0, 9);
    let clean_ticket = service.submit(&clean.sched).expect("admitted");

    // The clean co-resident epoch is untouched by the neighbor's panic.
    let out = clean_ticket.wait();
    check_tenant(
        "service-panic-neighbor",
        0,
        &clean,
        &out.report,
        OracleMode::Concurrent,
        &references,
    );

    let raised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        bad_ticket.wait();
    }));
    assert!(raised.is_err(), "faulty ticket re-raises its own panic");
    // The panicked epoch still released its slot, and the pool still runs.
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.stats().completed, 2);
    let again = make_tenant(2, 9);
    let t = service.submit(&again.sched).expect("pool unaffected");
    assert!(t.wait().report.sink_completed);
}
