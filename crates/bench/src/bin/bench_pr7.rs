//! `bench_pr7` — resident graph service vs. pool-spin-up-per-graph.
//!
//! Emits `BENCH_PR7.json`: throughput of a stream of graph executions under
//! five serving disciplines, all on the same busy-work wavefront workload
//! (a few µs of compute per task, so a graph is dominated by its own work
//! and the per-graph *lifecycle* cost is the differentiator):
//!
//! * `spinup_per_graph` — the pre-service discipline this PR retires: a
//!   fresh [`Pool`] is constructed for every graph, runs it to quiescence
//!   and is torn down (thread spawn + join on every graph).
//! * `resident_sequential` — one resident pool, one blocking
//!   `FtScheduler::run` per graph (`Engine::run`'s pool-wide barrier).
//! * `resident_service` — one resident pool behind a [`GraphService`]: the
//!   whole stream is submitted as concurrent instances (epochs) under the
//!   bounded in-flight budget; backpressured submissions wait for the
//!   oldest ticket. Per-submission latency is sampled here.
//! * `multi_client_spinup` — concurrent clients under the pre-service
//!   discipline: each client thread spins its own pool up per graph, and
//!   the pools contend for the same cores.
//! * `multi_client_service` — the same client threads, each with its own
//!   `GraphService` front end over the one shared resident pool.
//!
//! The headline `service_vs_spinup` ratio compares the two multi-client
//! disciplines — the scenario the resident service exists for. The
//! single-stream ratio is recorded as `single_stream_vs_spinup` for
//! context (a lone serial stream leaves no idle time to reclaim, so it
//! hovers near 1.0 on a small box).
//!
//! Usage: `bench_pr7 [--reps N] [--threads T] [--out PATH]
//! [--check [--ref BENCH_PR7.json]]`
//!
//! `--check` gates (exit 1 on failure):
//! * multi-client service throughput must reach **≥ 1.0×** the
//!   multi-client spin-up-per-graph throughput (the acceptance bar for
//!   keeping one pool resident);
//! * against `--ref`, the within-run `service_vs_spinup` ratio must not
//!   fall below 0.6× the reference ratio (a within-run ratio, so the
//!   committed reference transfers across machines of different speed).
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); resolved values, the git revision and the `pool_reuse`
//! flag land in the JSON.

use ft_bench::grids::EmptyGrid;
use ft_bench::measure::Stats;
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::{FtScheduler, GraphService, ServiceConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Side length of each graph in the stream (`GRID_N²` tasks per graph —
/// big enough that a graph is real work, small enough that pool spin-up
/// is a visible fraction of it).
const GRID_N: i64 = 8;
/// Busy-work iterations per task: each task computes for a few µs so a
/// graph is dominated by its own work, and the per-graph *lifecycle* cost
/// (thread spawn/join vs. wake-from-park vs. instance bookkeeping) is the
/// differentiator rather than raw single-task scheduling jitter.
const WORK_ITERS: u64 = 10_000;

/// [`EmptyGrid`] edges with a calibrated busy-work compute.
struct WorkGrid(EmptyGrid);

impl TaskGraph for WorkGrid {
    fn sink(&self) -> Key {
        self.0.sink()
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        self.0.predecessors(k)
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        self.0.successors(k)
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let mut acc = 1u64;
        for i in 1..WORK_ITERS {
            acc = acc.wrapping_mul(i) ^ (acc >> 7);
        }
        black_box(acc);
        Ok(())
    }
}
/// Graphs executed per measured rep.
const GRAPHS: usize = 24;
/// Client threads in the multi-client mode (each runs `GRAPHS / CLIENTS`
/// graphs through its own service front end).
const CLIENTS: usize = 8;
/// In-flight instance budget for the service modes; below [`GRAPHS`] on
/// purpose so the measured stream exercises the backpressure path.
const IN_FLIGHT: usize = 16;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        max_in_flight: IN_FLIGHT,
        ..ServiceConfig::default()
    }
}

/// One graph execution on `pool` via the blocking batch path.
fn run_one(pool: &Pool, grid: &Arc<dyn TaskGraph>) {
    let report = FtScheduler::new(Arc::clone(grid)).run(pool);
    assert!(report.sink_completed, "stream graph must complete");
}

/// The retired discipline: fresh pool per graph, torn down after.
fn rep_spinup(threads: usize, grid: &Arc<dyn TaskGraph>) {
    for _ in 0..GRAPHS {
        let pool = Pool::new(PoolConfig::with_threads(threads));
        run_one(&pool, grid);
    }
}

/// One resident pool, blocking run per graph.
fn rep_resident_sequential(pool: &Pool, grid: &Arc<dyn TaskGraph>) {
    for _ in 0..GRAPHS {
        run_one(pool, grid);
    }
}

/// One resident pool behind a service; the stream becomes concurrent
/// instances. `latencies_ns` (when given) collects per-submit latency.
fn rep_resident_service(pool: &Pool, grid: &Arc<dyn TaskGraph>, latencies_ns: &mut Vec<f64>) {
    let service = GraphService::with_config(pool, service_config());
    let mut tickets = std::collections::VecDeque::new();
    for _ in 0..GRAPHS {
        let sched = FtScheduler::new(Arc::clone(grid));
        loop {
            let t0 = Instant::now();
            match service.submit(&sched) {
                Ok(ticket) => {
                    latencies_ns.push(t0.elapsed().as_nanos() as f64);
                    tickets.push_back(ticket);
                    break;
                }
                Err(_backpressure) => {
                    // Budget exhausted: retire the oldest instance first.
                    let ticket = tickets.pop_front().expect("backpressure implies in-flight");
                    let done = ticket.wait();
                    assert!(done.report.sink_completed);
                }
            }
        }
    }
    for ticket in tickets {
        let done = ticket.wait();
        assert!(done.report.sink_completed);
    }
}

/// The pre-service discipline under concurrent clients: [`CLIENTS`]
/// threads, each spinning up (and tearing down) its own pool for every
/// graph of its stream — the pools contend for the same cores.
fn rep_multi_client_spinup(threads: usize, grid: &Arc<dyn TaskGraph>) {
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                for _ in 0..GRAPHS / CLIENTS {
                    let pool = Pool::new(PoolConfig::with_threads(threads));
                    run_one(&pool, grid);
                }
            });
        }
    });
}

/// The stream split across [`CLIENTS`] threads, each with its own service
/// front end over the shared resident pool.
fn rep_multi_client(pool: &Pool, grid: &Arc<dyn TaskGraph>) {
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                let service = GraphService::with_config(pool, service_config());
                let per_client_graphs = GRAPHS / CLIENTS;
                let mut tickets = Vec::with_capacity(per_client_graphs);
                for _ in 0..per_client_graphs {
                    let sched = FtScheduler::new(Arc::clone(grid));
                    // Budget ≥ per-client stream, so no retry loop needed.
                    tickets.push(service.submit(&sched).expect("within per-client budget"));
                }
                for ticket in tickets {
                    assert!(ticket.wait().report.sink_completed);
                }
            });
        }
    });
}

struct Mode {
    name: &'static str,
    stats: Stats,
    graphs: usize,
}

impl Mode {
    fn graphs_per_s(&self) -> f64 {
        // Min-of-reps: robust against scheduler interference on CI boxes.
        self.graphs as f64 / self.stats.min
    }
    fn to_json(&self) -> String {
        format!(
            "    \"{}\": {{\n      \"graphs_per_s\": {:.1},\n      \
             \"mean_s\": {:.6},\n      \"min_s\": {:.6},\n      \
             \"std_s\": {:.6}\n    }}",
            self.name,
            self.graphs_per_s(),
            self.stats.mean,
            self.stats.min,
            self.stats.std
        )
    }
}

/// Pull the `service_vs_spinup` ratio out of a committed `BENCH_PR7.json`
/// (same line-oriented no-serde scan as the other snapshot binaries).
fn parse_reference_ratio(text: &str) -> Option<f64> {
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("\"service_vs_spinup\":") {
            return rest.trim().trim_end_matches(',').parse().ok();
        }
    }
    None
}

fn main() {
    let cli = ft_bench::meta::parse_args(
        "bench_pr7 [--reps N] [--threads T] [--out PATH] [--check --ref BENCH_PR7.json]",
        4,
        "BENCH_PR7.json",
    );
    let (reps, threads) = (cli.reps, cli.threads);

    let grid: Arc<dyn TaskGraph> = Arc::new(WorkGrid(EmptyGrid { n: GRID_N }));
    let pool = Pool::new(PoolConfig::with_threads(threads));

    // Warm every discipline off the clock (thread spawn paths, code pages,
    // the service's first-submission allocations).
    rep_spinup(threads, &grid);
    rep_resident_sequential(&pool, &grid);
    rep_resident_service(&pool, &grid, &mut Vec::new());
    rep_multi_client_spinup(threads, &grid);
    rep_multi_client(&pool, &grid);

    let mut latencies_ns: Vec<f64> = Vec::new();
    let modes = vec![
        Mode {
            name: "spinup_per_graph",
            stats: ft_bench::measure(reps, || rep_spinup(threads, &grid)),
            graphs: GRAPHS,
        },
        Mode {
            name: "resident_sequential",
            stats: ft_bench::measure(reps, || rep_resident_sequential(&pool, &grid)),
            graphs: GRAPHS,
        },
        Mode {
            name: "resident_service",
            stats: ft_bench::measure(reps, || {
                rep_resident_service(&pool, &grid, &mut latencies_ns)
            }),
            graphs: GRAPHS,
        },
        Mode {
            name: "multi_client_spinup",
            stats: ft_bench::measure(reps, || rep_multi_client_spinup(threads, &grid)),
            graphs: (GRAPHS / CLIENTS) * CLIENTS,
        },
        Mode {
            name: "multi_client_service",
            stats: ft_bench::measure(reps, || rep_multi_client(&pool, &grid)),
            graphs: (GRAPHS / CLIENTS) * CLIENTS,
        },
    ];
    for m in &modes {
        println!(
            "{:<22} {:>8.1} graphs/s   (mean {:.4}s ± {:.4}, min {:.4}s)",
            m.name,
            m.graphs_per_s(),
            m.stats.mean,
            m.stats.std,
            m.stats.min
        );
    }

    let lat = Stats::from_samples(&latencies_ns);
    println!(
        "submit latency: mean {:.1}us  min {:.1}us  max {:.1}us  ({} samples)",
        lat.mean / 1e3,
        lat.min / 1e3,
        lat.max / 1e3,
        lat.reps
    );

    // The headline ratio pits like against like: concurrent clients served
    // by the resident service vs. the same clients each spinning pools up.
    // The single-stream ratio is informational — on a single-core box a
    // lone serial stream leaves no idle time for the service to reclaim.
    let service_ratio = modes[4].graphs_per_s() / modes[3].graphs_per_s();
    let single_stream_ratio = modes[2].graphs_per_s() / modes[0].graphs_per_s();
    println!(
        "multi_client service_vs_spinup {:.2}x   single_stream_vs_spinup {:.2}x",
        service_ratio, single_stream_ratio
    );

    let rows: Vec<String> = modes.iter().map(|m| m.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \
         \"grid_n\": {},\n  \"graphs_per_rep\": {},\n  \"clients\": {},\n  \
         \"in_flight_budget\": {},\n  \
         \"submit_latency_us\": {{\n    \"mean\": {:.2},\n    \"min\": {:.2},\n    \
         \"max\": {:.2},\n    \"samples\": {}\n  }},\n  \
         \"modes\": {{\n{}\n  }},\n  \
         \"service_vs_spinup\": {:.4},\n  \"single_stream_vs_spinup\": {:.4}\n}}\n",
        ft_bench::meta::json_header("bench_pr7/v1", threads, reps),
        GRID_N,
        GRAPHS,
        CLIENTS,
        IN_FLIGHT,
        lat.mean / 1e3,
        lat.min / 1e3,
        lat.max / 1e3,
        lat.reps,
        rows.join(",\n"),
        service_ratio,
        single_stream_ratio
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);

    if !cli.check {
        return;
    }

    // --- Gate ------------------------------------------------------------
    let mut failures = Vec::new();
    if service_ratio < 1.0 {
        failures.push(format!(
            "multi-client resident-service throughput is {service_ratio:.2}x the \
             spin-up-per-graph baseline — must be >= 1.0x"
        ));
    }
    if let Some(path) = cli.reference {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let ref_ratio = parse_reference_ratio(&text)
            .unwrap_or_else(|| panic!("no service_vs_spinup in {path}"));
        // Within-run ratio vs within-run ratio: transfers across machine
        // speeds; 0.6x leaves room for CI interference while catching a
        // service front end that lost its advantage.
        if service_ratio < 0.6 * ref_ratio {
            failures.push(format!(
                "service_vs_spinup {service_ratio:.2} fell below 0.6x the reference \
                 {ref_ratio:.2}"
            ));
        } else {
            println!("check service_vs_spinup: {service_ratio:.2} vs reference {ref_ratio:.2}");
        }
    }
    ft_bench::meta::exit_gate(&failures);
}
