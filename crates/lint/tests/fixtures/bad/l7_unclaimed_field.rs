//! Bad fixture for L7: a runtime struct atomic field that no protocol in
//! the manifest claims.

use ft_sync::atomic::AtomicU64;

pub struct Gate {
    pub in_flight: AtomicU64,
}
