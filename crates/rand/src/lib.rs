//! Offline shim for the `rand` crate.
//!
//! The workspace builds with no network and no crates.io mirror, so the
//! external `rand` dependency is replaced by this in-repo shim (pointed at
//! via a path dependency in the workspace `Cargo.toml`). It covers exactly
//! the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `RngExt::random_range` over integer and
//! float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The generator is a splitmix64-seeded xorshift64*, which is plenty for
//! test-input generation and fault-plan sampling; it makes no
//! cryptographic claims (neither does the code using it).

use std::ops::Range;

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard test RNG (xorshift64* seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { state }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Values that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "random_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice extension providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = rng.random_range(0..26);
            assert!(v < 26);
            let w: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(1.5..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }
}
