//! Versioned data blocks with memory reuse.
//!
//! Section II: "we allow updates to data blocks, as long as the dependences
//! specified ensure that all uses of a data block causally precede a
//! subsequent definition (considered the next version) of the same block."
//! Section VI evaluates *memory reuse* implementations in which later
//! versions overwrite earlier ones, which is precisely what makes recovery
//! interesting: "a fault might result in the need to use such a data block
//! version after it has been overwritten", forcing re-execution of the
//! chain of producers.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper overwrites buffers in place; safe Rust models the identical
//! lifecycle with **version eviction**: publishing version `v` of a block
//! under `KeepLast(k)` evicts version `v − k`. A read of an evicted version
//! fails with [`BlockError::Overwritten`] carrying the *producer task key*
//! recorded at publish time, which the scheduler turns into the paper's
//! producer re-execution chain. Versions republished during recovery
//! (version < current latest) are marked recovery-resident and are never
//! evicted again within the run — the retention relaxation the paper itself
//! suggests ("could be ameliorated by retaining the intermediate versions
//! in memory") and which guarantees recovery chains terminate.

use crate::fault::Fault;
use crate::graph::Key;
use ft_sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Dense identifier of a data block (application-chosen indexing).
pub type BlockId = usize;

/// Version number of a block (0 = first definition).
pub type Version = u64;

/// Producer key recorded for pinned (resilient input) versions.
pub const RESILIENT_PRODUCER: Key = i64::MIN;

/// Why a versioned read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The version exists but was poisoned by a detected soft error.
    Poisoned {
        /// Task that produced the corrupt version.
        producer: Key,
    },
    /// The version was evicted under the memory-reuse policy.
    Overwritten {
        /// Task that produced the evicted version.
        producer: Key,
    },
    /// The version was never published — a scheduling invariant violation
    /// (a task computed before its producer notified it).
    Missing,
}

impl BlockError {
    /// Convert to the scheduler-level [`Fault`], attributing the error to
    /// the producing task.
    pub fn into_fault(self) -> Fault {
        match self {
            BlockError::Poisoned { producer } => Fault::data(producer),
            BlockError::Overwritten { producer } => Fault::overwritten(producer),
            BlockError::Missing => {
                panic!("read of a never-published block version: dependence bug")
            }
        }
    }
}

/// How many versions of each block stay resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Single-assignment style: every version stays (LCS).
    KeepAll,
    /// Memory reuse: publishing version `v` evicts version `v − k`
    /// (`KeepLast(1)` = plain reuse; `KeepLast(2)` = the paper's
    /// two-version Floyd-Warshall configuration).
    KeepLast(u64),
}

struct VersionEntry<T> {
    data: Arc<Vec<T>>,
    producer: Key,
    poisoned: bool,
    /// Republished by recovery below the current latest; never evict.
    recovery_resident: bool,
}

struct BlockState<T> {
    versions: BTreeMap<Version, VersionEntry<T>>,
    /// Highest version ever published.
    latest: Option<Version>,
    /// Producer of every version ever published (tombstones for eviction
    /// attribution). Small: one `(u64, i64)` pair per version.
    producers: BTreeMap<Version, Key>,
}

impl<T> BlockState<T> {
    fn new() -> Self {
        BlockState {
            versions: BTreeMap::new(),
            latest: None,
            producers: BTreeMap::new(),
        }
    }
}

/// A store of versioned data blocks shared by an application's tasks.
pub struct BlockStore<T> {
    blocks: Vec<Mutex<BlockState<T>>>,
    retention: Retention,
    evictions: AtomicU64,
    republishes: AtomicU64,
}

impl<T: Send> BlockStore<T> {
    /// Create a store of `nblocks` blocks under the given retention policy.
    pub fn new(nblocks: usize, retention: Retention) -> Self {
        if let Retention::KeepLast(k) = retention {
            assert!(k >= 1, "KeepLast requires k >= 1");
        }
        BlockStore {
            blocks: (0..nblocks)
                .map(|_| Mutex::new(BlockState::new()))
                .collect(),
            retention,
            evictions: AtomicU64::new(0),
            republishes: AtomicU64::new(0),
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The configured retention policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Publish version `version` of `block`, produced by task `producer`.
    ///
    /// Publishing a **new latest** version applies the retention policy
    /// (possibly evicting the version sliding out of the window).
    /// Publishing an **older** version (recovery re-execution) reinstates it
    /// as recovery-resident. Re-publishing an existing version replaces its
    /// data and clears any poison (the recovered producer recreated it).
    pub fn publish(&self, block: BlockId, version: Version, producer: Key, data: Vec<T>) {
        let mut st = self.blocks[block].lock();
        // Pinned versions are resilient inputs: no task legitimately
        // redefines them, and they must stay pinned. Ignore such writes.
        if matches!(st.versions.get(&version), Some(e) if e.producer == RESILIENT_PRODUCER) {
            return;
        }
        let is_new_latest = st.latest.map(|l| version > l).unwrap_or(true);
        let recovery_resident = !is_new_latest && !st.versions.contains_key(&version);
        if !is_new_latest {
            self.republishes.fetch_add(1, Ordering::Relaxed);
        }
        st.producers.insert(version, producer);
        st.versions.insert(
            version,
            VersionEntry {
                data: Arc::new(data),
                producer,
                poisoned: false,
                recovery_resident,
            },
        );
        if is_new_latest {
            st.latest = Some(version);
            if let Retention::KeepLast(k) = self.retention {
                // The version sliding out of the window. Pinned (resilient)
                // and recovery-resident versions are exempt.
                if version >= k {
                    let out = version - k;
                    let evict = matches!(
                        st.versions.get(&out),
                        Some(e) if !e.recovery_resident && e.producer != RESILIENT_PRODUCER
                    );
                    if evict {
                        st.versions.remove(&out);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// Publish a pinned version that is never evicted nor poisoned — used
    /// for initial inputs, which the paper assumes are "made resilient
    /// through other means".
    pub fn publish_pinned(&self, block: BlockId, version: Version, data: Vec<T>) {
        let mut st = self.blocks[block].lock();
        if st.latest.map(|l| version > l).unwrap_or(true) {
            st.latest = Some(version);
        }
        st.producers.insert(version, RESILIENT_PRODUCER);
        st.versions.insert(
            version,
            VersionEntry {
                data: Arc::new(data),
                producer: RESILIENT_PRODUCER,
                poisoned: false,
                recovery_resident: false,
            },
        );
    }

    /// Read version `version` of `block`. Fails with the producing task if
    /// the version is poisoned or was evicted.
    pub fn read(&self, block: BlockId, version: Version) -> Result<Arc<Vec<T>>, BlockError> {
        let st = self.blocks[block].lock();
        match st.versions.get(&version) {
            Some(e) if e.poisoned => Err(BlockError::Poisoned {
                producer: e.producer,
            }),
            Some(e) => Ok(Arc::clone(&e.data)),
            None => match st.producers.get(&version) {
                Some(&producer) => Err(BlockError::Overwritten { producer }),
                None => Err(BlockError::Missing),
            },
        }
    }

    /// Read the *latest* version of `block` (diagnostics/verification).
    pub fn read_latest(&self, block: BlockId) -> Result<(Version, Arc<Vec<T>>), BlockError> {
        let st = self.blocks[block].lock();
        let latest = st.latest.ok_or(BlockError::Missing)?;
        match st.versions.get(&latest) {
            Some(e) if e.poisoned => Err(BlockError::Poisoned {
                producer: e.producer,
            }),
            Some(e) => Ok((latest, Arc::clone(&e.data))),
            None => Err(BlockError::Missing),
        }
    }

    /// Latest published version of `block`, if any.
    pub fn latest_version(&self, block: BlockId) -> Option<Version> {
        self.blocks[block].lock().latest
    }

    /// Poison version `version` of `block` (fault injection). Pinned
    /// versions are resilient and ignore poisoning. Returns true if a
    /// resident version was poisoned.
    pub fn poison(&self, block: BlockId, version: Version) -> bool {
        let mut st = self.blocks[block].lock();
        match st.versions.get_mut(&version) {
            Some(e) if e.producer != RESILIENT_PRODUCER => {
                e.poisoned = true;
                true
            }
            _ => false,
        }
    }

    /// True if `block` currently holds `version` un-poisoned.
    pub fn is_live(&self, block: BlockId, version: Version) -> bool {
        let st = self.blocks[block].lock();
        matches!(st.versions.get(&version), Some(e) if !e.poisoned)
    }

    /// Total evictions performed (memory-reuse overwrites).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total recovery republishes of old versions.
    pub fn republishes(&self) -> u64 {
        self.republishes.load(Ordering::Relaxed)
    }

    /// Number of resident versions of `block` (diagnostics).
    pub fn resident_versions(&self, block: BlockId) -> usize {
        self.blocks[block].lock().versions.len()
    }
}

impl<T: Send + Clone> BlockStore<T> {
    /// Export the latest un-poisoned version of every block — the generic
    /// checkpoint primitive behind application-level snapshot/resume
    /// (see `Fw::snapshot_tiles`). Blocks whose latest version is poisoned
    /// or missing are skipped (their producers would be re-executed on
    /// restore anyway).
    pub fn export_latest(&self) -> Vec<(BlockId, Version, Vec<T>)> {
        let mut out = Vec::new();
        for bid in 0..self.blocks.len() {
            let st = self.blocks[bid].lock();
            if let Some(latest) = st.latest {
                if let Some(e) = st.versions.get(&latest) {
                    if !e.poisoned {
                        out.push((bid, latest, e.data.as_ref().clone()));
                    }
                }
            }
        }
        out
    }

    /// Import a checkpoint produced by [`BlockStore::export_latest`] into a
    /// fresh store: every entry becomes a pinned (resilient) version.
    pub fn import_pinned(&self, snapshot: Vec<(BlockId, Version, Vec<T>)>) {
        for (bid, version, data) in snapshot {
            self.publish_pinned(bid, version, data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read_roundtrip() {
        let s: BlockStore<f64> = BlockStore::new(2, Retention::KeepAll);
        s.publish(0, 0, 100, vec![1.0, 2.0]);
        let d = s.read(0, 0).unwrap();
        assert_eq!(&*d, &vec![1.0, 2.0]);
        assert_eq!(s.latest_version(0), Some(0));
        assert_eq!(s.latest_version(1), None);
    }

    #[test]
    fn keep_all_retains_everything() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        for v in 0..10 {
            s.publish(0, v, v as Key, vec![v as u32]);
        }
        for v in 0..10 {
            assert_eq!(&*s.read(0, v).unwrap(), &vec![v as u32]);
        }
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.resident_versions(0), 10);
    }

    #[test]
    fn keep_last_one_evicts_previous() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish(0, 0, 100, vec![0]);
        s.publish(0, 1, 101, vec![1]);
        assert_eq!(s.read(0, 0), Err(BlockError::Overwritten { producer: 100 }));
        assert!(s.read(0, 1).is_ok());
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn keep_last_two_window() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(2));
        for v in 0..5 {
            s.publish(0, v, 100 + v as Key, vec![v as u32]);
        }
        // Versions 3 and 4 resident; 0..2 evicted.
        assert!(matches!(
            s.read(0, 2),
            Err(BlockError::Overwritten { producer: 102 })
        ));
        assert!(s.read(0, 3).is_ok());
        assert!(s.read(0, 4).is_ok());
        assert_eq!(s.evictions(), 3);
    }

    #[test]
    fn recovery_republish_is_never_evicted() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish(0, 0, 100, vec![0]);
        s.publish(0, 1, 101, vec![1]); // evicts v0
        s.publish(0, 0, 100, vec![0]); // recovery republish
        assert_eq!(s.republishes(), 1);
        assert!(s.read(0, 0).is_ok());
        s.publish(0, 2, 102, vec![2]); // evicts v1, NOT the resident v0
        assert!(s.read(0, 0).is_ok(), "recovery-resident version survives");
        assert!(matches!(s.read(0, 1), Err(BlockError::Overwritten { .. })));
    }

    #[test]
    fn republish_existing_version_clears_poison() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        s.publish(0, 0, 100, vec![1]);
        assert!(s.poison(0, 0));
        assert_eq!(s.read(0, 0), Err(BlockError::Poisoned { producer: 100 }));
        s.publish(0, 0, 100, vec![2]);
        assert_eq!(&*s.read(0, 0).unwrap(), &vec![2]);
    }

    #[test]
    fn pinned_versions_resist_poison_and_eviction() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish_pinned(0, 0, vec![7]);
        assert!(!s.poison(0, 0), "pinned versions cannot be poisoned");
        s.publish(0, 1, 101, vec![8]);
        s.publish(0, 2, 102, vec![9]);
        assert!(s.read(0, 0).is_ok(), "pinned version survives eviction");
        assert!(matches!(s.read(0, 1), Err(BlockError::Overwritten { .. })));
    }

    #[test]
    fn missing_version_reports_missing() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert_eq!(s.read(0, 5), Err(BlockError::Missing));
        assert!(s.read_latest(0).is_err());
    }

    #[test]
    fn poison_missing_version_returns_false() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert!(!s.poison(0, 3));
    }

    #[test]
    fn into_fault_attribution() {
        let e = BlockError::Poisoned { producer: 42 };
        let f = e.into_fault();
        assert_eq!(f.source, 42);
        assert_eq!(f.kind, crate::fault::FaultKind::Data);
        let e = BlockError::Overwritten { producer: 9 };
        assert_eq!(e.into_fault().kind, crate::fault::FaultKind::Overwritten);
    }

    #[test]
    #[should_panic(expected = "dependence bug")]
    fn missing_into_fault_panics() {
        BlockError::Missing.into_fault();
    }

    #[test]
    fn is_live_reflects_state() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert!(!s.is_live(0, 0));
        s.publish(0, 0, 1, vec![1]);
        assert!(s.is_live(0, 0));
        s.poison(0, 0);
        assert!(!s.is_live(0, 0));
    }

    #[test]
    fn export_import_roundtrip() {
        let a: BlockStore<u32> = BlockStore::new(3, Retention::KeepLast(2));
        a.publish(0, 0, 10, vec![1]);
        a.publish(0, 1, 11, vec![2]);
        a.publish(1, 5, 15, vec![3]);
        // Block 2 never published; block 0 latest poisoned.
        a.publish(2, 0, 20, vec![9]);
        a.poison(2, 0);
        let snap = a.export_latest();
        assert_eq!(snap.len(), 2, "poisoned/missing latests skipped");

        let b: BlockStore<u32> = BlockStore::new(3, Retention::KeepLast(2));
        b.import_pinned(snap);
        assert_eq!(&*b.read(0, 1).unwrap(), &vec![2]);
        assert_eq!(&*b.read(1, 5).unwrap(), &vec![3]);
        assert!(b.read(2, 0).is_err());
        // Imported versions are pinned: survive later eviction pressure.
        b.publish(0, 2, 30, vec![4]);
        b.publish(0, 3, 31, vec![5]);
        b.publish(0, 4, 32, vec![6]);
        assert!(b.read(0, 1).is_ok(), "pinned checkpoint survives");
    }

    #[test]
    fn concurrent_publish_read() {
        let s = std::sync::Arc::new(BlockStore::<u64>::new(4, Retention::KeepLast(2)));
        std::thread::scope(|scope| {
            for b in 0..4usize {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for v in 0..100u64 {
                        s.publish(b, v, (b * 1000 + v as usize) as Key, vec![v; 8]);
                        // Latest must always be readable.
                        let (lv, data) = s.read_latest(b).unwrap();
                        assert_eq!(data[0], lv);
                    }
                });
            }
        });
        for b in 0..4 {
            assert_eq!(s.latest_version(b), Some(99));
        }
    }
}
