//! Graph statistics and the theoretical bounds of Section V.
//!
//! * [`GraphStats`] — the Table I columns: total tasks `T`, total
//!   dependences `E`, critical path length `S` (in tasks), plus the degree
//!   bounds `d_in`, `d_out` that appear in the completion-time bound.
//! * [`work_span`] — `T1 = Σ N(A)(W(com(A)) + |out(A)|)` and
//!   `T∞ = max over paths Σ N(X) S(com(X))` for a given cost model and
//!   execution-count function `N`.
//! * [`completion_bound`] — the Theorem 2 upper bound
//!   `O(T1/P + T∞ + lg(P/ε) + N·M·d + N·L(D))` with
//!   `L(D) = (|E|/P + M) · min{d, P}`, evaluated numerically so experiments
//!   can sanity-check measured times against the theory's shape.

use crate::graph::{Key, TaskGraph};
use crate::seq::topo_order;
use std::collections::HashMap;

/// Structural statistics of a task graph (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Total number of tasks `T`.
    pub tasks: usize,
    /// Total number of dependences `E`.
    pub edges: usize,
    /// Critical path length `S`: number of tasks on the longest
    /// root-to-sink path.
    pub critical_path: usize,
    /// Maximum in-degree over all tasks.
    pub max_in_degree: usize,
    /// Maximum out-degree over all tasks.
    pub max_out_degree: usize,
}

impl GraphStats {
    /// The degree bound `d` of Theorem 2 (max of in- and out-degree).
    pub fn max_degree(&self) -> usize {
        self.max_in_degree.max(self.max_out_degree)
    }

    /// Average available parallelism `T/S` — a rough upper bound on useful
    /// cores for unit-cost tasks.
    pub fn avg_parallelism(&self) -> f64 {
        self.tasks as f64 / self.critical_path.max(1) as f64
    }
}

/// Compute [`GraphStats`] by full traversal from the sink.
pub fn graph_stats(graph: &dyn TaskGraph) -> GraphStats {
    let order = topo_order(graph);
    let index: HashMap<Key, usize> = order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut edges = 0usize;
    let mut max_in = 0usize;
    let mut max_out = 0usize;
    // depth[k] = tasks on the longest path ending at k (inclusive).
    let mut depth = vec![1usize; order.len()];
    let mut critical = 0usize;
    for (i, &k) in order.iter().enumerate() {
        let preds = graph.predecessors(k);
        edges += preds.len();
        max_in = max_in.max(preds.len());
        max_out = max_out.max(graph.successors(k).len());
        for p in preds {
            let pd = depth[index[&p]];
            if pd + 1 > depth[i] {
                depth[i] = pd + 1;
            }
        }
        critical = critical.max(depth[i]);
    }
    GraphStats {
        tasks: order.len(),
        edges,
        critical_path: critical,
        max_in_degree: max_in,
        max_out_degree: max_out,
    }
}

/// `T1` and `T∞` for a cost model `cost(key)` (the work `W(com(A))`, with
/// span assumed equal to work — our kernels are sequential within a task)
/// and an execution-count function `n_of(key) = N(A)`.
///
/// `T1 = Σ_A N(A) · (cost(A) + |out(A)|)` — each execution also pays one
/// unit per successor for the notify scan (Section V-D).
/// `T∞ = max over root→sink paths of Σ_X N(X) · cost(X)`.
pub fn work_span(
    graph: &dyn TaskGraph,
    cost: impl Fn(Key) -> f64,
    n_of: impl Fn(Key) -> f64,
) -> (f64, f64) {
    let order = topo_order(graph);
    let index: HashMap<Key, usize> = order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let mut t1 = 0.0f64;
    let mut span_to = vec![0.0f64; order.len()];
    let mut t_inf = 0.0f64;
    for (i, &k) in order.iter().enumerate() {
        let n = n_of(k);
        let c = cost(k);
        t1 += n * (c + graph.successors(k).len() as f64);
        let mut best_pred = 0.0f64;
        for p in graph.predecessors(k) {
            best_pred = best_pred.max(span_to[index[&p]]);
        }
        span_to[i] = best_pred + n * c;
        t_inf = t_inf.max(span_to[i]);
    }
    (t1, t_inf)
}

/// Per-node critical-path decomposition for one cost model.
///
/// For each task `k` (indexed by its position in `order`):
/// `span_to[k]` is the heaviest root→`k` path *including* `k`'s cost, and
/// `span_from[k]` the heaviest `k`→sink path including `k`. Then
/// `span_to[k] + span_from[k] − cost(k)` is the heaviest full path
/// *through* `k`; a node lies on a critical path iff that sum equals
/// `t_inf`. The random-DAG generator uses exactly this to mark Hard tasks
/// (top critical-ratio share by path-through weight) and to derive
/// per-task deadlines (`span_to` is the earliest-finish lower bound).
#[derive(Debug, Clone)]
pub struct PathAnalysis {
    /// Topological order the vectors below are indexed by.
    pub order: Vec<Key>,
    /// Heaviest root→node path cost, node inclusive.
    pub span_to: Vec<f64>,
    /// Heaviest node→sink path cost, node inclusive.
    pub span_from: Vec<f64>,
    /// Per-node cost, as passed in.
    pub cost: Vec<f64>,
    /// `T∞` under this cost model (= max over nodes of `span_to`).
    pub t_inf: f64,
}

impl PathAnalysis {
    /// Heaviest full path through the node at `order` position `i`.
    pub fn path_through(&self, i: usize) -> f64 {
        self.span_to[i] + self.span_from[i] - self.cost[i]
    }
}

/// Forward + backward longest-path sweep over the DAG under `cost`.
pub fn path_analysis(graph: &dyn TaskGraph, cost: impl Fn(Key) -> f64) -> PathAnalysis {
    let order = topo_order(graph);
    let index: HashMap<Key, usize> = order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
    let costs: Vec<f64> = order.iter().map(|&k| cost(k)).collect();
    let mut span_to = vec![0.0f64; order.len()];
    let mut t_inf = 0.0f64;
    for (i, &k) in order.iter().enumerate() {
        let mut best = 0.0f64;
        for p in graph.predecessors(k) {
            best = best.max(span_to[index[&p]]);
        }
        span_to[i] = best + costs[i];
        t_inf = t_inf.max(span_to[i]);
    }
    let mut span_from = vec![0.0f64; order.len()];
    for (i, &k) in order.iter().enumerate().rev() {
        let mut best = 0.0f64;
        for s in graph.successors(k) {
            best = best.max(span_from[index[&s]]);
        }
        span_from[i] = best + costs[i];
    }
    PathAnalysis {
        order,
        span_to,
        span_from,
        cost: costs,
        t_inf,
    }
}

/// Parameters for evaluating the Theorem 2 completion-time bound.
#[derive(Debug, Clone, Copy)]
pub struct BoundParams {
    /// Processor count `P`.
    pub p: usize,
    /// Failure probability `ε` of the work-stealing bound.
    pub epsilon: f64,
    /// `N = max_A N(A)` — maximum executions of any one task.
    pub n_max: f64,
}

/// Evaluate the Theorem 2 bound (up to its hidden constant):
/// `T1/P + T∞ + lg(P/ε) + N·M·d + N·L(D)` with
/// `L(D) = (|E|/P + M)·min{d, P}`, where `M` is the maximum path length in
/// tasks and `d` the maximum degree.
pub fn completion_bound(stats: &GraphStats, t1: f64, t_inf: f64, params: &BoundParams) -> f64 {
    let p = params.p.max(1) as f64;
    let d = stats.max_degree() as f64;
    let m = stats.critical_path as f64;
    let e = stats.edges as f64;
    let l = (e / p + m) * d.min(p);
    t1 / p + t_inf + (p / params.epsilon).log2() + params.n_max * m * d + params.n_max * l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::graph::ComputeCtx;

    /// n×n wavefront grid (same shape as scheduler tests).
    struct Grid {
        n: i64,
    }
    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut s = Vec::new();
            if i + 1 < self.n {
                s.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                s.push(i * self.n + (j + 1));
            }
            s
        }
        fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    #[test]
    fn grid_stats() {
        let g = Grid { n: 10 };
        let s = graph_stats(&g);
        assert_eq!(s.tasks, 100);
        // Each interior task has 2 preds; first row/col have fewer:
        // E = 2*n*(n-1) = 180.
        assert_eq!(s.edges, 180);
        // Longest path: (0,0) → … → (9,9) = 19 tasks.
        assert_eq!(s.critical_path, 19);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_degree(), 2);
        assert!((s.avg_parallelism() - 100.0 / 19.0).abs() < 1e-9);
    }

    #[test]
    fn chain_stats() {
        struct Chain;
        impl TaskGraph for Chain {
            fn sink(&self) -> Key {
                9
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                if k == 0 {
                    vec![]
                } else {
                    vec![k - 1]
                }
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                if k == 9 {
                    vec![]
                } else {
                    vec![k + 1]
                }
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                Ok(())
            }
        }
        let s = graph_stats(&Chain);
        assert_eq!(s.tasks, 10);
        assert_eq!(s.edges, 9);
        assert_eq!(s.critical_path, 10);
        assert_eq!(s.avg_parallelism(), 1.0);
    }

    #[test]
    fn work_span_unit_costs() {
        let g = Grid { n: 10 };
        let (t1, tinf) = work_span(&g, |_| 1.0, |_| 1.0);
        // T1 = Σ (1 + |out|) = 100 + 180 = 280.
        assert!((t1 - 280.0).abs() < 1e-9);
        // T∞ = critical path of unit costs = 19.
        assert!((tinf - 19.0).abs() < 1e-9);
    }

    #[test]
    fn work_span_scales_with_n() {
        let g = Grid { n: 10 };
        let (t1_once, _) = work_span(&g, |_| 1.0, |_| 1.0);
        let (t1_twice, tinf_twice) = work_span(&g, |_| 1.0, |_| 2.0);
        assert!((t1_twice - 2.0 * t1_once).abs() < 1e-9);
        assert!((tinf_twice - 38.0).abs() < 1e-9);
    }

    #[test]
    fn path_analysis_grid_spans() {
        let g = Grid { n: 10 };
        let pa = path_analysis(&g, |_| 1.0);
        assert!((pa.t_inf - 19.0).abs() < 1e-9);
        let idx = |k: Key| pa.order.iter().position(|&o| o == k).unwrap();
        // Source (0,0): nothing before it, everything after.
        assert!((pa.span_to[idx(0)] - 1.0).abs() < 1e-9);
        assert!((pa.span_from[idx(0)] - 19.0).abs() < 1e-9);
        // Sink (9,9): mirror image.
        assert!((pa.span_to[idx(99)] - 19.0).abs() < 1e-9);
        assert!((pa.span_from[idx(99)] - 1.0).abs() < 1e-9);
        // Every node of the wavefront grid lies on some critical path:
        // path_through == t_inf for the diagonal corners at least.
        assert!((pa.path_through(idx(0)) - pa.t_inf).abs() < 1e-9);
        // And path_through never exceeds t_inf anywhere.
        for i in 0..pa.order.len() {
            assert!(pa.path_through(i) <= pa.t_inf + 1e-9);
        }
    }

    #[test]
    fn path_analysis_agrees_with_work_span() {
        let g = Grid { n: 8 };
        let (_, tinf) = work_span(&g, |k| (k % 5 + 1) as f64, |_| 1.0);
        let pa = path_analysis(&g, |k| (k % 5 + 1) as f64);
        assert!((pa.t_inf - tinf).abs() < 1e-9);
    }

    #[test]
    fn completion_bound_monotone_in_p_for_work_term() {
        let g = Grid { n: 32 };
        let s = graph_stats(&g);
        let (t1, tinf) = work_span(&g, |_| 100.0, |_| 1.0);
        let b1 = completion_bound(
            &s,
            t1,
            tinf,
            &BoundParams {
                p: 1,
                epsilon: 0.01,
                n_max: 1.0,
            },
        );
        let b8 = completion_bound(
            &s,
            t1,
            tinf,
            &BoundParams {
                p: 8,
                epsilon: 0.01,
                n_max: 1.0,
            },
        );
        assert!(
            b8 < b1,
            "more processors lower the bound for work-dominated graphs"
        );
    }

    #[test]
    fn bound_reduces_toward_nabbit_when_no_failures() {
        // With N = 1 the bound is the plain NABBIT bound's form; with N = 3
        // the re-execution terms triple.
        let g = Grid { n: 16 };
        let s = graph_stats(&g);
        let (t1, tinf) = work_span(&g, |_| 1.0, |_| 1.0);
        let base = BoundParams {
            p: 4,
            epsilon: 0.01,
            n_max: 1.0,
        };
        let failed = BoundParams { n_max: 3.0, ..base };
        let b0 = completion_bound(&s, t1, tinf, &base);
        let b3 = completion_bound(&s, t1, tinf, &failed);
        assert!(b3 > b0);
    }
}
