//! `bench_pr9` — fan-out/fan-in contention snapshot for the lock-free
//! notification path.
//!
//! Emits `BENCH_PR9.json`: notification-bound workloads (a wide
//! [`Star`](ft_bench::grids::Star) and the two fan-out-heavy random-DAG
//! specs of [`FANOUT_RANDDAG_SPECS`]) plus the three PR-8 continuity
//! kernels (empty grid, LCS, LU), each measured baseline-vs-FT at every
//! thread count of a 1→N sweep on one resident pool per point. The
//! notification-bound rows are where PR 9 lives: every task completion
//! drains an atomic cell array while successors race their registrations
//! against it, the path that used to serialize on a `Mutex<NotifyList>`.
//!
//! The mutex ablation is the `locked_notify` cargo feature: the same
//! binary built with `--features locked_notify` runs the identical
//! schedulers against a mutex-backed `NotifyCells` with the same API.
//! That build prints (and records) its throughput as the gate reference;
//! [`LOCKED_RANDDAG_REF_TASKS_PER_S`] is the committed measurement.
//!
//! Usage: `bench_pr9 [--reps N] [--threads T] [--out PATH]
//! [--check --ref BENCH_PR9.json]`
//!
//! `--threads T` is the sweep's upper end; the sweep visits the powers of
//! two up to and including `T` (default 4 → 1, 2, 4). On a small CI box
//! counts above the cores run oversubscribed — precisely the regime where
//! a parked mutex waiter hurts most and the lock-free path must win.
//!
//! `--check` gates (exit 1 on failure; skipped in the ablation build):
//! * **contention floor** — the notify-heavy `randdag-fanout-p0.6` FT
//!   throughput (min-time estimator) at [`GATE_THREADS`] must be ≥
//!   [`MIN_SPEEDUP`]× the committed mutex-ablation reference;
//! * **overhead band** — against `--ref`, no continuity kernel's
//!   ([`BAND_WORKLOADS`]) sweep-mean no-fault FT overhead may regress
//!   more than +[`REF_BAND_PP`]pp on both the mean-based and min-based
//!   estimator (the `bench_pr4` two-estimator AND rule: each alone flakes
//!   on a noisy box, a real regression shifts both).
//!
//! Both bands compare *sweep-mean* overhead (averaged over the thread
//! counts) rather than per-row values: per-row overhead swings tens of
//! points on ordinary noise, and grid overhead genuinely shifts with
//! thread count. The contention micro-workloads are excluded from the
//! overhead bands on purpose — their sub-millisecond runs make overhead
//! percentages pure noise; the throughput floor is their gate.
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); resolved values and the git revision land in the JSON.

use ft_apps::AppConfig;
use ft_bench::grids::Star;
use ft_bench::registry::FANOUT_RANDDAG_SPECS;
use ft_bench::report::fmt_pct;
use ft_bench::snapshot::{bench_app, bench_grid, BenchResult};
use ft_bench::{make_randdag, parse_randdag, AppKind};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::graph::TaskGraph;
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::sync::Arc;

/// Committed mutex-ablation reference on this box: `randdag-fanout-p0.6`
/// FT throughput (min-based tasks/s) at [`GATE_THREADS`] from this binary
/// built with `--features locked_notify`. Re-measure with
/// `cargo run --release -p ft-bench --features locked_notify --bin
/// bench_pr9` when re-pinning.
const LOCKED_RANDDAG_REF_TASKS_PER_S: f64 = 143_005.6;

/// Thread count the contention floor is measured at: the sweep's top end
/// in CI (4), oversubscribed on small boxes — the mutex path's worst case
/// and the configuration the committed reference was measured at.
const GATE_THREADS: usize = 4;

/// Contention floor: lock-free notify must beat the mutex ablation by at
/// least this factor on the notify-heavy random DAG.
const MIN_SPEEDUP: f64 = 1.3;

/// Cross-run regression band against `--ref`, same ±15pp width as the
/// `bench_pr4`/`bench_pr8` reference gates but applied to *sweep-mean*
/// overhead per kernel: individual (workload, threads) rows swing well
/// past any honest band on an oversubscribed 1-core runner, and grid
/// overhead genuinely shifts with thread count.
const REF_BAND_PP: f64 = 15.0;

/// Baseline-vs-FT on a graph that is not a `BenchApp` (the star and the
/// random DAGs): fresh graph per rep, schedulers run on the shared pool.
fn bench_graph(
    pool: &Pool,
    name: &str,
    reps: usize,
    make: &dyn Fn() -> Arc<dyn TaskGraph>,
) -> BenchResult {
    let mut tasks = 0u64;
    let baseline = ft_bench::measure(reps, || {
        let r = BaselineScheduler::new(make()).run(pool);
        assert!(r.sink_completed);
        tasks = r.distinct_tasks_executed;
    });
    let ft = ft_bench::measure(reps, || {
        let r = FtScheduler::new(make()).run(pool);
        assert!(r.sink_completed);
    });
    BenchResult {
        name: name.to_string(),
        tasks,
        baseline,
        ft,
    }
}

/// One sweep point: every workload measured on a resident pool of
/// `threads` workers.
struct SweepPoint {
    threads: usize,
    results: Vec<BenchResult>,
}

impl SweepPoint {
    /// FT throughput of `name` from best-of-reps time: the contention
    /// floor compares this estimator against the mutex-ablation reference.
    fn ft_tasks_per_s_min(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.tasks as f64 / r.ft.min)
    }
    fn to_json(&self) -> String {
        let rows: Vec<String> = self.results.iter().map(|r| r.to_json()).collect();
        let rows = rows.join(",\n").replace("\n", "\n    ");
        format!(
            "    {{\n      \"threads\": {},\n      \"benches\": [\n    {}\n      ]\n    }}",
            self.threads, rows
        )
    }
}

/// Powers of two from 1 up to and including `max`.
fn sweep_counts(max: usize) -> Vec<usize> {
    let mut counts = Vec::new();
    let mut t = 1usize;
    while t < max {
        counts.push(t);
        t *= 2;
    }
    counts.push(max.max(1));
    counts
}

/// Pull `(threads, name, ft_overhead_pct, ft_overhead_min_pct)` rows back
/// out of a committed `BENCH_PR9.json` (line-oriented no-serde scan, as
/// in the other snapshot binaries).
fn parse_reference(text: &str) -> Vec<(usize, String, f64, f64)> {
    let mut out = Vec::new();
    let mut threads = 0usize;
    let mut name: Option<String> = None;
    let mut ovh: Option<f64> = None;
    let grab = |line: &str, key: &str| -> Option<String> {
        line.strip_prefix(key).map(|rest| {
            rest.trim()
                .trim_end_matches(',')
                .trim_matches('"')
                .to_string()
        })
    };
    for line in text.lines() {
        let t = line.trim();
        if let Some(v) = grab(t, "\"threads\":") {
            threads = v.parse().unwrap_or(threads);
        } else if let Some(v) = grab(t, "\"name\":") {
            name = Some(v);
        } else if let Some(v) = grab(t, "\"ft_overhead_pct\":") {
            ovh = v.parse().ok();
        } else if let Some(v) = grab(t, "\"ft_overhead_min_pct\":") {
            if let (Some(n), Some(o), Ok(m)) = (name.take(), ovh.take(), v.parse()) {
                out.push((threads, n, o, m));
            }
        }
    }
    out
}

/// The notify-heavy workload the contention floor gates on.
const GATE_WORKLOAD: &str = "randdag-fanout-p0.6";

/// Workloads the overhead-band gates apply to: the three continuity
/// kernels, whose multi-millisecond runs give stable overhead estimates.
/// The contention micro-workloads finish in well under a millisecond, so
/// their overhead percentages swing by tens of points between runs; they
/// are gated by the throughput floor instead.
const BAND_WORKLOADS: &[&str] = &["grid-empty-96x96", "LCS", "LU"];

fn main() {
    let cli = ft_bench::meta::parse_args(
        "bench_pr9 [--reps N] [--threads T] [--out PATH] [--check --ref BENCH_PR9.json]",
        4,
        "BENCH_PR9.json",
    );
    // Same floor as bench_pr8: the band and floor gates lean on the
    // min-of-reps estimator, which needs interference-free reps.
    let reps = cli.reps.max(15);
    let locked = cfg!(feature = "locked_notify");
    if locked {
        println!("locked_notify ablation build: measuring the mutex-backed notify path");
    }

    let specs: Vec<(String, _)> = FANOUT_RANDDAG_SPECS
        .iter()
        .map(|spec| {
            let cfg = parse_randdag(spec).unwrap_or_else(|| panic!("bad committed spec {spec}"));
            let name = format!(
                "randdag-fanout-p{}",
                spec.split("p=")
                    .nth(1)
                    .and_then(|s| s.split(',').next())
                    .unwrap_or("?")
            );
            (name, cfg)
        })
        .collect();

    let mut sweep = Vec::new();
    for threads in sweep_counts(cli.threads) {
        let pool = Pool::new(PoolConfig::with_threads(threads));
        // Warm this pool off the clock: thread spawn, code pages, the
        // injector block cache and the workers' deque rings.
        bench_grid(&pool, 96, 1);
        let mut results = vec![bench_graph(&pool, "star-512", reps, &|| {
            Arc::new(Star { width: 512 }) as Arc<dyn TaskGraph>
        })];
        for (name, cfg) in &specs {
            results.push(bench_graph(&pool, name, reps, &|| {
                make_randdag(cfg) as Arc<dyn TaskGraph>
            }));
        }
        results.push(bench_grid(&pool, 96, reps));
        results.push(bench_app(
            &pool,
            AppKind::Lcs,
            AppConfig::new(2048, 64),
            reps,
        ));
        results.push(bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps));
        for r in &results {
            println!(
                "t={threads} {:<20} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  \
                 overhead {} (min-based {})",
                r.name,
                r.tasks,
                r.baseline.mean,
                r.baseline.std,
                r.ft.mean,
                r.ft.std,
                fmt_pct(r.overhead_pct()),
                fmt_pct(r.overhead_min_pct()),
            );
        }
        sweep.push(SweepPoint { threads, results });
    }

    let gate_point = sweep.iter().find(|p| p.threads == GATE_THREADS);
    let gate_tput = gate_point.and_then(|p| p.ft_tasks_per_s_min(GATE_WORKLOAD));
    if let Some(tput) = gate_tput {
        println!(
            "{GATE_WORKLOAD} ft throughput at t={GATE_THREADS}: {tput:.0} tasks/s \
             (min-based) — {:.2}x the locked-notify reference \
             {LOCKED_RANDDAG_REF_TASKS_PER_S:.0}",
            tput / LOCKED_RANDDAG_REF_TASKS_PER_S
        );
        if locked {
            println!("gate reference candidate (pin as LOCKED_RANDDAG_REF_TASKS_PER_S): {tput:.1}");
        }
    }

    let rows: Vec<String> = sweep.iter().map(|p| p.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \"locked_notify_build\": {},\n  \
         \"locked_randdag_ref_tasks_per_s\": {:.1},\n  \
         \"gate_threads\": {},\n  \
         \"gate_randdag_ft_tasks_per_s_min_based\": {:.1},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::json_header("bench_pr9/v1", cli.threads, reps),
        locked,
        LOCKED_RANDDAG_REF_TASKS_PER_S,
        GATE_THREADS,
        gate_tput.unwrap_or(0.0),
        rows.join(",\n")
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);

    if !cli.check {
        return;
    }

    // --- Gate ------------------------------------------------------------
    let mut failures = Vec::new();

    // Contention floor: lock-free vs the committed mutex-ablation
    // reference. Meaningless inside the ablation build itself.
    if !locked {
        match gate_tput {
            Some(tput) if tput < MIN_SPEEDUP * LOCKED_RANDDAG_REF_TASKS_PER_S => {
                failures.push(format!(
                    "{GATE_WORKLOAD} ft throughput {tput:.0} tasks/s at t={GATE_THREADS} \
                     is below {MIN_SPEEDUP}x the locked-notify reference \
                     {LOCKED_RANDDAG_REF_TASKS_PER_S:.0}"
                ));
            }
            Some(_) => {}
            None => failures.push(format!(
                "sweep never visited t={GATE_THREADS}; pass --threads >= {GATE_THREADS} \
                 for --check"
            )),
        }
    }

    // Overhead band, on per-workload *sweep-mean* overhead: averaging
    // over the thread counts is what makes a ±15pp band hold on a noisy
    // box — per-(workload, threads) rows swing that much on ordinary
    // run-to-run noise, and grid overhead genuinely shifts with thread
    // count, so a flat per-row band measures neither.
    let sweep_mean = |wi: usize, f: &dyn Fn(&BenchResult) -> f64| {
        sweep.iter().map(|p| f(&p.results[wi])).sum::<f64>() / sweep.len() as f64
    };
    if let Some(path) = cli.reference {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let reference_rows = parse_reference(&text);
        assert!(
            !reference_rows.is_empty(),
            "no sweep rows parsed from {path}"
        );
        for wi in 0..sweep[0].results.len() {
            let name = &sweep[0].results[wi].name;
            if !BAND_WORKLOADS.contains(&name.as_str()) {
                continue;
            }
            let rows: Vec<_> = reference_rows
                .iter()
                .filter(|(_, n, _, _)| n == name)
                .collect();
            if rows.is_empty() {
                failures.push(format!("reference {path} has no rows for {name}"));
                continue;
            }
            let ref_ovh = rows.iter().map(|(_, _, o, _)| o).sum::<f64>() / rows.len() as f64;
            let ref_ovh_min = rows.iter().map(|(_, _, _, m)| m).sum::<f64>() / rows.len() as f64;
            // One-sided: dropping below the reference is an improvement;
            // both estimators must regress to fail.
            let d_mean = sweep_mean(wi, &|r| r.overhead_pct()) - ref_ovh;
            let d_min = sweep_mean(wi, &|r| r.overhead_min_pct()) - ref_ovh_min;
            if d_mean > REF_BAND_PP && d_min > REF_BAND_PP {
                failures.push(format!(
                    "{name}: sweep-mean ft overhead regressed Δ{d_mean:+.2}pp (mean) / \
                     Δ{d_min:+.2}pp (min) vs reference {ref_ovh:.2}% / {ref_ovh_min:.2}% — \
                     both estimators exceed +{REF_BAND_PP}pp"
                ));
            } else {
                println!(
                    "check {name} vs ref: Δ mean {d_mean:+.2}pp / min {d_min:+.2}pp \
                     (gate: both > +{REF_BAND_PP}pp)"
                );
            }
        }
    }
    ft_bench::meta::exit_gate(&failures);
}
