//! Inline-storage job representation.
//!
//! [`Job`] replaces the old `Box<dyn FnOnce(&Scope<'_>) + Send>` alias: a
//! fixed-size (64-byte) closure cell that stores small closures **inline**
//! — no heap allocation per spawn — and transparently falls back to a heap
//! box for closures larger than [`INLINE_DATA_BYTES`].
//!
//! Every closure the scheduler engine spawns on its hot path captures at
//! most an `Arc`, an arena handle and two or three scalar keys (≤ 40
//! bytes), so the traversal's spawn traffic is allocation-free; the old
//! representation paid one `Box` per spawned job, which `alloc_count.rs`
//! measured as ~5 of the ~11 allocations per task. The 64-byte cell also
//! means deque and injector slots hold jobs by value in one cache line.
//!
//! No atomics and no sharing: a `Job` is moved between threads through the
//! deque/injector protocols, which provide the necessary synchronization.
//! The `unsafe` here is purely manual ownership of the type-erased
//! closure (inline bytes or raw box pointer), with the invariant that
//! exactly one of `run`/`drop` consumes it.

use crate::pool::Scope;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Number of pointer-sized words of inline closure storage.
const DATA_WORDS: usize = 6;

/// Closures up to this size (and pointer alignment) are stored inline;
/// larger ones are boxed. 48 bytes covers every engine hot-path closure
/// (`Arc<Engine>` + descriptor handle + key + life + priority) with room
/// to spare.
pub const INLINE_DATA_BYTES: usize = DATA_WORDS * size_of::<usize>();

/// A unit of work. Receives a [`Scope`] so it can spawn more work.
///
/// Construct with [`Job::new`]; execute exactly once with [`Job::run`].
/// Dropping an unexecuted `Job` (queue teardown) drops the closure.
pub struct Job {
    /// Type-erased closure storage: either the closure's bytes written
    /// in-place (inline mode) or a `Box` raw pointer in word 0 (boxed
    /// mode). Which mode applies is fixed by the `call`/`drop_fn` pair.
    data: [MaybeUninit<usize>; DATA_WORDS],
    /// Consumes the closure in `data` and invokes it.
    // SAFETY: caller contract — see `call_inline`/`call_boxed`: the pointer
    // must be this cell's `data`, holding a live closure, consumed once.
    call: unsafe fn(*mut MaybeUninit<usize>, &Scope<'_>),
    /// Drops the closure in `data` without invoking it.
    // SAFETY: caller contract — see `drop_inline`/`drop_boxed`: the pointer
    // must be this cell's `data`, holding a live closure, dropped once.
    drop_fn: unsafe fn(*mut MaybeUninit<usize>),
}

// SAFETY: `Job::new` requires `F: Send`, and the closure is owned by the
// cell (inline bytes or an exclusively-owned box); moving the cell moves
// the closure, so sending the cell to another thread is exactly sending
// the `Send` closure.
unsafe impl Send for Job {}

impl Job {
    /// Wrap a closure. Small closures (≤ [`INLINE_DATA_BYTES`] bytes,
    /// pointer-aligned) are stored inline with zero allocation; larger
    /// ones are boxed, matching the old `Box<dyn FnOnce>` cost.
    pub fn new<F>(f: F) -> Self
    where
        F: FnOnce(&Scope<'_>) + Send + 'static,
    {
        let mut data = [MaybeUninit::<usize>::uninit(); DATA_WORDS];
        // Both arms of this branch are resolved at monomorphization time.
        if size_of::<F>() <= INLINE_DATA_BYTES && align_of::<F>() <= align_of::<usize>() {
            // SAFETY: the closure fits in `data` and `data`'s base is
            // aligned for `usize`, which the branch just checked is
            // sufficient for `F`. Ownership of `f` moves into the cell;
            // it is read back exactly once by `call_inline`/`drop_inline`.
            unsafe { std::ptr::write(data.as_mut_ptr().cast::<F>(), f) };
            Job {
                data,
                call: call_inline::<F>,
                drop_fn: drop_inline::<F>,
            }
        } else {
            data[0] = MaybeUninit::new(Box::into_raw(Box::new(f)) as usize);
            Job {
                data,
                call: call_boxed::<F>,
                drop_fn: drop_boxed::<F>,
            }
        }
    }

    /// Execute the job, consuming it.
    pub fn run(self, scope: &Scope<'_>) {
        let mut cell = ManuallyDrop::new(self);
        // SAFETY: `cell.call` was paired with `cell.data` by `Job::new`;
        // wrapping in `ManuallyDrop` forgoes the `Drop` impl, so the
        // closure is consumed exactly once (here).
        unsafe { (cell.call)(cell.data.as_mut_ptr(), scope) }
    }
}

impl Drop for Job {
    fn drop(&mut self) {
        // SAFETY: `drop_fn` was paired with `data` by `Job::new`, and
        // `run` suppresses this impl via `ManuallyDrop`, so the closure is
        // still live here and is consumed exactly once.
        unsafe { (self.drop_fn)(self.data.as_mut_ptr()) }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").finish_non_exhaustive()
    }
}

/// Invoke a closure stored inline in `data`.
///
/// # Safety
/// `data` must hold a live `F` written by `Job::new`'s inline arm, and the
/// closure must not be consumed again afterwards.
unsafe fn call_inline<F: FnOnce(&Scope<'_>)>(data: *mut MaybeUninit<usize>, scope: &Scope<'_>) {
    // SAFETY: caller contract — `data` holds a live `F`; `read` takes
    // ownership so the storage is dead afterwards.
    let f = unsafe { std::ptr::read(data.cast::<F>()) };
    f(scope)
}

/// Drop a closure stored inline in `data` without running it.
///
/// # Safety
/// Same contract as [`call_inline`].
unsafe fn drop_inline<F>(data: *mut MaybeUninit<usize>) {
    // SAFETY: caller contract — `data` holds a live `F`.
    unsafe { std::ptr::drop_in_place(data.cast::<F>()) }
}

/// Invoke a closure boxed by `Job::new`'s fallback arm (raw `Box` pointer
/// in word 0).
///
/// # Safety
/// `data[0]` must hold the raw pointer produced by `Box::into_raw` for a
/// live `Box<F>`, and the closure must not be consumed again afterwards.
unsafe fn call_boxed<F: FnOnce(&Scope<'_>)>(data: *mut MaybeUninit<usize>, scope: &Scope<'_>) {
    // SAFETY: caller contract — word 0 is a `Box::into_raw` pointer to a
    // live `F`; re-boxing restores unique ownership.
    let f = unsafe { Box::from_raw((*data).assume_init() as *mut F) };
    f(scope)
}

/// Drop a boxed closure without running it.
///
/// # Safety
/// Same contract as [`call_boxed`].
unsafe fn drop_boxed<F>(data: *mut MaybeUninit<usize>) {
    // SAFETY: caller contract — word 0 is a `Box::into_raw` pointer to a
    // live `F`.
    drop(unsafe { Box::from_raw((*data).assume_init() as *mut F) });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::SpawnHost;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A host that drops every spawned job on the floor (enough to build a
    /// `Scope` for direct `run` calls).
    struct NullHost;
    impl SpawnHost for NullHost {
        fn spawn_job(&self, _job: Job) {}
        fn num_threads(&self) -> usize {
            1
        }
        fn worker_index(&self) -> Option<usize> {
            None
        }
    }

    #[test]
    fn job_cell_is_one_cache_line() {
        assert_eq!(size_of::<Job>(), 64);
    }

    #[test]
    fn small_closure_runs_inline() {
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        let job = Job::new(move |_s| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let host = NullHost;
        job.run(&Scope::for_host(&host));
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn large_closure_falls_back_to_box() {
        let blob = [7u8; 256];
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        let job = Job::new(move |_s| {
            h.fetch_add(usize::from(blob[200]), Ordering::Relaxed);
        });
        let host = NullHost;
        job.run(&Scope::for_host(&host));
        assert_eq!(hit.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn dropping_unexecuted_job_drops_closure() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        // Inline-sized capture.
        let c = Canary(Arc::clone(&drops));
        drop(Job::new(move |_s| {
            let _keep = &c;
        }));
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        // Box-sized capture.
        let c = Canary(Arc::clone(&drops));
        let blob = [0u8; 128];
        drop(Job::new(move |_s| {
            let _keep = (&c, &blob);
        }));
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn closure_at_inline_boundary_runs() {
        // Exactly INLINE_DATA_BYTES of capture.
        let words = [1usize, 2, 3, 4, 5, 6];
        let job = Job::new(move |_s| {
            assert_eq!(words.iter().sum::<usize>(), 21);
        });
        let host = NullHost;
        job.run(&Scope::for_host(&host));
    }
}
