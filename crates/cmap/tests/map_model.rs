//! Property tests for the sharded concurrent map: sequential equivalence
//! with `HashMap` under random operation sequences, plus the recovery-table
//! protocol as a state machine.

use ft_cmap::ShardedMap;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    InsertIfAbsent(i64, u64),
    Get(i64),
    Replace(i64, u64),
    Contains(i64),
    UpdateAddOne(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small key space so operations collide often.
    let key = -8i64..8;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::InsertIfAbsent(k, v)),
        key.clone().prop_map(Op::Get),
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Replace(k, v)),
        key.clone().prop_map(Op::Contains),
        key.prop_map(Op::UpdateAddOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn matches_hashmap_model(
        shards in 1usize..32,
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let m: ShardedMap<u64> = ShardedMap::with_shards(shards);
        let mut model: HashMap<i64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::InsertIfAbsent(k, v) => {
                    let inserted = m.insert_if_absent(k, || v);
                    let model_inserted = if let std::collections::hash_map::Entry::Vacant(e) =
                        model.entry(k)
                    {
                        e.insert(v);
                        true
                    } else {
                        false
                    };
                    prop_assert_eq!(inserted, model_inserted);
                }
                Op::Get(k) => {
                    prop_assert_eq!(m.get(k), model.get(&k).copied());
                }
                Op::Replace(k, v) => {
                    let prev = m.replace(k, v);
                    let model_prev = model.insert(k, v);
                    prop_assert_eq!(prev, model_prev);
                }
                Op::Contains(k) => {
                    prop_assert_eq!(m.contains(k), model.contains_key(&k));
                }
                Op::UpdateAddOne(k) => {
                    let got = m.update_cas(k, |cur| match cur {
                        Some(&v) => (Some(v + 1), Some(v + 1)),
                        None => (None, None),
                    });
                    let model_got = model.get_mut(&k).map(|v| {
                        *v += 1;
                        *v
                    });
                    prop_assert_eq!(got, model_got);
                }
            }
            prop_assert_eq!(m.len(), model.len());
        }
        // Final content equivalence.
        let mut entries = m.entries();
        entries.sort();
        let mut model_entries: Vec<(i64, u64)> = model.into_iter().collect();
        model_entries.sort();
        prop_assert_eq!(entries, model_entries);
    }

    /// The IsRecovering protocol of Figure 3 as a property. In a real run
    /// lives are observed in order (an incarnation exists only after the
    /// previous one's recovery), possibly many times each (multiple
    /// observers), with stale re-observations of old lives mixed in.
    /// Exactly the first observation of each life claims the recovery.
    #[test]
    fn recovery_table_claims_once_per_life(
        max_life in 1u64..15,
        observers in 1usize..5,
        stale_looks in 0usize..4,
    ) {
        let r: ShardedMap<u64> = ShardedMap::with_shards(4);
        let key = 5i64;
        let is_recovering = |life: u64| -> bool {
            r.update_cas(key, |cur| match cur {
                None => (Some(life), false),
                Some(&stored) if stored + 1 == life => (Some(life), false),
                Some(_) => (None, true),
            })
        };
        for life in 1..=max_life {
            // Multiple observers of the same incarnation's failure: only
            // the first claims (Guarantee 1).
            for obs in 0..observers {
                let claimed = !is_recovering(life);
                prop_assert_eq!(claimed, obs == 0, "life {} observer {}", life, obs);
            }
            // Stale observers of earlier incarnations never claim.
            for s in 0..stale_looks {
                let stale = 1 + (s as u64 % life);
                prop_assert!(is_recovering(stale), "stale life {} must not claim", stale);
            }
        }
    }
}

#[test]
fn concurrent_update_cas_is_atomic() {
    // 8 threads × 1000 increments on the same key = exactly 8000.
    let m: std::sync::Arc<ShardedMap<u64>> = std::sync::Arc::new(ShardedMap::with_shards(4));
    m.insert_if_absent(0, || 0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let m = std::sync::Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..1000 {
                    m.update_cas(0, |cur| {
                        let v = cur.copied().unwrap() + 1;
                        (Some(v), ())
                    });
                }
            });
        }
    });
    assert_eq!(m.get(0), Some(8000));
}
