//! Sharded concurrent hash map with lock-free reads.
//!
//! Keys are `i64` task keys (the paper fixes `int64_t` keys); values are any
//! `Clone` type — the scheduler stores `Arc`s. Each shard is an open
//! hash table (linear probing, tombstone-less rebuild on growth) with a
//! **seqlock read path**: readers never take a lock. A shard consists of
//!
//! * an atomically published pointer to the current probe table,
//! * a sequence counter (even = stable, odd = writer mutating), and
//! * a `Mutex` serializing writers.
//!
//! Every table slot stores its key in an `AtomicI64` and its value behind
//! an `AtomicPtr` to a heap box (`null` = empty), so a concurrent reader
//! only ever performs atomic loads — there is no torn data to observe.
//! `get`/`contains` probe optimistically, then validate that the sequence
//! counter did not move during the probe; on writer interference they
//! retry, and after a few failed attempts fall back to the writer lock
//! (bounded, so readers cannot livelock behind a write storm). A validated
//! hit clones the value through the still-live box without ever touching a
//! lock — in the scheduler's case, one `Arc` refcount increment.
//!
//! **Memory reclamation** is deferred: a displaced value box (from
//! `replace`/`update_cas`/`clear`) and a superseded probe table (from
//! growth) are *retired* to per-shard lists and freed only when the map is
//! dropped, never while a reader could still hold the pointer. That makes
//! pointer dereference after sequence validation sound without epochs or
//! hazard pointers. The scheduler displaces a descriptor only on recovery,
//! so retained garbage is O(#faults) boxes plus O(log n) tables — see
//! "Hot-path anatomy & lock-freedom" in `docs/ALGORITHM.md`.
//!
//! The shard for a key is selected by a Fibonacci-hash of the key, which
//! also serves as the in-shard probe start; shard selection uses the high
//! bits and probing the low bits so the two are decorrelated.

use ft_sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use parking_lot::Mutex;

/// Multiplicative (Fibonacci) hash constant, 2^64 / φ.
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Optimistic probe attempts before a reader falls back to the shard lock.
const OPTIMISTIC_TRIES: usize = 8;

#[inline]
fn hash_key(key: i64) -> u64 {
    (key as u64).wrapping_mul(HASH_K)
}

/// One slot of a probe table. `val == null` means empty; once non-null the
/// key is immutable and the value pointer changes only under the shard's
/// write protocol (sequence bump around the swap).
struct Slot<V> {
    key: AtomicI64,
    val: AtomicPtr<V>,
}

/// An immutable-capacity probe table. Replaced wholesale on growth; the
/// superseded table is retired, never freed mid-run, so a reader holding a
/// stale table pointer can still probe it safely (and will then fail
/// sequence validation).
struct Table<V> {
    mask: usize,
    slots: Box<[Slot<V>]>,
}

impl<V> Table<V> {
    fn new_boxed(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| Slot {
                key: AtomicI64::new(0),
                val: AtomicPtr::new(std::ptr::null_mut()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Table {
            mask: cap - 1,
            slots,
        })
    }
}

/// Writer-side shard state, serialized by the shard mutex.
struct WriterState<V> {
    len: usize,
    /// Probe tables superseded by growth; freed on map drop. Their slots
    /// alias value boxes owned by the current table, so dropping them frees
    /// only the table structure.
    retired_tables: Vec<*mut Table<V>>,
    /// Value boxes displaced by `replace`/`update_cas`/`clear`; freed on
    /// map drop (a reader may still be cloning through the pointer).
    retired_vals: Vec<*mut V>,
}

/// A single shard.
struct Shard<V> {
    /// Seqlock counter: even = stable, odd = a writer is mutating.
    seq: AtomicU64,
    /// Current probe table, swapped on growth.
    table: AtomicPtr<Table<V>>,
    writer: Mutex<WriterState<V>>,
}

// SAFETY: owned value boxes and retired garbage are dropped from whichever
// thread drops the map (`V: Send`); the raw pointers in `WriterState`/`table`
// are owned by the shard and follow the retire-until-drop protocol
// documented above, so moving the shard between threads transfers sole
// ownership of every allocation it frees.
unsafe impl<V: Send + Sync> Send for Shard<V> {}
// SAFETY: values are shared by reference with concurrent readers
// (`V: Sync`), all shared shard state is atomics or the writer mutex, and
// retired allocations stay live until drop — so `&Shard` used from many
// threads never yields a dangling or aliased-mutable access.
unsafe impl<V: Send + Sync> Sync for Shard<V> {}

/// Outcome of one optimistic probe attempt.
enum Probe<V> {
    /// Validated: the key maps to this live value pointer (or a miss).
    Valid(Option<*const V>),
    /// A writer moved the sequence during the probe; retry.
    Interference,
}

impl<V: Clone> Shard<V> {
    fn new(cap: usize) -> Self {
        Shard {
            seq: AtomicU64::new(0),
            table: AtomicPtr::new(Box::into_raw(Table::new_boxed(cap))),
            writer: Mutex::new(WriterState {
                len: 0,
                retired_tables: Vec::new(),
                retired_vals: Vec::new(),
            }),
        }
    }

    /// Begin a write window: readers that overlap it will fail validation.
    /// Caller must hold the writer lock.
    fn write_begin(&self) {
        // ord: Relaxed load/store — only writers mutate `seq` and the
        // caller holds the writer lock; ordering comes from the fence below.
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        // ord: Release fence — the odd sequence must be visible before any
        // mutation store; pairs with the readers' Acquire fence/loads in
        // `try_read`.
        // sc: seqlock/writer-begin
        fence(Ordering::Release);
    }

    /// End a write window. Caller must hold the writer lock.
    fn write_end(&self) {
        // ord: Relaxed — lock-serialized writer-only read; see write_begin.
        let s = self.seq.load(Ordering::Relaxed);
        // ord: Release — all mutation stores are visible before the even
        // sequence; pairs with the readers' s1 Acquire load in `try_read`.
        self.seq.store(s.wrapping_add(1), Ordering::Release);
    }

    // ft-lint: hot-path begin(map-read)

    /// One optimistic, lock-free probe: read the published table, probe,
    /// then validate that no writer interfered.
    fn try_read(&self, key: i64) -> Probe<V> {
        // ord: Acquire — pairs with the Release in `write_end`: an even s1
        // guarantees the probe sees a table state no older than that write.
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return Probe::Interference;
        }
        // ord: Acquire — pairs with the Release table publication in
        // `grow_if_needed`, so the pointed-to table is fully initialized.
        let table = self.table.load(Ordering::Acquire);
        // SAFETY: published tables are retired on growth, never freed while
        // the map lives, so the pointer is always dereferenceable — a stale
        // table merely fails validation below.
        let t = unsafe { &*table };
        let mask = t.mask;
        let mut i = (hash_key(key) as usize) & mask;
        let mut found: Option<*const V> = None;
        // Bounded probe: a consistent table has load factor < 0.7, so a
        // full sweep without an empty slot can only mean interference.
        for _ in 0..=mask {
            let slot = &t.slots[i];
            // ord: Acquire — pairs with the Release in `publish_insert`/
            // `swap_value`: a non-null pointer implies the pointee and the
            // slot's key store are visible.
            let p = slot.val.load(Ordering::Acquire);
            if p.is_null() {
                break; // empty slot terminates the probe chain
            }
            // ord: Relaxed — the Acquire load of `val` above already orders
            // the key store (keys are written before the value pointer).
            if slot.key.load(Ordering::Relaxed) == key {
                found = Some(p as *const V);
                break;
            }
            i = (i + 1) & mask;
        }
        // ord: Acquire fence + Relaxed load — the probe loads must complete
        // before the validating sequence load; the fence upgrades the
        // Relaxed load so it cannot be reordered before the probe.
        // sc: seqlock/reader-validate
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        if s1 == s2 {
            Probe::Valid(found)
        } else {
            Probe::Interference
        }
    }

    /// Lock-free read; falls back to the writer lock after repeated
    /// interference so readers cannot starve behind a write storm.
    fn read(&self, key: i64) -> Option<V> {
        for _ in 0..OPTIMISTIC_TRIES {
            match self.try_read(key) {
                // SAFETY: a validated pointer is live (boxes are retired,
                // not freed) and its pointee is never mutated in place.
                // ft-lint: allow(L9) the map stores values by value; a
                // validated read must copy out before the box is retired.
                Probe::Valid(found) => return found.map(|p| unsafe { (*p).clone() }),
                Probe::Interference => std::hint::spin_loop(),
            }
        }
        // ft-lint: allow(L9) anti-starvation fallback: taken only after
        // OPTIMISTIC_TRIES failed validations under a write storm.
        let _guard = self.writer.lock();
        // SAFETY: the writer lock is held, so the table pointer is stable
        // and dereferenceable (tables are only swapped under this lock).
        // ord: Relaxed — the lock acquisition orders the table load against
        // the previous holder's swap.
        let t = unsafe { &*self.table.load(Ordering::Relaxed) };
        self.probe_locked(t, key)
            // SAFETY: `probe_locked` returned an occupied slot and the lock
            // blocks any writer from displacing its value box.
            // ord: Relaxed — lock-serialized; see above.
            // ft-lint: allow(L9) value copy-out, same as the lock-free arm.
            .map(|i| unsafe { (*t.slots[i].val.load(Ordering::Relaxed)).clone() })
    }

    // ft-lint: hot-path end(map-read)

    /// Probe under the writer lock. Returns the slot index of `key`.
    fn probe_locked(&self, t: &Table<V>, key: i64) -> Option<usize> {
        let mut i = (hash_key(key) as usize) & t.mask;
        loop {
            let slot = &t.slots[i];
            // ord: Relaxed — caller holds the writer lock, which serializes
            // every mutation of the slots.
            if slot.val.load(Ordering::Relaxed).is_null() {
                return None;
            }
            // ord: Relaxed — lock-serialized, as above.
            if slot.key.load(Ordering::Relaxed) == key {
                return Some(i);
            }
            i = (i + 1) & t.mask;
        }
    }

    /// First empty slot on `key`'s probe chain. Caller must hold the lock
    /// and have verified the key is absent.
    fn find_empty(&self, t: &Table<V>, key: i64) -> usize {
        let mut i = (hash_key(key) as usize) & t.mask;
        // ord: Relaxed — caller holds the writer lock; see `probe_locked`.
        while !t.slots[i].val.load(Ordering::Relaxed).is_null() {
            i = (i + 1) & t.mask;
        }
        i
    }

    /// Publish `(key, boxed)` into an empty slot. No sequence bump needed:
    /// concurrent readers either see the null (miss, linearized before) or
    /// the full slot (hit) — both are consistent states.
    fn publish_insert(&self, t: &Table<V>, key: i64, boxed: *mut V) {
        let i = self.find_empty(t, key);
        // ord: Relaxed — ordered by the Release store of `val` below.
        t.slots[i].key.store(key, Ordering::Relaxed);
        // ord: Release — the key store above and the boxed value are
        // visible to any reader that Acquire-loads this value pointer.
        t.slots[i].val.store(boxed, Ordering::Release);
    }

    /// Grow (double) the table if the load factor reached 0.7, publishing
    /// the new table under a write window. Caller must hold the lock.
    ///
    /// Returns the current table.
    fn grow_if_needed(&self, w: &mut WriterState<V>) -> *mut Table<V> {
        // ord: Relaxed — caller holds the writer lock, which serializes
        // every table swap.
        let old_ptr = self.table.load(Ordering::Relaxed);
        // SAFETY: the current table is live until retired, and retiring
        // happens only below in this lock-serialized function.
        let old = unsafe { &*old_ptr };
        let cap = old.mask + 1;
        if w.len * 10 < cap * 7 {
            return old_ptr;
        }
        let new = Table::<V>::new_boxed(cap * 2);
        for slot in old.slots.iter() {
            // ord: Relaxed — old-table reads are lock-serialized and the
            // new table is private until published: no reader can see
            // these loads or the stores below out of order.
            let p = slot.val.load(Ordering::Relaxed);
            if p.is_null() {
                continue;
            }
            // ord: Relaxed — lock-serialized old-table read, as above.
            let k = slot.key.load(Ordering::Relaxed);
            let mut i = (hash_key(k) as usize) & new.mask;
            // ord: Relaxed — the new table is private until published.
            while !new.slots[i].val.load(Ordering::Relaxed).is_null() {
                i = (i + 1) & new.mask;
            }
            // ord: Relaxed — private table; the Release publication of
            // `table` below makes these stores visible to readers.
            new.slots[i].key.store(k, Ordering::Relaxed);
            new.slots[i].val.store(p, Ordering::Relaxed);
        }
        let new_ptr = Box::into_raw(new);
        self.write_begin();
        // ord: Release — publishes the fully populated table to readers'
        // Acquire load in `try_read`.
        self.table.store(new_ptr, Ordering::Release);
        self.write_end();
        w.retired_tables.push(old_ptr);
        new_ptr
    }

    /// Swap the value pointer of an occupied slot under a write window,
    /// retiring the displaced box. Caller must hold the lock.
    fn swap_value(&self, t: &Table<V>, i: usize, boxed: *mut V, w: &mut WriterState<V>) -> *mut V {
        // ord: Relaxed — caller holds the writer lock; see `probe_locked`.
        let old = t.slots[i].val.load(Ordering::Relaxed);
        self.write_begin();
        // ord: Release — the new box's contents are visible to any reader
        // that Acquire-loads this pointer in `try_read`.
        t.slots[i].val.store(boxed, Ordering::Release);
        self.write_end();
        w.retired_vals.push(old);
        old
    }
}

impl<V> Drop for Shard<V> {
    fn drop(&mut self) {
        let w = self.writer.get_mut();
        // ord: Relaxed — `&mut self` proves exclusivity; every reader and
        // writer synchronized-with this thread before the drop.
        let t = self.table.load(Ordering::Relaxed);
        // SAFETY: exclusive access (`&mut self`). The current table owns the
        // live value boxes; `retired_vals` owns displaced boxes; retired
        // tables alias boxes already freed via one of the former two, so
        // only their table structure is freed — every allocation exactly
        // once.
        unsafe {
            // Live values are owned by the current table.
            for slot in (*t).slots.iter() {
                // ord: Relaxed — exclusive access, as above.
                let p = slot.val.load(Ordering::Relaxed);
                if !p.is_null() {
                    drop(Box::from_raw(p));
                }
            }
            drop(Box::from_raw(t));
            for &p in &w.retired_vals {
                drop(Box::from_raw(p));
            }
            // Retired tables alias value boxes already freed above or in
            // retired_vals: free only the table structure.
            for &tp in &w.retired_tables {
                drop(Box::from_raw(tp));
            }
        }
    }
}

/// A sharded concurrent hash map from `i64` task keys to `V`, with
/// lock-free (seqlock-validated) reads.
pub struct ShardedMap<V> {
    shards: Vec<Shard<V>>,
    shift: u32,
}

impl<V> std::fmt::Debug for ShardedMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Occupancy statistics, for the shard-count ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Total entries across shards.
    pub len: usize,
    /// Number of shards.
    pub shards: usize,
    /// Maximum entries in any one shard (imbalance indicator).
    pub max_shard_len: usize,
}

impl<V: Clone> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> ShardedMap<V> {
    /// Map with a default shard count (4× available cores, rounded up to a
    /// power of two) — enough striping that the scheduler's task map is not
    /// a bottleneck at full core count.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self::with_shards((cores * 4).next_power_of_two())
    }

    /// Map with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..shards).map(|_| Shard::new(64)).collect(),
            shift: 64 - shards.trailing_zeros(),
        }
    }

    #[inline]
    fn shard_for(&self, key: i64) -> &Shard<V> {
        // High bits pick the shard; low bits drive in-shard probing.
        let idx = if self.shards.len() == 1 {
            0
        } else {
            (hash_key(key) >> self.shift) as usize
        };
        &self.shards[idx]
    }

    /// `InsertTaskIfAbsent`: atomically insert `make()` under `key` if no
    /// entry exists. Returns `true` if this call inserted. `make` runs
    /// under the shard lock only when an insert actually happens.
    pub fn insert_if_absent(&self, key: i64, make: impl FnOnce() -> V) -> bool {
        let shard = self.shard_for(key);
        let mut w = shard.writer.lock();
        // SAFETY: writer lock held — the table pointer is stable and live.
        // ord: Relaxed — the lock orders the load against the last swap.
        let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
        if shard.probe_locked(t, key).is_some() {
            return false;
        }
        // SAFETY: `grow_if_needed` returns the (possibly new) current
        // table, live for at least as long as the lock is held.
        let t = unsafe { &*shard.grow_if_needed(&mut w) };
        let boxed = Box::into_raw(Box::new(make()));
        shard.publish_insert(t, key, boxed);
        w.len += 1;
        true
    }

    /// `GetTask`: clone out the current value for `key`. Lock-free: probes
    /// the published table and validates the shard sequence; only falls
    /// back to the shard lock after repeated writer interference.
    pub fn get(&self, key: i64) -> Option<V> {
        self.shard_for(key).read(key)
    }

    /// True if the map has an entry for `key`. Same lock-free path as
    /// [`ShardedMap::get`] without cloning the value.
    pub fn contains(&self, key: i64) -> bool {
        let shard = self.shard_for(key);
        for _ in 0..OPTIMISTIC_TRIES {
            match shard.try_read(key) {
                Probe::Valid(found) => return found.is_some(),
                Probe::Interference => std::hint::spin_loop(),
            }
        }
        let _guard = shard.writer.lock();
        // SAFETY: writer lock held — the table pointer is stable and live.
        // ord: Relaxed — the lock orders the load against the last swap.
        let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
        shard.probe_locked(t, key).is_some()
    }

    /// `ReplaceTask`: insert or overwrite the value under `key`, returning
    /// the previous value if any.
    pub fn replace(&self, key: i64, value: V) -> Option<V> {
        let shard = self.shard_for(key);
        let mut w = shard.writer.lock();
        // SAFETY: writer lock held — the table pointer is stable and live.
        // ord: Relaxed — the lock orders the load against the last swap.
        let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
        if let Some(i) = shard.probe_locked(t, key) {
            let boxed = Box::into_raw(Box::new(value));
            let old = shard.swap_value(t, i, boxed, &mut w);
            // SAFETY: the displaced box was retired, not freed (a reader
            // may be cloning it), so it stays dereferenceable here.
            return Some(unsafe { (*old).clone() });
        }
        // SAFETY: `grow_if_needed` returns the current table, live while
        // the lock is held.
        let t = unsafe { &*shard.grow_if_needed(&mut w) };
        shard.publish_insert(t, key, Box::into_raw(Box::new(value)));
        w.len += 1;
        None
    }

    /// Atomically read-modify-write the entry for `key`.
    ///
    /// `f` receives the current value (if any) and returns `Some(new)` to
    /// store or `None` to leave the entry untouched. Returns the value the
    /// closure decided on, i.e. `f`'s output. This is the primitive behind
    /// the recovery table's `AtomicCompAndSwap(stored, life-1, life)`.
    pub fn update_cas<R>(&self, key: i64, f: impl FnOnce(Option<&V>) -> (Option<V>, R)) -> R {
        let shard = self.shard_for(key);
        let mut w = shard.writer.lock();
        // SAFETY: writer lock held — the table pointer is stable and live.
        // ord: Relaxed — the lock orders the load against the last swap.
        let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
        let slot = shard.probe_locked(t, key);
        let (new, ret) = match slot {
            Some(i) => {
                // SAFETY: occupied slot and the lock blocks displacement of
                // its value box while `cur` is borrowed.
                // ord: Relaxed — lock-serialized, as above.
                let cur = unsafe { &*t.slots[i].val.load(Ordering::Relaxed) };
                f(Some(cur))
            }
            None => f(None),
        };
        if let Some(v) = new {
            let boxed = Box::into_raw(Box::new(v));
            match slot {
                Some(i) => {
                    shard.swap_value(t, i, boxed, &mut w);
                }
                None => {
                    // SAFETY: `grow_if_needed` returns the current table,
                    // live while the lock is held.
                    let t = unsafe { &*shard.grow_if_needed(&mut w) };
                    shard.publish_insert(t, key, boxed);
                    w.len += 1;
                }
            }
        }
        ret
    }

    /// Total number of entries (takes each shard writer lock once).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.writer.lock().len).sum()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy statistics for diagnostics/ablation.
    pub fn stats(&self) -> MapStats {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.writer.lock().len).collect();
        MapStats {
            len: lens.iter().sum(),
            shards: self.shards.len(),
            max_shard_len: lens.into_iter().max().unwrap_or(0),
        }
    }

    /// Remove all entries, retaining shard capacity. Displaced value boxes
    /// are retired, not freed (a concurrent reader may hold them).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut w = shard.writer.lock();
            // SAFETY: writer lock held — table pointer stable and live.
            // ord: Relaxed — lock-ordered, as in `insert_if_absent`.
            let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
            shard.write_begin();
            for slot in t.slots.iter() {
                // ord: Relaxed — inside a write window: readers that
                // overlap these stores fail sequence validation, so only
                // the window's Release edges need ordering.
                let p = slot.val.load(Ordering::Relaxed);
                if !p.is_null() {
                    // ord: Relaxed — inside the write window, as above.
                    slot.val.store(std::ptr::null_mut(), Ordering::Relaxed);
                    w.retired_vals.push(p);
                }
            }
            shard.write_end();
            w.len = 0;
        }
    }

    /// Snapshot of all `(key, value)` pairs. Not atomic across shards; used
    /// only after quiescence (metrics, verification).
    pub fn entries(&self) -> Vec<(i64, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let _guard = shard.writer.lock();
            // SAFETY: writer lock held — table pointer stable and live.
            // ord: Relaxed — lock-ordered, as in `insert_if_absent`.
            let t = unsafe { &*shard.table.load(Ordering::Relaxed) };
            for slot in t.slots.iter() {
                // ord: Relaxed — slot reads are lock-serialized here.
                let p = slot.val.load(Ordering::Relaxed);
                if !p.is_null() {
                    // ord: Relaxed — lock-serialized slot read, as above.
                    let k = slot.key.load(Ordering::Relaxed);
                    // SAFETY: occupied slot; the lock blocks displacement
                    // of the box while we clone through it.
                    out.push((k, unsafe { (*p).clone() }));
                }
            }
        }
        out
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use ft_sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_replace() {
        let m = ShardedMap::with_shards(4);
        assert!(m.insert_if_absent(1, || "a"));
        assert!(!m.insert_if_absent(1, || "b"));
        assert_eq!(m.get(1), Some("a"));
        assert_eq!(m.replace(1, "c"), Some("a"));
        assert_eq!(m.get(1), Some("c"));
        assert_eq!(m.replace(2, "d"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn get_missing_is_none() {
        let m: ShardedMap<u32> = ShardedMap::with_shards(2);
        assert_eq!(m.get(42), None);
        assert!(!m.contains(42));
        assert!(m.is_empty());
    }

    #[test]
    fn negative_and_extreme_keys() {
        let m = ShardedMap::with_shards(8);
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert!(m.insert_if_absent(k, || k));
            assert_eq!(m.get(k), Some(k));
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn growth_preserves_entries() {
        let m = ShardedMap::with_shards(1);
        for k in 0..10_000i64 {
            assert!(m.insert_if_absent(k, || k * 2));
        }
        for k in 0..10_000i64 {
            assert_eq!(m.get(k), Some(k * 2), "key {k}");
        }
        let stats = m.stats();
        assert_eq!(stats.len, 10_000);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn make_not_called_when_present() {
        let m = ShardedMap::with_shards(2);
        let calls = AtomicUsize::new(0);
        m.insert_if_absent(5, || {
            calls.fetch_add(1, Ordering::Relaxed);
            1
        });
        m.insert_if_absent(5, || {
            calls.fetch_add(1, Ordering::Relaxed);
            2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn update_cas_models_recovery_table() {
        // IsRecovering semantics: insert life if absent (first observer
        // recovers); else CAS stored == life-1 -> life.
        let m: ShardedMap<u64> = ShardedMap::with_shards(4);
        let key = 9;
        let is_recovering = |life: u64| -> bool {
            m.update_cas(key, |cur| match cur {
                None => (Some(life), false),
                Some(&stored) if stored == life - 1 => (Some(life), false),
                Some(_) => (None, true),
            })
        };
        assert!(!is_recovering(1), "first observer recovers life 1");
        assert!(is_recovering(1), "second observer of life 1 does not");
        assert!(!is_recovering(2), "first observer of life 2 recovers");
        assert!(is_recovering(2));
        assert!(is_recovering(2));
    }

    #[test]
    fn clear_empties_map() {
        let m = ShardedMap::with_shards(4);
        for k in 0..100 {
            m.insert_if_absent(k, || k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        // Reusable after clear.
        assert!(m.insert_if_absent(5, || 50));
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    fn entries_snapshot() {
        let m = ShardedMap::with_shards(4);
        for k in 0..50 {
            m.insert_if_absent(k, || k * 3);
        }
        let mut entries = m.entries();
        entries.sort();
        assert_eq!(entries.len(), 50);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(*k, i as i64);
            assert_eq!(*v, *k * 3);
        }
    }

    #[test]
    fn concurrent_insert_if_absent_exactly_one_winner() {
        let m: Arc<ShardedMap<usize>> = Arc::new(ShardedMap::with_shards(16));
        let winners = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for tid in 0..8 {
                let m = Arc::clone(&m);
                let winners = Arc::clone(&winners);
                s.spawn(move || {
                    for k in 0..1000i64 {
                        if m.insert_if_absent(k, || tid) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1000);
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let m: Arc<ShardedMap<i64>> = Arc::new(ShardedMap::with_shards(8));
        thread::scope(|s| {
            for t in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for k in 0..5000i64 {
                        match (k + t) % 3 {
                            0 => {
                                m.insert_if_absent(k, || k);
                            }
                            1 => {
                                if let Some(v) = m.get(k) {
                                    assert!(v == k || v == -k);
                                }
                            }
                            _ => {
                                m.update_cas(k, |cur| match cur {
                                    Some(&v) => (Some(v), ()),
                                    None => (None, ()),
                                });
                            }
                        }
                    }
                });
            }
        });
        // All inserted values are self-consistent.
        for (k, v) in m.entries() {
            assert_eq!(k, v);
        }
    }

    #[test]
    fn readers_never_block_through_growth_churn() {
        // One shard so every write interferes with every read: growth and
        // replace storms must still leave readers returning consistent
        // values (the seqlock fallback path is exercised here too).
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        m.insert_if_absent(-1, || 7);
        let stop = Arc::new(ft_sync::atomic::AtomicBool::new(false));
        thread::scope(|s| {
            for _ in 0..3 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        assert_eq!(m.get(-1), Some(7), "pinned key lost");
                        assert_eq!(m.get(i64::MIN), None, "phantom key appeared");
                        reads += 1;
                    }
                    assert!(reads > 0);
                });
            }
            let m2 = Arc::clone(&m);
            s.spawn(move || {
                for k in 0..20_000i64 {
                    m2.insert_if_absent(k, || k as u64);
                    if k % 64 == 0 {
                        m2.replace(k, k as u64);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        });
        assert_eq!(m.len(), 20_001);
    }

    #[test]
    fn replace_churn_readers_see_monotonic_values() {
        // A writer bumps one key 0→N; readers must only ever observe values
        // that were actually stored, never a torn or reclaimed one.
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        m.insert_if_absent(0, || 0);
        const N: u64 = 30_000;
        thread::scope(|s| {
            for _ in 0..3 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut last = 0u64;
                    loop {
                        let v = m.get(0).expect("key 0 always present");
                        assert!(v >= last, "value went backwards: {last} -> {v}");
                        assert!(v <= N);
                        last = v;
                        if v == N {
                            break;
                        }
                    }
                });
            }
            let m2 = Arc::clone(&m);
            s.spawn(move || {
                for v in 1..=N {
                    m2.replace(0, v);
                }
            });
        });
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u8> = ShardedMap::with_shards(5);
        assert_eq!(m.stats().shards, 8);
        let m: ShardedMap<u8> = ShardedMap::with_shards(0);
        assert_eq!(m.stats().shards, 1);
    }

    #[test]
    fn drop_frees_retired_garbage_exactly_once() {
        // Arc values: every clone handed out plus every retired box must be
        // accounted for — strong count returns to 1 at the end.
        let probe = Arc::new(());
        {
            let m: ShardedMap<Arc<()>> = ShardedMap::with_shards(1);
            for k in 0..500 {
                m.insert_if_absent(k, || Arc::clone(&probe));
            }
            for k in 0..500 {
                m.replace(k, Arc::clone(&probe)); // retires 500 boxes
                drop(m.get(k));
            }
            m.clear(); // retires the rest
            assert_eq!(Arc::strong_count(&probe), 1 + 1000);
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }
}
