//! Property tests for the versioned block store: retention semantics match
//! a sequential model, and every read is attributed to the right producer.

use nabbit_ft::blocks::{BlockError, BlockStore, Retention, Version};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Sequential model of one block under `KeepLast(k)` with
/// recovery-resident semantics.
#[derive(Default)]
struct BlockModel {
    resident: BTreeMap<Version, (i64, bool)>, // version -> (producer, recovery_resident)
    producers: BTreeMap<Version, i64>,
    latest: Option<Version>,
    pinned: BTreeMap<Version, bool>,
}

impl BlockModel {
    fn publish(&mut self, v: Version, producer: i64, keep: u64) {
        // Pinned versions are immutable resilient inputs.
        if self.pinned.get(&v).copied().unwrap_or(false) {
            return;
        }
        let is_new_latest = self.latest.map(|l| v > l).unwrap_or(true);
        let recovery_resident = !is_new_latest && !self.resident.contains_key(&v);
        self.producers.insert(v, producer);
        self.resident.insert(v, (producer, recovery_resident));
        if is_new_latest {
            self.latest = Some(v);
            if v >= keep {
                let out = v - keep;
                let evict = match self.resident.get(&out) {
                    Some(&(_, rr)) => !rr && !self.pinned.get(&out).copied().unwrap_or(false),
                    None => false,
                };
                if evict {
                    self.resident.remove(&out);
                }
            }
        }
    }

    fn publish_pinned(&mut self, v: Version, producer: i64) {
        if self.latest.map(|l| v > l).unwrap_or(true) {
            self.latest = Some(v);
        }
        self.producers.insert(v, producer);
        self.resident.insert(v, (producer, false));
        self.pinned.insert(v, true);
    }

    fn read(&self, v: Version) -> Result<i64, BlockError> {
        match self.resident.get(&v) {
            Some(&(producer, _)) => Ok(producer),
            None => match self.producers.get(&v) {
                Some(&producer) => Err(BlockError::Overwritten { producer }),
                None => Err(BlockError::Missing),
            },
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Publish(Version, i64),
    Read(Version),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..12, 0i64..100).prop_map(|(v, p)| Op::Publish(v, p)),
            (0u64..14).prop_map(Op::Read),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn retention_matches_model(keep in 1u64..4, script in ops(), pin_v0 in any::<bool>()) {
        let store: BlockStore<i64> = BlockStore::new(1, Retention::KeepLast(keep));
        let mut model = BlockModel::default();
        if pin_v0 {
            store.publish_pinned(0, 0, vec![-1]);
            model.publish_pinned(0, nabbit_ft::blocks::RESILIENT_PRODUCER);
        }
        for op in script {
            match op {
                Op::Publish(v, p) => {
                    // Pinned version 0 stays pinned; model mirrors publish.
                    store.publish(0, v, p, vec![p]);
                    model.publish(v, p, keep);
                }
                Op::Read(v) => {
                    let got = store.read(0, v);
                    let want = model.read(v);
                    match (got, want) {
                        (Ok(data), Ok(producer)) => {
                            // Data written by the recorded producer (pinned
                            // inputs carry the sentinel data).
                            if producer != nabbit_ft::blocks::RESILIENT_PRODUCER {
                                prop_assert_eq!(data[0], producer);
                            }
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(a, b),
                        (g, w) => prop_assert!(false, "store {:?} vs model {:?}", g.map(|d| d[0]), w),
                    }
                }
            }
            prop_assert_eq!(store.latest_version(0), model.latest);
            prop_assert_eq!(store.resident_versions(0), model.resident.len());
        }
    }

    #[test]
    fn keep_all_never_loses(script in ops()) {
        let store: BlockStore<i64> = BlockStore::new(1, Retention::KeepAll);
        let mut published = BTreeMap::new();
        for op in script {
            if let Op::Publish(v, p) = op {
                store.publish(0, v, p, vec![p]);
                published.insert(v, p);
            }
        }
        prop_assert_eq!(store.evictions(), 0);
        for (&v, &p) in &published {
            prop_assert_eq!(store.read(0, v).unwrap()[0], p);
        }
    }

    #[test]
    fn poison_then_republish_clears(
        versions in prop::collection::btree_set(0u64..10, 1..8),
    ) {
        let store: BlockStore<i64> = BlockStore::new(1, Retention::KeepAll);
        for &v in &versions {
            store.publish(0, v, v as i64, vec![v as i64]);
        }
        for &v in &versions {
            prop_assert!(store.poison(0, v));
            let read = store.read(0, v);
            prop_assert!(
                matches!(read, Err(BlockError::Poisoned { producer }) if producer == v as i64),
                "expected poisoned read, got {:?}",
                read.map(|d| d[0])
            );
            // The recovered producer republished: data readable again.
            store.publish(0, v, v as i64, vec![v as i64 + 1000]);
            prop_assert_eq!(store.read(0, v).unwrap()[0], v as i64 + 1000);
        }
    }
}
