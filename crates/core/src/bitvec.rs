//! Atomic notification bit vector (Guarantee 3).
//!
//! "We retain a bit vector that tracks if the join counter has been
//! decremented for a particular predecessor in the ordered list of
//! predecessors. This bit vector is initialized to 1 for all bits. Each bit
//! is unset when the corresponding predecessor is observed to have been
//! computed […]. The join counter is decremented only if that bit is set."
//!
//! The vector has one bit per predecessor **plus one for the task itself**:
//! `InitAndCompute` ends with a self-notification (`NotifyOnce(A, key, key)`)
//! so the join counter starts at `|in(A)| + 1`; the self bit keeps that
//! decrement exactly-once too (a reset node re-traverses and re-self-
//! notifies).

use ft_sync::atomic::{AtomicU64, Ordering};

/// A fixed-width vector of atomically clearable bits.
pub struct AtomicBitVec {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitVec {
    /// Create a vector of `len` bits, all set to 1.
    pub fn new_all_set(len: usize) -> Self {
        let nwords = len.div_ceil(64).max(1);
        let words: Vec<AtomicU64> = (0..nwords)
            .map(|w| {
                let bits_in_word = if (w + 1) * 64 <= len {
                    64
                } else {
                    len.saturating_sub(w * 64)
                };
                AtomicU64::new(if bits_in_word == 64 {
                    u64::MAX
                } else {
                    (1u64 << bits_in_word) - 1
                })
            })
            .collect();
        AtomicBitVec { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `AtomicBitUnset`: clear bit `i`. Returns `true` iff the bit was set
    /// (i.e. this caller won the right to decrement the join counter).
    pub fn unset(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_and(!mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Read bit `i` (used by `ReinitNotifyEntry`: "if S.bitVector[ind]==1").
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64].load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// `SetAllBits`: restore every bit to 1 (used by `ResetNode`).
    pub fn set_all(&self) {
        for (w, word) in self.words.iter().enumerate() {
            let bits_in_word = if (w + 1) * 64 <= self.len {
                64
            } else {
                self.len.saturating_sub(w * 64)
            };
            let v = if bits_in_word == 64 {
                u64::MAX
            } else {
                (1u64 << bits_in_word) - 1
            };
            word.store(v, Ordering::Release);
        }
    }

    /// Number of set bits (diagnostics).
    pub fn count_set(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_all_set() {
        for len in [0, 1, 5, 63, 64, 65, 128, 130] {
            let v = AtomicBitVec::new_all_set(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.count_set(), len, "len={len}");
            for i in 0..len {
                assert!(v.get(i), "bit {i} of {len}");
            }
        }
    }

    #[test]
    fn unset_returns_true_once() {
        let v = AtomicBitVec::new_all_set(10);
        assert!(v.unset(3));
        assert!(!v.unset(3));
        assert!(!v.get(3));
        assert!(v.get(2));
        assert_eq!(v.count_set(), 9);
    }

    #[test]
    fn set_all_restores() {
        let v = AtomicBitVec::new_all_set(100);
        for i in 0..100 {
            v.unset(i);
        }
        assert_eq!(v.count_set(), 0);
        v.set_all();
        assert_eq!(v.count_set(), 100);
        // Bits beyond len must stay clear so count_set stays exact.
        assert!(v.unset(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = AtomicBitVec::new_all_set(4);
        v.unset(4);
    }

    #[test]
    fn word_boundary_bits() {
        let v = AtomicBitVec::new_all_set(65);
        assert!(v.unset(63));
        assert!(v.unset(64));
        assert!(!v.unset(64));
        assert_eq!(v.count_set(), 63);
    }

    #[test]
    fn concurrent_unset_exactly_one_winner_per_bit() {
        const BITS: usize = 256;
        let v = Arc::new(AtomicBitVec::new_all_set(BITS));
        let wins = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..8 {
                let v = Arc::clone(&v);
                let wins = Arc::clone(&wins);
                s.spawn(move || {
                    for i in 0..BITS {
                        if v.unset(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), BITS);
        assert_eq!(v.count_set(), 0);
    }
}
