//! Loom model tests for the seqlock read path of [`ft_cmap::ShardedMap`]:
//! optimistic readers racing writers through value replacement, table
//! growth, and insert races.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-cmap --test loom_seqlock
//! ```
//!
//! Under `--cfg loom` the map compiles against `loom::sync::atomic`, so
//! every sequence-counter load, table-pointer publication, and slot store
//! is a model-exploration point. `LOOM_MAX_ITERS` / `LOOM_SEED` control
//! the exploration budget and make failures replayable.
#![cfg(loom)]

use ft_cmap::ShardedMap;
use std::sync::Arc;

/// Readers racing `replace` churn on one key: every observed value must be
/// one the single writer actually stored, and — because the writer stores
/// them in increasing order — the sequence of observations must be
/// monotone. A torn read, a stale-table read slipping past validation, or
/// a read of a freed box would all break this.
#[test]
fn reader_sees_only_stored_values_monotonically_during_replace() {
    const LAST: u64 = 6;
    loom::model(|| {
        let m = Arc::new(ShardedMap::<u64>::with_shards(1));
        m.insert_if_absent(1, || 0);
        let m2 = Arc::clone(&m);
        let writer = loom::thread::spawn(move || {
            for v in 1..=LAST {
                m2.replace(1, v);
            }
        });
        let mut last = 0u64;
        loop {
            let v = m.get(1).expect("key 1 vanished mid-churn");
            assert!(v <= LAST, "value {v} was never stored");
            assert!(v >= last, "went backwards: {v} after {last}");
            last = v;
            if v == LAST {
                break;
            }
        }
        writer.join().unwrap();
        assert_eq!(m.get(1), Some(LAST));
    });
}

/// Readers pinned on pre-inserted keys while a writer inserts enough new
/// keys to trigger a table grow (seq-bumped table swap). The reader must
/// see its keys throughout — before, during, and after the swap — and
/// never a missing or wrong value.
#[test]
fn reader_survives_table_growth() {
    loom::model(|| {
        let m = Arc::new(ShardedMap::<u64>::with_shards(1));
        // Tables start at 64 slots and grow at load factor 0.7; 40
        // pre-inserted keys put the next writer burst across the
        // threshold.
        for k in 0..40i64 {
            m.insert_if_absent(k, || k as u64 * 10);
        }
        let m2 = Arc::clone(&m);
        let writer = loom::thread::spawn(move || {
            for k in 100..120i64 {
                m2.insert_if_absent(k, || k as u64);
            }
        });
        for _ in 0..30 {
            for k in [0i64, 7, 39] {
                assert_eq!(
                    m.get(k),
                    Some(k as u64 * 10),
                    "pre-inserted key {k} lost or corrupted during growth"
                );
            }
            assert!(!m.contains(999));
        }
        writer.join().unwrap();
        for k in 100..120i64 {
            assert_eq!(m.get(k), Some(k as u64), "writer's key {k} missing");
        }
        assert_eq!(m.len(), 60);
    });
}

/// Two threads race `insert_if_absent` on the same key: exactly one wins,
/// and every subsequent read returns the winner's value.
#[test]
fn insert_if_absent_race_single_winner() {
    loom::model(|| {
        let m = Arc::new(ShardedMap::<u64>::with_shards(1));
        let m2 = Arc::clone(&m);
        let other = loom::thread::spawn(move || m2.insert_if_absent(5, || 111));
        let here = m.insert_if_absent(5, || 222);
        let there = other.join().unwrap();
        assert!(here ^ there, "exactly one insert must win");
        let v = m.get(5).unwrap();
        assert_eq!(v, if here { 222 } else { 111 });
        assert_eq!(m.len(), 1);
    });
}

/// A reader racing `update_cas` increments (the recovery-table pattern):
/// each observation is a value the CAS chain actually produced, and the
/// final value equals the number of increments.
#[test]
fn reader_races_update_cas_chain() {
    const INCS: u64 = 8;
    loom::model(|| {
        let m = Arc::new(ShardedMap::<u64>::with_shards(1));
        let m2 = Arc::clone(&m);
        let writer = loom::thread::spawn(move || {
            for _ in 0..INCS {
                m2.update_cas(3, |cur| {
                    let n = cur.copied().unwrap_or(0) + 1;
                    (Some(n), n)
                });
            }
        });
        let mut last = 0u64;
        for _ in 0..40 {
            if let Some(v) = m.get(3) {
                assert!(v >= 1 && v <= INCS, "value {v} never produced");
                assert!(v >= last, "went backwards: {v} after {last}");
                last = v;
            }
        }
        writer.join().unwrap();
        assert_eq!(m.get(3), Some(INCS));
    });
}
