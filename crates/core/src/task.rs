//! Task descriptors — the per-task runtime state of Section III.
//!
//! "For each task, the runtime holds the following fields: (int) join […],
//! (int64_t*) notifyArray […], (int) status". The fault-tolerant version
//! adds the notification bit vector, the life number, a recovery marker and
//! the poison/overwritten flags through which detected errors surface.
//!
//! Two descriptor types exist so the baseline scheduler (Figure 2,
//! non-shaded) carries **zero** fault-tolerance state — the paper's
//! "baseline version includes no additional data structures or statements
//! introduced for fault tolerance". The shared traversal engine sees both
//! through the [`Descriptor`] trait.

use crate::bitvec::AtomicBitVec;
use crate::fault::Fault;
use crate::graph::Key;
use crate::scheduler::engine::Descriptor;
use ft_sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use parking_lot::Mutex;

/// Execution status of a task ("Visited, Computed, and Completed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Status {
    /// Created and inserted into the hash map; compute not yet done.
    Visited = 0,
    /// The `compute` function has executed.
    Computed = 1,
    /// All enqueued successors have been notified.
    Completed = 2,
}

impl Status {
    /// Decode a raw status byte; `None` if the byte holds none of the
    /// three legal values — a smashed status, which the FT scheduler
    /// surfaces as a descriptor fault rather than a spuriously finished
    /// task.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Visited),
            1 => Some(Status::Computed),
            2 => Some(Status::Completed),
            _ => None,
        }
    }
}

/// Descriptor for the **baseline** (non-fault-tolerant) scheduler.
pub struct BaseDesc {
    /// Task key.
    pub key: Key,
    /// Ordered immediate predecessors (cached at creation; `Init(A)`).
    /// A boxed slice: the traversal iterates it by reference, never clones.
    pub preds: Box<[Key]>,
    /// Join counter, initialized to `|preds)| + 1` (the +1 is consumed by
    /// the self-notification at the end of `InitAndCompute`).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successors enqueued to be notified when this task computes.
    pub notify: Mutex<Vec<Key>>,
}

impl BaseDesc {
    /// Create a descriptor with the given ordered predecessor list.
    pub fn new(key: Key, preds: Vec<Key>) -> Self {
        let join = preds.len() as i64 + 1;
        BaseDesc {
            key,
            preds: preds.into_boxed_slice(),
            join: AtomicI64::new(join),
            status: AtomicU8::new(Status::Visited as u8),
            notify: Mutex::new(Vec::new()),
        }
    }

    /// Current status. The baseline has no fault model, so a corrupt
    /// status byte (impossible without injection) is a panic, never a
    /// silent `Completed`.
    pub fn status(&self) -> Status {
        Status::from_u8(self.status.load(Ordering::Acquire))
            .expect("corrupt status byte — the baseline scheduler has no fault model")
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        self.status.store(s as u8, Ordering::Release);
    }
}

impl Descriptor for BaseDesc {
    fn life(&self) -> u64 {
        1
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify(&self) -> &Mutex<Vec<Key>> {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        BaseDesc::set_status(self, s);
    }
}

/// Descriptor for the **fault-tolerant** scheduler.
pub struct FtDesc {
    /// Task key.
    pub key: Key,
    /// Life number of this incarnation (1 = original; recovery replaces the
    /// map entry with a descriptor of life+1).
    pub life: u64,
    /// Ordered immediate predecessors (boxed slice, iterated by reference).
    pub preds: Box<[Key]>,
    /// Join counter (`|preds| + 1`, self-notification included).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successors awaiting notification.
    pub notify: Mutex<Vec<Key>>,
    /// Per-predecessor (plus self) notification bits; Guarantee 3.
    pub bits: AtomicBitVec,
    /// True once a detected soft error has corrupted this descriptor.
    /// "Once an error is detected, all subsequent accesses observe it."
    pub poisoned: AtomicBool,
    /// True once a data-block version produced by this task was evicted and
    /// is again needed — the task must be re-executed as if it failed.
    pub overwritten: AtomicBool,
    /// True when this incarnation was created by `RecoverTask`.
    pub is_recovery: AtomicBool,
}

impl FtDesc {
    /// Create incarnation `life` of task `key` with the given ordered
    /// predecessor list. Join counter and bit vector cover `preds` plus the
    /// self slot.
    pub fn new(key: Key, life: u64, preds: Vec<Key>) -> Self {
        let n = preds.len();
        FtDesc {
            key,
            life,
            preds: preds.into_boxed_slice(),
            join: AtomicI64::new(n as i64 + 1),
            status: AtomicU8::new(Status::Visited as u8),
            notify: Mutex::new(Vec::new()),
            bits: AtomicBitVec::new_all_set(n + 1),
            poisoned: AtomicBool::new(false),
            overwritten: AtomicBool::new(false),
            is_recovery: AtomicBool::new(false),
        }
    }

    /// Guarded status read: a byte outside the three legal values means
    /// the descriptor was corrupted, and surfaces as a descriptor fault
    /// exactly like a poisoned flag.
    pub fn try_status(&self) -> Result<Status, Fault> {
        Status::from_u8(self.status.load(Ordering::Acquire))
            .ok_or_else(|| Fault::descriptor(self.key, self.life))
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        self.status.store(s as u8, Ordering::Release);
    }

    /// Guarded access: fail if this descriptor has been corrupted. Every
    /// routine that touches the descriptor inside one of the paper's try
    /// blocks calls this first.
    pub fn check(&self) -> Result<(), Fault> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(Fault::descriptor(self.key, self.life))
        } else {
            Ok(())
        }
    }

    /// `ConvertPredKeyToIndex`: position of `pkey` in the ordered
    /// predecessor list, or the self slot when `pkey == self.key`.
    ///
    /// Returns `None` when `pkey` is not a predecessor (can happen when the
    /// predecessor list of a *new incarnation* differs — it cannot for the
    /// deterministic graphs the contract requires, so callers treat `None`
    /// as a descriptor error).
    pub fn pred_index(&self, pkey: Key) -> Option<usize> {
        if pkey == self.key {
            return Some(self.preds.len());
        }
        self.preds.iter().position(|&p| p == pkey)
    }

    /// `ResetNode` state restoration: join back to `|preds| + 1`, all bits
    /// set. (The caller then re-runs `InitAndCompute`.)
    pub fn reset_for_reexploration(&self) {
        self.join
            .store(self.preds.len() as i64 + 1, Ordering::Release);
        self.bits.set_all();
    }
}

impl Descriptor for FtDesc {
    fn life(&self) -> u64 {
        self.life
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify(&self) -> &Mutex<Vec<Key>> {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        FtDesc::set_status(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_desc_initial_state() {
        let d = BaseDesc::new(5, vec![1, 2, 3]);
        assert_eq!(d.key, 5);
        assert_eq!(d.join.load(Ordering::Relaxed), 4);
        assert_eq!(d.status(), Status::Visited);
        assert!(d.notify.lock().is_empty());
    }

    #[test]
    fn ft_desc_initial_state() {
        let d = FtDesc::new(5, 1, vec![1, 2]);
        assert_eq!(d.life, 1);
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.len(), 3);
        assert_eq!(d.bits.count_set(), 3);
        assert!(d.check().is_ok());
        assert!(!d.is_recovery.load(Ordering::Relaxed));
    }

    #[test]
    fn status_ordering_matches_paper() {
        // "if (B.status < Computed)" relies on Visited < Computed < Completed.
        assert!(Status::Visited < Status::Computed);
        assert!(Status::Computed < Status::Completed);
    }

    #[test]
    fn from_u8_rejects_garbage() {
        assert_eq!(Status::from_u8(0), Some(Status::Visited));
        assert_eq!(Status::from_u8(1), Some(Status::Computed));
        assert_eq!(Status::from_u8(2), Some(Status::Completed));
        for v in 3..=255u8 {
            assert_eq!(Status::from_u8(v), None, "byte {v} must not decode");
        }
    }

    #[test]
    fn ft_corrupt_status_byte_is_a_descriptor_fault() {
        let d = FtDesc::new(7, 3, vec![1]);
        assert_eq!(d.try_status().unwrap(), Status::Visited);
        d.status.store(0xAB, Ordering::Release);
        let err = d.try_status().unwrap_err();
        assert_eq!(err.source, 7);
        assert_eq!(err.life, 3);
    }

    #[test]
    #[should_panic(expected = "corrupt status byte")]
    fn base_corrupt_status_byte_panics() {
        let d = BaseDesc::new(1, vec![]);
        d.status.store(0xFF, Ordering::Release);
        let _ = d.status();
    }

    #[test]
    fn pred_index_including_self() {
        let d = FtDesc::new(10, 1, vec![7, 8, 9]);
        assert_eq!(d.pred_index(7), Some(0));
        assert_eq!(d.pred_index(9), Some(2));
        assert_eq!(d.pred_index(10), Some(3), "self slot is last");
        assert_eq!(d.pred_index(99), None);
    }

    #[test]
    fn check_fails_after_poison() {
        let d = FtDesc::new(3, 2, vec![]);
        d.poisoned.store(true, Ordering::Release);
        let err = d.check().unwrap_err();
        assert_eq!(err.source, 3);
        assert_eq!(err.life, 2);
    }

    #[test]
    fn reset_restores_join_and_bits() {
        let d = FtDesc::new(1, 1, vec![2, 3]);
        assert!(d.bits.unset(0));
        assert!(d.bits.unset(2));
        d.join.store(0, Ordering::Relaxed);
        d.reset_for_reexploration();
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.count_set(), 3);
    }

    #[test]
    fn source_task_has_join_one() {
        // A source (no preds) still needs the self-notification to fire.
        let d = FtDesc::new(0, 1, vec![]);
        assert_eq!(d.join.load(Ordering::Relaxed), 1);
        assert_eq!(d.pred_index(0), Some(0));
    }
}
