//! Integration tests for the pool's external-submission path and latch
//! APIs — the paths `run_until_complete` does not exercise.

use ft_steal::latch::{CountLatch, Flag};
use ft_steal::pool::{Pool, PoolConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn external_spawn_executes_without_run() {
    let pool = Pool::new(PoolConfig::with_threads(2));
    let done = Arc::new(Flag::new());
    let d = Arc::clone(&done);
    pool.spawn(move |_| d.set());
    done.wait();
    assert!(done.is_set());
}

#[test]
fn external_spawn_can_fan_out() {
    let pool = Pool::new(PoolConfig::with_threads(3));
    let latch = Arc::new(CountLatch::new());
    let counter = Arc::new(AtomicUsize::new(0));
    for _ in 0..50 {
        latch.increment();
    }
    for _ in 0..50 {
        let latch = Arc::clone(&latch);
        let counter = Arc::clone(&counter);
        pool.spawn(move |s| {
            // Jobs spawned from workers fan out further.
            let inner_latch = Arc::clone(&latch);
            let inner_counter = Arc::clone(&counter);
            s.spawn(move |_| {
                inner_counter.fetch_add(1, Ordering::Relaxed);
                inner_latch.decrement();
            });
        });
    }
    latch.wait();
    assert_eq!(counter.load(Ordering::Relaxed), 50);
}

#[test]
fn injector_path_used_for_external_submissions() {
    // Submissions from a non-worker thread must go through the injector
    // and still be executed (steal metric counts injector pops as steals).
    let pool = Pool::new(PoolConfig::with_threads(2));
    pool.reset_metrics();
    let flag = Arc::new(Flag::new());
    let f = Arc::clone(&flag);
    pool.spawn(move |_| f.set());
    flag.wait();
    let m = pool.metrics();
    assert!(m.executed >= 1);
    assert!(m.steals >= 1, "external job must arrive via the injector");
    assert_eq!(m.spawned, 0, "no worker-local spawns happened");
}

#[test]
fn pool_drop_with_idle_workers_terminates() {
    // Regression guard: dropping a pool whose workers are parked must not
    // hang (the shutdown path has to wake them).
    for _ in 0..5 {
        let pool = Pool::new(PoolConfig::with_threads(4));
        pool.run_until_complete(|scope| {
            scope.spawn(|_| {});
        });
        drop(pool);
    }
}

#[test]
fn many_pools_coexist() {
    // Two pools in one process: thread-local worker contexts must not
    // cross-contaminate (spawns from pool A workers stay in pool A).
    let a = Pool::new(PoolConfig::with_threads(2));
    let b = Pool::new(PoolConfig::with_threads(2));
    let count_a = Arc::new(AtomicUsize::new(0));
    let count_b = Arc::new(AtomicUsize::new(0));
    let ca = Arc::clone(&count_a);
    a.run_until_complete(|scope| {
        for _ in 0..100 {
            let ca = Arc::clone(&ca);
            scope.spawn(move |s| {
                let ca2 = Arc::clone(&ca);
                s.spawn(move |_| {
                    ca2.fetch_add(1, Ordering::Relaxed);
                });
                ca.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let cb = Arc::clone(&count_b);
    b.run_until_complete(|scope| {
        for _ in 0..100 {
            let cb = Arc::clone(&cb);
            scope.spawn(move |_| {
                cb.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count_a.load(Ordering::Relaxed), 200);
    assert_eq!(count_b.load(Ordering::Relaxed), 100);
}

#[test]
fn num_threads_reported() {
    let pool = Pool::new(PoolConfig::with_threads(3));
    assert_eq!(pool.num_threads(), 3);
    pool.run_until_complete(|scope| {
        assert_eq!(scope.num_threads(), 3);
    });
}
