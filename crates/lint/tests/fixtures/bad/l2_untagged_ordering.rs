//! Bad fixture for L2: a non-SeqCst ordering with no `// ord:` tag.

use ft_sync::atomic::{AtomicUsize, Ordering};

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release);
}
