//! `bench_pr4` — lock-free hot-path snapshot.
//!
//! Emits `BENCH_PR4.json`: two microbenches that justify the PR-4 hot-path
//! rework by ablation, plus the same three baseline-vs-FT workloads as
//! `bench_pr2` so the no-fault overhead trajectory stays comparable across
//! PRs:
//!
//! * `map_get` — single-thread `get` throughput of the seqlock
//!   [`ShardedMap`] against the retained RwLock [`LockedMap`] baseline.
//! * `injector_cycle` — push/steal throughput of the segmented lock-free
//!   injector against the `Mutex<VecDeque>` queue it replaced.
//!
//! Usage: `bench_pr4 [--reps N] [--threads T] [--out PATH]
//! [--check --ref BENCH_PR2.json]`
//!
//! `--check` turns the snapshot into a smoke gate: the seqlock map must
//! show ≥ 2× read throughput, the injector must beat the mutex queue, and
//! no workload's FT overhead may regress more than 15 percentage points
//! against the reference file named by `--ref` on both the mean-based and
//! the best-of-reps estimate (improvements pass; single-estimator noise
//! does not fail the gate).
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); the resolved values and the git revision are recorded
//! in the emitted JSON.

use ft_apps::AppConfig;
use ft_bench::report::fmt_pct;
use ft_bench::snapshot::{bench_app, bench_grid, parse_overheads};
use ft_bench::AppKind;
use ft_cmap::{LockedMap, ShardedMap};
use ft_steal::injector::Injector;
use ft_steal::pool::{Pool, PoolConfig};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::hint::black_box;

/// Keys resident in each map during the read microbench.
const MAP_KEYS: i64 = 8192;
/// Items cycled through each queue per measured sweep.
const QUEUE_ITEMS: u64 = 4096;
/// Queue burst size: items pushed before draining (crosses injector block
/// boundaries, BLOCK_CAP = 31).
const QUEUE_BURST: u64 = 64;

/// One ablation pair: new implementation vs. retained baseline, in
/// operations per second.
struct MicroResult {
    name: &'static str,
    new_ops_per_s: f64,
    old_ops_per_s: f64,
}

impl MicroResult {
    fn speedup(&self) -> f64 {
        self.new_ops_per_s / self.old_ops_per_s
    }
    fn to_json(&self) -> String {
        format!(
            "    \"{}\": {{\n      \"new_ops_per_s\": {:.0},\n      \
             \"baseline_ops_per_s\": {:.0},\n      \"speedup\": {:.2}\n    }}",
            self.name,
            self.new_ops_per_s,
            self.old_ops_per_s,
            self.speedup()
        )
    }
}

/// Single-thread `get` throughput: every key read once per sweep. The
/// seqlock map answers from two sequence loads and a probe; the RwLock
/// baseline pays a read-lock acquire/release (two atomic RMWs) per call.
fn micro_map_get(reps: usize) -> MicroResult {
    let sharded = ShardedMap::<u64>::with_shards(64);
    let locked = LockedMap::<u64>::with_shards(64);
    for k in 0..MAP_KEYS {
        sharded.insert_if_absent(k, || k as u64);
        locked.insert_if_absent(k, || k as u64);
    }
    // Sweeps per rep keep each timed sample well above clock granularity.
    const SWEEPS: i64 = 20;
    let sweep_sharded = || {
        for _ in 0..SWEEPS {
            for k in 0..MAP_KEYS {
                black_box(sharded.get(black_box(k)));
            }
        }
    };
    let sweep_locked = || {
        for _ in 0..SWEEPS {
            for k in 0..MAP_KEYS {
                black_box(locked.get(black_box(k)));
            }
        }
    };
    // Warm both paths, then compare best-of-reps: min is robust against
    // the scheduler interference a loaded CI box injects into means.
    sweep_sharded();
    sweep_locked();
    let new = ft_bench::measure(reps, sweep_sharded);
    let old = ft_bench::measure(reps, sweep_locked);
    let ops = (MAP_KEYS * SWEEPS) as f64;
    MicroResult {
        name: "map_get",
        new_ops_per_s: ops / new.min,
        old_ops_per_s: ops / old.min,
    }
}

/// Push/steal cycle throughput in bursts of [`QUEUE_BURST`]: the injector
/// pays one index CAS per operation and recycles its blocks; the mutex
/// queue it replaced pays a lock acquire/release around every operation.
fn micro_injector_cycle(reps: usize) -> MicroResult {
    let injector = Injector::<u64>::new();
    let mutex_queue: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
    // Warm both: injector block cache populated, VecDeque capacity grown.
    for i in 0..QUEUE_BURST {
        injector.push(i);
        mutex_queue.lock().push_back(i);
    }
    while injector.steal().is_some() {}
    mutex_queue.lock().clear();

    let bursts = QUEUE_ITEMS / QUEUE_BURST;
    let cycle_injector = || {
        for b in 0..bursts {
            for i in 0..QUEUE_BURST {
                injector.push(b * QUEUE_BURST + i);
            }
            for _ in 0..QUEUE_BURST {
                black_box(injector.steal());
            }
        }
    };
    let cycle_mutex = || {
        for b in 0..bursts {
            for i in 0..QUEUE_BURST {
                mutex_queue.lock().push_back(b * QUEUE_BURST + i);
            }
            for _ in 0..QUEUE_BURST {
                black_box(mutex_queue.lock().pop_front());
            }
        }
    };
    cycle_injector();
    cycle_mutex();
    let new = ft_bench::measure(reps, cycle_injector);
    let old = ft_bench::measure(reps, cycle_mutex);
    // One op = one push or one steal; best-of-reps as in `micro_map_get`.
    let ops = (2 * QUEUE_ITEMS) as f64;
    MicroResult {
        name: "injector_cycle",
        new_ops_per_s: ops / new.min,
        old_ops_per_s: ops / old.min,
    }
}

fn main() {
    let cli = ft_bench::meta::parse_args(
        "bench_pr4 [--reps N] [--threads T] [--out PATH] [--check --ref BENCH_PR2.json]",
        2,
        "BENCH_PR4.json",
    );
    let (reps, threads) = (cli.reps, cli.threads);

    // Microbench reps are near-free (sub-ms each) and the min-of-reps
    // statistic sharpens with more samples, so give them a floor.
    let micro_reps = reps.max(10);
    let micros = vec![micro_map_get(micro_reps), micro_injector_cycle(micro_reps)];
    for m in &micros {
        println!(
            "{:<18} new {:>12.0} ops/s   baseline {:>12.0} ops/s   speedup {:.2}x",
            m.name,
            m.new_ops_per_s,
            m.old_ops_per_s,
            m.speedup()
        );
    }

    let pool = Pool::new(PoolConfig::with_threads(threads));
    let results = vec![
        bench_grid(&pool, 96, reps),
        bench_app(&pool, AppKind::Lcs, AppConfig::new(2048, 64), reps),
        bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps),
    ];
    for r in &results {
        println!(
            "{:<18} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  \
             overhead {} (min-based {})",
            r.name,
            r.tasks,
            r.baseline.mean,
            r.baseline.std,
            r.ft.mean,
            r.ft.std,
            fmt_pct(r.overhead_pct()),
            fmt_pct(r.overhead_min_pct()),
        );
    }

    let micro_rows: Vec<String> = micros.iter().map(|m| m.to_json()).collect();
    let rows: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n{},\n  \"micro\": {{\n{}\n  }},\n  \"benches\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::json_header("bench_pr4/v1", threads, reps),
        micro_rows.join(",\n"),
        rows.join(",\n")
    );
    ft_bench::meta::write_snapshot(&cli.out, &json);

    if !cli.check {
        return;
    }

    // --- Smoke gate ------------------------------------------------------
    let mut failures = Vec::new();
    let map = &micros[0];
    if map.speedup() < 2.0 {
        failures.push(format!(
            "map_get speedup {:.2}x < 2.0x required over the RwLock baseline",
            map.speedup()
        ));
    }
    let inj = &micros[1];
    if inj.speedup() <= 1.0 {
        failures.push(format!(
            "injector_cycle speedup {:.2}x — does not beat Mutex<VecDeque>",
            inj.speedup()
        ));
    }
    if let Some(path) = cli.reference {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let reference_rows = parse_overheads(&text);
        assert!(
            !reference_rows.is_empty(),
            "no ft_overhead_pct rows found in {path}"
        );
        // Band in percentage points: overheads are a few percent, so a
        // relative band around them would be noise-dominated. One-sided:
        // the gate catches *regressions*; an FT overhead that dropped far
        // below the reference is an improvement, not a failure. On a
        // shared CI box each estimator alone flakes — means absorb
        // interference spikes, minima are skewed when one side lucks into
        // an unusually quiet run — but a *real* regression shifts both,
        // so the gate requires the two estimators to agree.
        const BAND_PP: f64 = 15.0;
        for (name, ref_pct) in &reference_rows {
            let Some(r) = results.iter().find(|r| r.name == *name) else {
                failures.push(format!("reference workload {name} missing from this run"));
                continue;
            };
            let d_mean = r.overhead_pct() - ref_pct;
            let d_min = r.overhead_min_pct() - ref_pct;
            if d_mean > BAND_PP && d_min > BAND_PP {
                failures.push(format!(
                    "{name}: ft overhead {:.2}% (mean) / {:.2}% (min) vs reference \
                     {ref_pct:.2}% — both estimators exceed +{BAND_PP}pp",
                    r.overhead_pct(),
                    r.overhead_min_pct()
                ));
            } else {
                println!(
                    "check {name}: Δ mean {d_mean:+.2}pp / min {d_min:+.2}pp \
                     (gate: both > +{BAND_PP}pp)"
                );
            }
        }
    }
    ft_bench::meta::exit_gate(&failures);
}
