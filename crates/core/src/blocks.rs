//! Versioned data blocks with memory reuse.
//!
//! Section II: "we allow updates to data blocks, as long as the dependences
//! specified ensure that all uses of a data block causally precede a
//! subsequent definition (considered the next version) of the same block."
//! Section VI evaluates *memory reuse* implementations in which later
//! versions overwrite earlier ones, which is precisely what makes recovery
//! interesting: "a fault might result in the need to use such a data block
//! version after it has been overwritten", forcing re-execution of the
//! chain of producers.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper overwrites buffers in place; safe Rust models the identical
//! lifecycle with **version eviction**: publishing version `v` of a block
//! under `KeepLast(k)` evicts version `v − k`. A read of an evicted version
//! fails with [`BlockError::Overwritten`] carrying the *producer task key*
//! recorded at publish time, which the scheduler turns into the paper's
//! producer re-execution chain. Versions republished during recovery
//! (version < current latest) are marked recovery-resident and are never
//! evicted again within the run — the retention relaxation the paper itself
//! suggests ("could be ameliorated by retaining the intermediate versions
//! in memory") and which guarantees recovery chains terminate.
//!
//! ## Wait-free reads (PR 9)
//!
//! Reads never take a lock. Each block publishes an **immutable version
//! table** through an [`AtomicPtr`](ft_sync::atomic::AtomicPtr) plus a
//! `latest` version counter (`version + 1`, 0 = none), mirroring the
//! copy-on-write discipline of `ft-cmap` (PR 4): writers serialize on a
//! per-block mutex, build a fresh table, and publish it with a Release
//! store *before* bumping `latest` (also Release). A reader that
//! Acquire-loads `latest` and then Acquire-loads the table is therefore
//! guaranteed to find the version `latest` names — the table can only be
//! *newer* than the counter, never older. Retired tables are parked in a
//! graveyard guarded by the writer mutex and freed when the store drops,
//! so a table pointer loaded by any reader stays valid for the store's
//! lifetime (no hazard pointers or epochs needed at this version-grained
//! churn rate; tables are small — one slot per version ever published).

use crate::fault::Fault;
use crate::graph::Key;
use ft_sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use parking_lot::Mutex;
use std::sync::Arc;

/// Dense identifier of a data block (application-chosen indexing).
pub type BlockId = usize;

/// Version number of a block (0 = first definition).
pub type Version = u64;

/// Producer key recorded for pinned (resilient input) versions.
pub const RESILIENT_PRODUCER: Key = i64::MIN;

/// Why a versioned read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The version exists but was poisoned by a detected soft error.
    Poisoned {
        /// Task that produced the corrupt version.
        producer: Key,
    },
    /// The version was evicted under the memory-reuse policy.
    Overwritten {
        /// Task that produced the evicted version.
        producer: Key,
    },
    /// The version was never published — a scheduling invariant violation
    /// (a task computed before its producer notified it).
    Missing,
}

impl BlockError {
    /// Convert to the scheduler-level [`Fault`], attributing the error to
    /// the producing task.
    pub fn into_fault(self) -> Fault {
        match self {
            BlockError::Poisoned { producer } => Fault::data(producer),
            BlockError::Overwritten { producer } => Fault::overwritten(producer),
            BlockError::Missing => {
                panic!("read of a never-published block version: dependence bug")
            }
        }
    }
}

/// How many versions of each block stay resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Single-assignment style: every version stays (LCS).
    KeepAll,
    /// Memory reuse: publishing version `v` evicts version `v − k`
    /// (`KeepLast(1)` = plain reuse; `KeepLast(2)` = the paper's
    /// two-version Floyd-Warshall configuration).
    KeepLast(u64),
}

/// One version's record in the immutable table. `data: None` is the
/// eviction tombstone: the version existed, its producer is remembered for
/// [`BlockError::Overwritten`] attribution, but its payload was reclaimed.
struct Slot<T> {
    version: Version,
    producer: Key,
    poisoned: bool,
    /// Republished by recovery below the current latest; never evict.
    recovery_resident: bool,
    data: Option<Arc<Vec<T>>>,
}

impl<T> Clone for Slot<T> {
    fn clone(&self) -> Self {
        Slot {
            version: self.version,
            producer: self.producer,
            poisoned: self.poisoned,
            recovery_resident: self.recovery_resident,
            data: self.data.clone(),
        }
    }
}

/// An immutable snapshot of every version ever published to one block,
/// sorted by version number. Writers replace the whole table; readers
/// binary-search a consistent snapshot without synchronizing with writers.
struct Table<T> {
    slots: Vec<Slot<T>>,
}

impl<T> Table<T> {
    fn find(&self, version: Version) -> Option<&Slot<T>> {
        self.slots
            .binary_search_by_key(&version, |s| s.version)
            .ok()
            .map(|i| &self.slots[i])
    }
}

struct Block<T> {
    /// Latest published version + 1 (0 = nothing published yet).
    latest: AtomicU64,
    /// Current table. Writers store with Release after building the new
    /// snapshot; readers load with Acquire and dereference lock-free.
    table: AtomicPtr<Table<T>>,
    /// Writer serialization. The guarded vec is the graveyard of retired
    /// tables: readers may still hold references into them, so they are
    /// only freed in `Drop`, under exclusive access.
    writer: Mutex<Vec<*mut Table<T>>>,
}

// SAFETY: the only fields the auto-trait derivation cannot see are the raw
// `Table` pointers (current and retired). Tables are created by writers,
// published via the AtomicPtr, and freed exactly once under `&mut self` in
// `Drop`; between publication and drop they are immutable and live, so
// sharing `&Block<T>` across threads hands out only `&Table<T>` /
// `Arc<Vec<T>>` views, which requires `T: Send + Sync` (the same bound the
// pre-PR9 `Mutex<BTreeMap>` layout imposed structurally).
unsafe impl<T: Send + Sync> Send for Block<T> {}
// SAFETY: see the `Send` impl above — all shared access is to immutable
// published tables.
unsafe impl<T: Send + Sync> Sync for Block<T> {}

impl<T> Block<T> {
    fn new() -> Self {
        Block {
            latest: AtomicU64::new(0),
            table: AtomicPtr::new(Box::into_raw(Box::new(Table { slots: Vec::new() }))),
            writer: Mutex::new(Vec::new()),
        }
    }

    /// Reader-side snapshot of the current table.
    fn snapshot(&self) -> &Table<T> {
        // ord: Acquire pairs with the writer's Release publish so the
        // table's slots (built before the store) are visible.
        let p = self.table.load(Ordering::Acquire);
        // SAFETY: `p` was published from `Box::into_raw` and is freed only
        // in `Drop` (retired tables included), so it outlives this `&self`.
        unsafe { &*p }
    }

    /// Writer-side: replace the table, retiring the old one. Must be
    /// called with the `writer` lock held (the guard proves it).
    fn install(&self, graveyard: &mut Vec<*mut Table<T>>, next: Table<T>) {
        let next = Box::into_raw(Box::new(next));
        // ord: Release publishes the fully built table to readers; the
        // writer lock serializes with other writers, so no CAS is needed.
        let old = self.table.swap(next, Ordering::Release);
        graveyard.push(old);
    }
}

impl<T> Drop for Block<T> {
    fn drop(&mut self) {
        // ord: Relaxed — `&mut self` means no concurrent readers/writers.
        let cur = self.table.load(Ordering::Relaxed);
        // SAFETY: `cur` and every graveyard pointer came from
        // `Box::into_raw`, each is freed exactly once (a pointer is either
        // current or retired, never both), and exclusive access means no
        // reader still holds a reference.
        unsafe {
            drop(Box::from_raw(cur));
            for p in self.writer.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

/// A store of versioned data blocks shared by an application's tasks.
pub struct BlockStore<T> {
    blocks: Vec<Block<T>>,
    retention: Retention,
    evictions: AtomicU64,
    republishes: AtomicU64,
}

impl<T: Send> BlockStore<T> {
    /// Create a store of `nblocks` blocks under the given retention policy.
    pub fn new(nblocks: usize, retention: Retention) -> Self {
        if let Retention::KeepLast(k) = retention {
            assert!(k >= 1, "KeepLast requires k >= 1");
        }
        BlockStore {
            blocks: (0..nblocks).map(|_| Block::new()).collect(),
            retention,
            evictions: AtomicU64::new(0),
            republishes: AtomicU64::new(0),
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The configured retention policy.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// Publish version `version` of `block`, produced by task `producer`.
    ///
    /// Publishing a **new latest** version applies the retention policy
    /// (possibly evicting the version sliding out of the window).
    /// Publishing an **older** version (recovery re-execution) reinstates it
    /// as recovery-resident. Re-publishing an existing version replaces its
    /// data and clears any poison (the recovered producer recreated it).
    pub fn publish(&self, block: BlockId, version: Version, producer: Key, data: Vec<T>) {
        let blk = &self.blocks[block];
        let mut graveyard = blk.writer.lock();
        let cur = blk.snapshot();
        // Pinned versions are resilient inputs: no task legitimately
        // redefines them, and they must stay pinned. Ignore such writes.
        if matches!(cur.find(version), Some(s) if s.producer == RESILIENT_PRODUCER && s.data.is_some())
        {
            return;
        }
        // ord: Relaxed — `latest` is only written under the writer lock we
        // hold, so this read cannot race a store.
        let latest = blk.latest.load(Ordering::Relaxed);
        let is_new_latest = latest == 0 || version + 1 > latest;
        // Recovery-resident iff re-instating a version that is currently
        // *not* resident (evicted tombstone or never seen below latest).
        let recovery_resident =
            !is_new_latest && !matches!(cur.find(version), Some(s) if s.data.is_some());
        if !is_new_latest {
            // ord: Relaxed — statistics counter, read at quiescence.
            self.republishes.fetch_add(1, Ordering::Relaxed);
        }
        let mut slots = cur.slots.clone();
        let slot = Slot {
            version,
            producer,
            poisoned: false,
            recovery_resident,
            data: Some(Arc::new(data)),
        };
        match slots.binary_search_by_key(&version, |s| s.version) {
            Ok(i) => slots[i] = slot,
            Err(i) => slots.insert(i, slot),
        }
        if is_new_latest {
            if let Retention::KeepLast(k) = self.retention {
                // The version sliding out of the window. Pinned (resilient)
                // and recovery-resident versions are exempt.
                if version >= k {
                    let out = version - k;
                    if let Ok(i) = slots.binary_search_by_key(&out, |s| s.version) {
                        let s = &mut slots[i];
                        if s.data.is_some()
                            && !s.recovery_resident
                            && s.producer != RESILIENT_PRODUCER
                        {
                            // Tombstone: drop the payload, keep producer
                            // attribution for Overwritten errors.
                            s.data = None;
                            // ord: Relaxed — statistics counter.
                            self.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        blk.install(&mut graveyard, Table { slots });
        if is_new_latest {
            // ord: Release *after* the table store — a reader that
            // Acquire-loads this counter is guaranteed to find `version`
            // in whatever table it subsequently loads.
            blk.latest.store(version + 1, Ordering::Release);
        }
    }

    /// Publish a pinned version that is never evicted nor poisoned — used
    /// for initial inputs, which the paper assumes are "made resilient
    /// through other means".
    pub fn publish_pinned(&self, block: BlockId, version: Version, data: Vec<T>) {
        let blk = &self.blocks[block];
        let mut graveyard = blk.writer.lock();
        let cur = blk.snapshot();
        let mut slots = cur.slots.clone();
        let slot = Slot {
            version,
            producer: RESILIENT_PRODUCER,
            poisoned: false,
            recovery_resident: false,
            data: Some(Arc::new(data)),
        };
        match slots.binary_search_by_key(&version, |s| s.version) {
            Ok(i) => slots[i] = slot,
            Err(i) => slots.insert(i, slot),
        }
        blk.install(&mut graveyard, Table { slots });
        // ord: Relaxed load is writer-private (see `publish`); Release
        // store pairs with reader Acquire loads.
        if version + 1 > blk.latest.load(Ordering::Relaxed) {
            blk.latest.store(version + 1, Ordering::Release);
        }
    }

    // ft-lint: hot-path begin(block-read)

    /// Read version `version` of `block`. Fails with the producing task if
    /// the version is poisoned or was evicted. **Wait-free**: never blocks
    /// on concurrent publishers.
    pub fn read(&self, block: BlockId, version: Version) -> Result<Arc<Vec<T>>, BlockError> {
        match self.blocks[block].snapshot().find(version) {
            Some(s) if s.poisoned => Err(BlockError::Poisoned {
                producer: s.producer,
            }),
            Some(s) => match &s.data {
                Some(d) => Ok(Arc::clone(d)),
                None => Err(BlockError::Overwritten {
                    producer: s.producer,
                }),
            },
            None => Err(BlockError::Missing),
        }
    }

    /// Read the *latest* version of `block` (diagnostics/verification).
    /// **Wait-free**: never blocks on concurrent publishers.
    ///
    /// Version and payload come from one table snapshot — the slots are
    /// version-sorted and the highest version ever published is never
    /// evicted, so the last slot *is* the latest version. (Reading the
    /// `latest` counter and then the table would not be atomic: a
    /// concurrent publish could evict the counter's version from the
    /// newer snapshot.)
    pub fn read_latest(&self, block: BlockId) -> Result<(Version, Arc<Vec<T>>), BlockError> {
        match self.blocks[block].snapshot().slots.last() {
            Some(s) if s.poisoned => Err(BlockError::Poisoned {
                producer: s.producer,
            }),
            Some(s) => match &s.data {
                Some(d) => Ok((s.version, Arc::clone(d))),
                None => Err(BlockError::Missing),
            },
            None => Err(BlockError::Missing),
        }
    }

    /// Latest published version of `block`, if any. Wait-free.
    pub fn latest_version(&self, block: BlockId) -> Option<Version> {
        // ord: Acquire pairs with the publisher's Release store.
        match self.blocks[block].latest.load(Ordering::Acquire) {
            0 => None,
            l => Some(l - 1),
        }
    }

    // ft-lint: hot-path end(block-read)

    /// Poison version `version` of `block` (fault injection). Pinned
    /// versions are resilient and ignore poisoning. Returns true if a
    /// resident version was poisoned.
    pub fn poison(&self, block: BlockId, version: Version) -> bool {
        let blk = &self.blocks[block];
        let mut graveyard = blk.writer.lock();
        let cur = blk.snapshot();
        let resident = matches!(
            cur.find(version),
            Some(s) if s.producer != RESILIENT_PRODUCER && s.data.is_some()
        );
        if !resident {
            return false;
        }
        let mut slots = cur.slots.clone();
        if let Ok(i) = slots.binary_search_by_key(&version, |s| s.version) {
            slots[i].poisoned = true;
        }
        blk.install(&mut graveyard, Table { slots });
        true
    }

    /// True if `block` currently holds `version` un-poisoned. Wait-free.
    pub fn is_live(&self, block: BlockId, version: Version) -> bool {
        matches!(
            self.blocks[block].snapshot().find(version),
            Some(s) if !s.poisoned && s.data.is_some()
        )
    }

    /// Total evictions performed (memory-reuse overwrites).
    pub fn evictions(&self) -> u64 {
        // ord: Relaxed — statistics read at quiescence.
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total recovery republishes of old versions.
    pub fn republishes(&self) -> u64 {
        // ord: Relaxed — statistics read at quiescence.
        self.republishes.load(Ordering::Relaxed)
    }

    /// Number of resident versions of `block` (diagnostics). Wait-free.
    pub fn resident_versions(&self, block: BlockId) -> usize {
        self.blocks[block]
            .snapshot()
            .slots
            .iter()
            .filter(|s| s.data.is_some())
            .count()
    }
}

impl<T: Send + Clone> BlockStore<T> {
    /// Export the latest un-poisoned version of every block — the generic
    /// checkpoint primitive behind application-level snapshot/resume
    /// (see `Fw::snapshot_tiles`). Blocks whose latest version is poisoned
    /// or missing are skipped (their producers would be re-executed on
    /// restore anyway).
    pub fn export_latest(&self) -> Vec<(BlockId, Version, Vec<T>)> {
        let mut out = Vec::new();
        for bid in 0..self.blocks.len() {
            if let Ok((latest, data)) = self.read_latest(bid) {
                out.push((bid, latest, data.as_ref().clone()));
            }
        }
        out
    }

    /// Import a checkpoint produced by [`BlockStore::export_latest`] into a
    /// fresh store: every entry becomes a pinned (resilient) version.
    pub fn import_pinned(&self, snapshot: Vec<(BlockId, Version, Vec<T>)>) {
        for (bid, version, data) in snapshot {
            self.publish_pinned(bid, version, data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_read_roundtrip() {
        let s: BlockStore<f64> = BlockStore::new(2, Retention::KeepAll);
        s.publish(0, 0, 100, vec![1.0, 2.0]);
        let d = s.read(0, 0).unwrap();
        assert_eq!(&*d, &vec![1.0, 2.0]);
        assert_eq!(s.latest_version(0), Some(0));
        assert_eq!(s.latest_version(1), None);
    }

    #[test]
    fn keep_all_retains_everything() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        for v in 0..10 {
            s.publish(0, v, v as Key, vec![v as u32]);
        }
        for v in 0..10 {
            assert_eq!(&*s.read(0, v).unwrap(), &vec![v as u32]);
        }
        assert_eq!(s.evictions(), 0);
        assert_eq!(s.resident_versions(0), 10);
    }

    #[test]
    fn keep_last_one_evicts_previous() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish(0, 0, 100, vec![0]);
        s.publish(0, 1, 101, vec![1]);
        assert_eq!(s.read(0, 0), Err(BlockError::Overwritten { producer: 100 }));
        assert!(s.read(0, 1).is_ok());
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn keep_last_two_window() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(2));
        for v in 0..5 {
            s.publish(0, v, 100 + v as Key, vec![v as u32]);
        }
        // Versions 3 and 4 resident; 0..2 evicted.
        assert!(matches!(
            s.read(0, 2),
            Err(BlockError::Overwritten { producer: 102 })
        ));
        assert!(s.read(0, 3).is_ok());
        assert!(s.read(0, 4).is_ok());
        assert_eq!(s.evictions(), 3);
    }

    #[test]
    fn recovery_republish_is_never_evicted() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish(0, 0, 100, vec![0]);
        s.publish(0, 1, 101, vec![1]); // evicts v0
        s.publish(0, 0, 100, vec![0]); // recovery republish
        assert_eq!(s.republishes(), 1);
        assert!(s.read(0, 0).is_ok());
        s.publish(0, 2, 102, vec![2]); // evicts v1, NOT the resident v0
        assert!(s.read(0, 0).is_ok(), "recovery-resident version survives");
        assert!(matches!(s.read(0, 1), Err(BlockError::Overwritten { .. })));
    }

    #[test]
    fn republish_existing_version_clears_poison() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        s.publish(0, 0, 100, vec![1]);
        assert!(s.poison(0, 0));
        assert_eq!(s.read(0, 0), Err(BlockError::Poisoned { producer: 100 }));
        s.publish(0, 0, 100, vec![2]);
        assert_eq!(&*s.read(0, 0).unwrap(), &vec![2]);
    }

    #[test]
    fn pinned_versions_resist_poison_and_eviction() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepLast(1));
        s.publish_pinned(0, 0, vec![7]);
        assert!(!s.poison(0, 0), "pinned versions cannot be poisoned");
        s.publish(0, 1, 101, vec![8]);
        s.publish(0, 2, 102, vec![9]);
        assert!(s.read(0, 0).is_ok(), "pinned version survives eviction");
        assert!(matches!(s.read(0, 1), Err(BlockError::Overwritten { .. })));
    }

    #[test]
    fn missing_version_reports_missing() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert_eq!(s.read(0, 5), Err(BlockError::Missing));
        assert!(s.read_latest(0).is_err());
    }

    #[test]
    fn poison_missing_version_returns_false() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert!(!s.poison(0, 3));
    }

    #[test]
    fn into_fault_attribution() {
        let e = BlockError::Poisoned { producer: 42 };
        let f = e.into_fault();
        assert_eq!(f.source, 42);
        assert_eq!(f.kind, crate::fault::FaultKind::Data);
        let e = BlockError::Overwritten { producer: 9 };
        assert_eq!(e.into_fault().kind, crate::fault::FaultKind::Overwritten);
    }

    #[test]
    #[should_panic(expected = "dependence bug")]
    fn missing_into_fault_panics() {
        BlockError::Missing.into_fault();
    }

    #[test]
    fn is_live_reflects_state() {
        let s: BlockStore<u32> = BlockStore::new(1, Retention::KeepAll);
        assert!(!s.is_live(0, 0));
        s.publish(0, 0, 1, vec![1]);
        assert!(s.is_live(0, 0));
        s.poison(0, 0);
        assert!(!s.is_live(0, 0));
    }

    #[test]
    fn export_import_roundtrip() {
        let a: BlockStore<u32> = BlockStore::new(3, Retention::KeepLast(2));
        a.publish(0, 0, 10, vec![1]);
        a.publish(0, 1, 11, vec![2]);
        a.publish(1, 5, 15, vec![3]);
        // Block 2 never published; block 0 latest poisoned.
        a.publish(2, 0, 20, vec![9]);
        a.poison(2, 0);
        let snap = a.export_latest();
        assert_eq!(snap.len(), 2, "poisoned/missing latests skipped");

        let b: BlockStore<u32> = BlockStore::new(3, Retention::KeepLast(2));
        b.import_pinned(snap);
        assert_eq!(&*b.read(0, 1).unwrap(), &vec![2]);
        assert_eq!(&*b.read(1, 5).unwrap(), &vec![3]);
        assert!(b.read(2, 0).is_err());
        // Imported versions are pinned: survive later eviction pressure.
        b.publish(0, 2, 30, vec![4]);
        b.publish(0, 3, 31, vec![5]);
        b.publish(0, 4, 32, vec![6]);
        assert!(b.read(0, 1).is_ok(), "pinned checkpoint survives");
    }

    #[test]
    fn concurrent_publish_read() {
        let s = std::sync::Arc::new(BlockStore::<u64>::new(4, Retention::KeepLast(2)));
        std::thread::scope(|scope| {
            for b in 0..4usize {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for v in 0..100u64 {
                        s.publish(b, v, (b * 1000 + v as usize) as Key, vec![v; 8]);
                        // Latest must always be readable.
                        let (lv, data) = s.read_latest(b).unwrap();
                        assert_eq!(data[0], lv);
                    }
                });
            }
        });
        for b in 0..4 {
            assert_eq!(s.latest_version(b), Some(99));
        }
    }
}
