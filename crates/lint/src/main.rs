//! `ft-lint` CLI.
//!
//! ```text
//! cargo run -p ft-lint --              # report findings (exit 0)
//! cargo run -p ft-lint -- --deny       # exit 1 on any violation (CI gate)
//! cargo run -p ft-lint -- --json      # machine-readable report on stdout
//! cargo run -p ft-lint -- --root X    # lint workspace rooted at X
//! cargo run -p ft-lint -- --restamp   # refresh LOOM_COVERAGE fingerprints
//! ```

use ft_lint::{manifest, run, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut restamp = false;
    // Default root: the workspace this binary was built from, so
    // `cargo run -p ft-lint` works from any directory.
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--restamp" => restamp = true,
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("ft-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ft-lint [--deny] [--json] [--restamp] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ft-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.canonicalize().unwrap_or(root);
    let config = Config::workspace(root);
    if restamp {
        // Refresh fingerprints first so a combined `--restamp --deny` run
        // lints the freshly stamped manifest.
        match manifest::restamp(&config.root, &config.manifest) {
            Ok(n) => eprintln!("ft-lint: restamped {n} loom-coverage entr(y/ies)"),
            Err(e) => {
                eprintln!("ft-lint: --restamp failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ft-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
