//! Source file referenced by the L8 freshness tests: the manifest
//! fingerprint is computed over the atomic code lines below.

use ft_sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}
