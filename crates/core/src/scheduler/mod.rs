//! The Figure-2 task-graph traversal and its two instantiations.
//!
//! * [`engine`] — the single, policy-generic copy of the Figure-2
//!   traversal ([`Engine`]) and the [`FtPolicy`]/[`Descriptor`] traits
//!   that supply the paper's shaded behavior.
//! * [`baseline`] — plain NABBIT: `Engine<NoFt>`, the paper's `baseline`
//!   configuration with "no additional data structures or statements
//!   introduced for fault tolerance" (the policy erases them at compile
//!   time).
//! * [`ft`] — the fault-tolerant scheduler: `Engine<FtRecovery>`, the
//!   shaded additions of Figure 2; its recovery routines (Figure 3) live
//!   in [`recovery`].
//! * [`service`] — the resident [`GraphService`]: a stream of engines
//!   submitted as concurrent instances (epochs) over one long-lived
//!   executor, with admission control and per-instance reports.
//!
//! Both instantiations drive the same [`ft_steal::Pool`] and accept the
//! same [`crate::graph::TaskGraph`], so the Figure 4 overhead comparison
//! is apples-to-apples.

pub mod baseline;
pub mod engine;
pub mod ft;
pub mod recovery;
pub mod service;

pub use baseline::{BaselineScheduler, NoFt};
pub use engine::{Descriptor, Engine, FtPolicy, PriorityFn, SchedOpts};
pub use ft::{FtRecovery, FtScheduler};
pub use service::{
    Backpressure, BackpressureReason, GraphService, InstanceReport, InstanceTicket, ServiceConfig,
    ServiceStats,
};
