//! Good fixture for L2: tags cover clusters, chains, and SeqCst is free.

use ft_sync::atomic::{AtomicUsize, Ordering};

pub fn publish(flag: &AtomicUsize, data: &AtomicUsize) {
    // ord: Relaxed — data is owned by this thread until published below.
    data.store(42, Ordering::Relaxed);
    // ord: Release — publishes the data store to the reader's Acquire.
    flag.store(1, Ordering::Release);
}

pub fn contended_claim(state: &AtomicUsize) -> bool {
    // ord: AcqRel success / Relaxed failure — a won CAS acquires the prior
    // owner's release; a lost one retries without reading guarded state.
    state
        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}

pub fn totally_ordered(state: &AtomicUsize) -> usize {
    state.load(Ordering::SeqCst)
}
