//! Property-based tests: random layered DAGs × random fault plans,
//! generated *jointly* so every sampled fault site names a task that
//! actually exists in the sampled DAG (key × phase × fires).
//!
//! The DAGs come from the seeded generator in `ft_bench::dag_gen`
//! ([`RandDag`]): the proptest strategy draws the generator's *config*
//! (layer count, max width, edge probability, critical ratio, structure
//! seed) rather than an ad-hoc shape, so every sampled case is a member of
//! the same workload family the benchmarks and campaigns use, and a
//! failing case shrinks toward a small config instead of a raw adjacency
//! list.
//!
//! For arbitrary DAG shapes and arbitrary fault injections, the
//! fault-tolerant scheduler must (P1/Theorem 1) produce exactly the values
//! a sequential execution produces, (P2/Guarantee 1) recover each failure
//! at most once, and (P4/Lemma 3) always complete — under **both** pop
//! orders: plain FIFO and the PR-6 priority mode (critical tasks in the
//! hot lane). Since PR 8 the engine executes single-ready-successor
//! chains inline (continuation passing instead of a spawn), so every
//! sampled case also exercises the inline-chain delivery path — narrow
//! configs (`max_width = 1`) are pure chains that run entirely inline in
//! FIFO mode and re-enter the queue at priority boundaries in priority
//! mode. Every run is recorded and replayed through the guarantee
//! oracle; *any* failed property — an oracle violation, a wrong value, a
//! missing completion — dumps the trace and fault plan as JSON under
//! `target/oracle-failures/` (completion and coverage checks are routed
//! through the same dump as the G1–G6 checks, not bare asserts).

use ft_bench::dag_gen::{DagGenConfig, RandDag};
use ft_integration::{assert_oracle_clean, traced_run_on_opts};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::graph::{Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::SchedOpts;
use nabbit_ft::seq;
use nabbit_ft::trace::oracle::{check_result_equivalence, OracleMode, Violation};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn shared_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(PoolConfig::with_threads(4)))
}

/// Oracle: values from a sequential fault-free execution.
fn sequential_values(cfg: &DagGenConfig) -> HashMap<Key, u64> {
    let dag = RandDag::generate(cfg.clone());
    seq::run(&dag).unwrap();
    dag.all_keys()
        .into_iter()
        .map(|k| (k, dag.value_of(k).unwrap()))
        .collect()
}

/// A generator config together with a fault plan drawn over the keys of
/// the DAG that config generates.
#[derive(Debug, Clone)]
struct DagCase {
    cfg: DagGenConfig,
    sites: Vec<FaultSite>,
}

fn any_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::BeforeCompute),
        Just(Phase::AfterCompute),
        Just(Phase::AfterNotify),
    ]
}

/// Strategy over generator configs: layer count, width, edge probability,
/// critical ratio, and structure seed are all drawn independently. WCETs
/// stay small and `work_unit` is 0 — these tests exercise correctness,
/// not timing.
fn dag_config() -> impl Strategy<Value = DagGenConfig> {
    (
        2usize..7,
        1usize..6,
        0.05f64..0.9,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(layers, max_width, edge_prob, critical_ratio, seed)| {
            let mut cfg = DagGenConfig::new(layers, max_width, edge_prob, seed);
            cfg.critical_ratio = critical_ratio;
            cfg.wcet_max = 8;
            cfg
        })
}

/// Joint strategy: sample a generator config, then sample fault sites
/// *over the keys of the DAG it generates* — each site an independently
/// drawn (key, phase, fires ∈ 1..=max_fires) triple. Duplicate keys are
/// fine: `FaultPlan::new` keeps the last site per key (the paper injects
/// at most one fault per task).
fn dag_with_faults(max_fires: u64) -> impl Strategy<Value = DagCase> {
    dag_config().prop_flat_map(move |cfg| {
        let keys = RandDag::generate(cfg.clone()).all_keys();
        let n = keys.len();
        let site =
            (0..n, any_phase(), 1u64..max_fires + 1).prop_map(move |(i, phase, fires)| FaultSite {
                key: keys[i],
                phase,
                fires,
            });
        prop::collection::vec(site, 0..n + 1).prop_map(move |sites| DagCase {
            cfg: cfg.clone(),
            sites,
        })
    })
}

/// Run one sampled (config, fault plan) instance on the shared pool under
/// the given pop order, check the trace with the oracle, and return the
/// DAG for extra per-test assertions. Completion and execution-coverage
/// failures are reported as extra `Violation`s so they reach the same
/// `target/oracle-failures/` dump as G1–G6.
fn run_and_check(case: &DagCase, label: &str, priority: bool) -> Arc<RandDag> {
    let reference = sequential_values(&case.cfg);
    let dag = Arc::new(RandDag::generate(case.cfg.clone()));
    let keys = dag.all_keys();
    let plan = Arc::new(FaultPlan::new(case.sites.iter().copied()));
    let opts = SchedOpts {
        priority: priority.then(|| dag.priority_fn()),
        deadline: None,
    };
    let (_, trace, report) = traced_run_on_opts(
        Arc::clone(&dag) as Arc<dyn TaskGraph>,
        Arc::clone(&plan),
        shared_pool(),
        opts,
    );
    let dag2 = Arc::clone(&dag);
    let mut extra =
        check_result_equivalence(&keys, |k| dag2.value_of(k), |k| reference.get(&k).copied());
    if !report.sink_completed {
        extra.push(Violation {
            guarantee: "completion",
            message: format!("{label}: sink did not complete (P4)"),
        });
    }
    if report.distinct_tasks_executed as usize != dag.task_count() {
        extra.push(Violation {
            guarantee: "coverage",
            message: format!(
                "{label}: {} of {} tasks executed",
                report.distinct_tasks_executed,
                dag.task_count()
            ),
        });
    }
    assert_oracle_clean(
        label,
        0, // pool schedules are not seeded; the fault plan is in the dump
        &plan,
        dag.as_ref(),
        &trace,
        &report,
        OracleMode::Concurrent,
        extra,
    );
    dag
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_dag_random_faults_same_result(case in dag_with_faults(1)) {
        run_and_check(&case, "random-dag-single-fire-fifo", false);
        run_and_check(&case, "random-dag-single-fire-prio", true);
    }

    #[test]
    fn random_dag_multi_fire_faults_same_result(case in dag_with_faults(3)) {
        // fires ∈ 1..=3 exercises Guarantee 6's recursive recovery: a
        // recovered incarnation can itself fail and must be recovered at a
        // strictly larger life. Both pop orders must uphold it — the
        // recovered incarnation respawns at its key's priority.
        run_and_check(&case, "random-dag-multi-fire-fifo", false);
        run_and_check(&case, "random-dag-multi-fire-prio", true);
    }

    #[test]
    fn random_dag_fault_free_executes_each_task_once(cfg in dag_config()) {
        let case = DagCase { cfg, sites: vec![] };
        for (label, priority) in [
            ("random-dag-fault-free-fifo", false),
            ("random-dag-fault-free-prio", true),
        ] {
            let dag = run_and_check(&case, label, priority);
            let plan = Arc::new(FaultPlan::none());
            let opts = SchedOpts {
                priority: priority.then(|| dag.priority_fn()),
                deadline: None,
            };
            let (_, _, report) = traced_run_on_opts(
                Arc::clone(&dag) as Arc<dyn TaskGraph>,
                plan,
                shared_pool(),
                opts,
            );
            // Second, fault-free pass over an already-complete graph
            // object: fresh scheduler, so every task recomputes exactly
            // once (P6).
            prop_assert!(report.sink_completed, "{}", label);
            prop_assert_eq!(report.computes as usize, dag.task_count(), "P6 {}", label);
            prop_assert_eq!(report.re_executions, 0);
            prop_assert_eq!(report.recoveries, 0);
        }
    }
}
