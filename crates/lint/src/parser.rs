//! A lightweight item/region parser over the line lexer.
//!
//! PR 10 grew `ft-lint` from per-line rules into protocol-aware auditing,
//! which needs three kinds of *structure* the lexer alone cannot see:
//!
//! * **struct fields** — which atomic fields each runtime struct declares
//!   (rule L7 checks them against `docs/PROTOCOLS.toml`);
//! * **fence sites** — every `fence(...)` call plus its `// sc:
//!   <protocol>/<side>` pairing tag (rule L6);
//! * **hot-path regions** — spans bracketed by `ft-lint: hot-path
//!   begin(<name>)` / `end(<name>)` markers (rule L9).
//!
//! Like the lexer, this is deliberately not a full Rust parser: brace
//! depth over comment/string-masked code is enough to attribute fields to
//! structs, and everything else is comment-side convention. The trade-off
//! is the same as PR 5's: a dependency-free auditor the workspace can run
//! offline, precise enough that every diagnostic points at a real line.

use crate::lexer::{has_word, Line};

/// Atomic type names recognized by the field scan (the `ft-sync` facade
/// re-exports exactly these). Matched at identifier boundaries anywhere in
/// a field's type, so `Box<[AtomicU64]>`, `CachePadded<AtomicU64>` and
/// `[AtomicI64; N]` all count.
pub const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// An atomic field declared by a runtime struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicField {
    /// Struct that declares the field.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// 1-based declaration line.
    pub line: usize,
    /// The atomic type name that matched (diagnostics).
    pub atomic_type: &'static str,
}

impl AtomicField {
    /// Manifest key for this field within file `rel`:
    /// `<rel>::<Struct>::<field>`.
    pub fn key(&self, rel: &str) -> String {
        format!("{rel}::{}::{}", self.strukt, self.field)
    }
}

/// A memory-fence call site and its (optional) `sc:` pairing tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenceSite {
    /// 1-based line of the `fence(...)` call.
    pub line: usize,
    /// Parsed `// sc: <protocol>/<side>` tag covering the site, if any.
    pub tag: Option<ScTag>,
}

/// A parsed `sc:` fence-pairing tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScTag {
    /// Protocol name — must be declared in `docs/PROTOCOLS.toml`.
    pub protocol: String,
    /// Side of the protocol this site implements (e.g. `registrant`).
    pub side: String,
}

/// A hot-path region bracketed by marker comments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRegion {
    /// Region name from `begin(<name>)`.
    pub name: String,
    /// 1-based line of the `begin` marker.
    pub begin: usize,
    /// 1-based line of the `end` marker; `None` if unterminated at EOF
    /// (or at the start of the file's test region).
    pub end: Option<usize>,
}

/// Parse `sc: <protocol>/<side>` out of comment text.
pub fn parse_sc_tag(comment: &str) -> Option<ScTag> {
    let at = comment.find("sc: ")?;
    // Only accept the tag at a token boundary so prose like "misc: x"
    // cannot introduce one.
    if comment[..at]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
    {
        // Retry past the false hit.
        return parse_sc_tag(&comment[at + 4..]);
    }
    let token: String = comment[at + 4..]
        .chars()
        .take_while(|c| !c.is_whitespace())
        .collect();
    let (protocol, side) = token.split_once('/')?;
    let ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
    };
    (ok(protocol) && ok(side)).then(|| ScTag {
        protocol: protocol.to_string(),
        side: side.to_string(),
    })
}

/// Parse a hot-path marker out of comment text:
/// `ft-lint: hot-path begin(<name>)` or `ft-lint: hot-path end(<name>)`.
/// Returns `(is_begin, name)`.
fn parse_hot_marker(comment: &str) -> Option<(bool, String)> {
    let rest = comment.split("ft-lint: hot-path ").nth(1)?;
    let (is_begin, rest) = if let Some(r) = rest.strip_prefix("begin(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("end(") {
        (false, r)
    } else {
        return None;
    };
    let name: String = rest.chars().take_while(|&c| c != ')').collect();
    (!name.is_empty() && rest.len() > name.len()).then_some((is_begin, name))
}

/// Everything the item/region pass extracts from one file. Field, fence
/// and region scans all stop at the file's test region (mirroring the
/// per-line rules).
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Atomic struct fields, in declaration order.
    pub fields: Vec<AtomicField>,
    /// `fence(...)` call sites, in line order.
    pub fences: Vec<FenceSite>,
    /// Hot-path regions, in `begin` order.
    pub regions: Vec<HotRegion>,
    /// Marker problems: `(line, message)` for unmatched/nested markers.
    pub marker_errors: Vec<(usize, String)>,
}

impl FileItems {
    /// Is 0-based line index `idx` inside any well-formed hot region?
    /// The marker lines themselves are excluded.
    pub fn in_hot_region(&self, idx: usize) -> Option<&HotRegion> {
        let line = idx + 1;
        self.regions.iter().find(|r| {
            let end = r.end.unwrap_or(usize::MAX);
            line > r.begin && line < end
        })
    }
}

/// One struct whose body is currently open.
struct OpenStruct {
    name: String,
    /// Brace depth of the struct *body* (fields live exactly here).
    body_depth: u32,
}

/// Run the item/region pass over the lexed `code` lines (the caller slices
/// off the test region first). `sc_tag_for` resolution uses the same
/// same-line-or-block-above convention as waivers.
pub fn parse_items(code: &[Line]) -> FileItems {
    let mut items = FileItems::default();
    let mut depth: u32 = 0;
    // `struct Name` seen, body brace not yet reached.
    let mut pending_struct: Option<String> = None;
    let mut open_structs: Vec<OpenStruct> = Vec::new();
    let mut open_regions: Vec<(String, usize)> = Vec::new();

    for (idx, line) in code.iter().enumerate() {
        // --- comment-side markers -------------------------------------
        if let Some((is_begin, name)) = parse_hot_marker(&line.comment) {
            if is_begin {
                if let Some((open, at)) = open_regions.last() {
                    items.marker_errors.push((
                        idx + 1,
                        format!(
                            "hot-path begin({name}) nested inside begin({open}) \
                             from line {at}; close it first"
                        ),
                    ));
                } else {
                    open_regions.push((name, idx + 1));
                }
            } else {
                match open_regions.pop() {
                    Some((open, at)) if open == name => {
                        items.regions.push(HotRegion {
                            name: open,
                            begin: at,
                            end: Some(idx + 1),
                        });
                    }
                    Some((open, at)) => {
                        items.marker_errors.push((
                            idx + 1,
                            format!(
                                "hot-path end({name}) does not match open \
                                 begin({open}) from line {at}"
                            ),
                        ));
                        // Close the mismatched region anyway so one typo
                        // yields one diagnostic, not a cascade.
                        items.regions.push(HotRegion {
                            name: open,
                            begin: at,
                            end: Some(idx + 1),
                        });
                    }
                    None => {
                        items.marker_errors.push((
                            idx + 1,
                            format!("hot-path end({name}) without a matching begin"),
                        ));
                    }
                }
            }
        }

        // --- fence sites ----------------------------------------------
        if has_word(&line.code, "fence") && line.code.contains("fence(") {
            let tag = sc_tag_for(code, idx);
            items.fences.push(FenceSite { line: idx + 1, tag });
        }

        // --- struct fields ---------------------------------------------
        // A field line is checked against the depth *before* this line's
        // braces are processed (fields never open/close the body brace on
        // their own line in rustfmt'd code; a brace on the line simply
        // means it is not a field).
        if let Some(open) = open_structs.last() {
            if depth == open.body_depth {
                if let Some((field, ty)) = split_field(&line.code) {
                    if let Some(at) = ATOMIC_TYPES.iter().find(|t| has_word(ty, t)) {
                        items.fields.push(AtomicField {
                            strukt: open.name.clone(),
                            field: field.to_string(),
                            line: idx + 1,
                            atomic_type: at,
                        });
                    }
                }
            }
        }

        // Detect a struct declaration before brace-processing the line so
        // `struct X {` pushes with the correct body depth.
        if pending_struct.is_none() && has_word(&line.code, "struct") {
            if let Some(name) = struct_name(&line.code) {
                pending_struct = Some(name);
            }
        }

        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending_struct.take() {
                        open_structs.push(OpenStruct {
                            name,
                            body_depth: depth,
                        });
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if open_structs.last().is_some_and(|s| depth < s.body_depth) {
                        open_structs.pop();
                    }
                }
                // Unit (`struct X;`) and tuple (`struct X(..);`) structs
                // never open a field body.
                ';' => {
                    pending_struct = None;
                }
                _ => {}
            }
        }
    }

    for (name, at) in open_regions {
        items.regions.push(HotRegion {
            name: name.clone(),
            begin: at,
            end: None,
        });
        items.marker_errors.push((
            at,
            format!("hot-path begin({name}) is never closed with end({name})"),
        ));
    }
    items
}

/// The `sc:` tag covering line `idx`: on the line's own comment or in the
/// contiguous comment/attribute block immediately above.
fn sc_tag_for(lines: &[Line], idx: usize) -> Option<ScTag> {
    if let Some(tag) = parse_sc_tag(&lines[idx].comment) {
        return Some(tag);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.is_comment_only() || l.is_attr_only() {
            if let Some(tag) = parse_sc_tag(&l.comment) {
                return Some(tag);
            }
        } else {
            break;
        }
    }
    None
}

/// Split a struct-body line into `(field_name, type_text)` if it is a
/// named-field declaration.
fn split_field(code: &str) -> Option<(&str, &str)> {
    let mut t = code.trim_start();
    for prefix in ["pub(crate)", "pub(super)", "pub(in"] {
        if let Some(rest) = t.strip_prefix(prefix) {
            // `pub(in path)` — skip to the closing paren.
            t = match prefix {
                "pub(in" => rest.split_once(')').map(|(_, r)| r)?,
                _ => rest,
            };
            t = t.trim_start();
        }
    }
    if let Some(rest) = t.strip_prefix("pub ") {
        t = rest.trim_start();
    }
    let colon = t.find(':')?;
    let (name, ty) = t.split_at(colon);
    let name = name.trim();
    // `::` (paths), `let x:` inside bodies (depth check filters those) and
    // non-identifier junk are rejected.
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        || ty.starts_with("::")
    {
        return None;
    }
    // Keywords that precede a `:` in non-field positions.
    if ["if", "else", "match", "return", "let", "const", "static"].contains(&name) {
        return None;
    }
    Some((name, &ty[1..]))
}

/// Extract the struct name from a `struct Name ...` declaration line.
fn struct_name(code: &str) -> Option<String> {
    let at = code.find("struct")?;
    let rest = code[at + "struct".len()..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_atomic_fields_with_struct_attribution() {
        let src = "pub struct A {\n    pub join: AtomicI64,\n    name: String,\n    spill: Box<[AtomicU64]>,\n}\nstruct B {\n    next: ft_sync::atomic::AtomicPtr<Seg>,\n}\n";
        let items = parse_items(&lex(src));
        let keys: Vec<String> = items.fields.iter().map(|f| f.key("f.rs")).collect();
        assert_eq!(
            keys,
            vec![
                "f.rs::A::join".to_string(),
                "f.rs::A::spill".to_string(),
                "f.rs::B::next".to_string()
            ]
        );
        assert_eq!(items.fields[0].line, 2);
    }

    #[test]
    fn nested_braces_do_not_misattribute_fields() {
        // A method body between fields-at-depth never matches; a struct
        // literal inside a fn does not reopen the field scan.
        let src = "struct A {\n    x: AtomicU64,\n}\nimpl A {\n    fn f(&self) {\n        let y: AtomicU64 = AtomicU64::new(0);\n        let a = A { x: AtomicU64::new(1) };\n    }\n}\n";
        let items = parse_items(&lex(src));
        assert_eq!(items.fields.len(), 1);
        assert_eq!(items.fields[0].field, "x");
    }

    #[test]
    fn tuple_and_unit_structs_are_skipped() {
        let src = "struct U;\nstruct T(AtomicU64);\nstruct N {\n    v: AtomicBool,\n}\n";
        let items = parse_items(&lex(src));
        assert_eq!(items.fields.len(), 1);
        assert_eq!(items.fields[0].strukt, "N");
    }

    #[test]
    fn array_and_wrapped_atomics_are_fields() {
        let src = "struct S {\n    slots: [AtomicI64; 8],\n    lanes: Box<[CachePadded<AtomicU64>]>,\n    not_atomic: AtomicBitVec,\n}\n";
        let items = parse_items(&lex(src));
        let names: Vec<&str> = items.fields.iter().map(|f| f.field.as_str()).collect();
        assert_eq!(names, vec!["slots", "lanes"]);
    }

    #[test]
    fn fence_sites_pick_up_sc_tags_from_block_above() {
        let src = "fn f() {\n    // sc: seqlock/writer-begin — pairs with the reader.\n    // ord: Release fence.\n    fence(Ordering::Release);\n    fence(Ordering::SeqCst);\n}\n";
        let items = parse_items(&lex(src));
        assert_eq!(items.fences.len(), 2);
        let tag = items.fences[0].tag.as_ref().expect("tagged");
        assert_eq!(tag.protocol, "seqlock");
        assert_eq!(tag.side, "writer-begin");
        assert!(items.fences[1].tag.is_none(), "second fence is untagged");
        assert_eq!(items.fences[1].line, 5);
    }

    #[test]
    fn sc_tag_requires_token_boundary_and_shape() {
        assert!(parse_sc_tag("sc: proto/side").is_some());
        assert!(parse_sc_tag("see misc: proto/side").is_none());
        assert!(parse_sc_tag("sc: no-slash").is_none());
        assert!(parse_sc_tag("sc: Upper/Case").is_none());
        let t = parse_sc_tag("blah sc: a-b/c_d trailing").unwrap();
        assert_eq!((t.protocol.as_str(), t.side.as_str()), ("a-b", "c_d"));
    }

    #[test]
    fn hot_regions_pair_and_report_errors() {
        let src = "// ft-lint: hot-path begin(read)\nfn f() {}\n// ft-lint: hot-path end(read)\n// ft-lint: hot-path end(phantom)\n// ft-lint: hot-path begin(open)\n";
        let items = parse_items(&lex(src));
        assert_eq!(items.regions.len(), 2);
        assert_eq!(items.regions[0].name, "read");
        assert_eq!(items.regions[0].end, Some(3));
        assert_eq!(items.regions[1].end, None, "unterminated");
        assert_eq!(items.marker_errors.len(), 2, "{:?}", items.marker_errors);
        assert!(items.in_hot_region(1).is_some(), "fn f is inside `read`");
        assert!(items.in_hot_region(0).is_none(), "marker line excluded");
    }

    #[test]
    fn mismatched_end_closes_with_one_diagnostic() {
        let src = "// ft-lint: hot-path begin(a)\nfn f() {}\n// ft-lint: hot-path end(b)\n";
        let items = parse_items(&lex(src));
        assert_eq!(items.marker_errors.len(), 1);
        assert_eq!(items.regions.len(), 1);
    }
}
