//! Criterion version of Figure 5: FT execution time under injected faults
//! (constant counts and work-loss percentages, after-compute, v=rand),
//! relative to the fault-free FT run.
//!
//! The paper's claim: "the amount of re-execution overhead is proportional
//! to the amount of work lost".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_apps::{AppConfig, VersionClass};
use ft_bench::{make_app, run_ft, AppKind};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let pool = Pool::new(PoolConfig::with_threads(4));
    let mut group = c.benchmark_group("fig5_recovery_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    // One representative reuse benchmark (LU) and one single-assignment (LCS).
    for (kind, cfg) in [
        (AppKind::Lu, AppConfig::new(384, 48)),
        (AppKind::Lcs, AppConfig::new(2048, 128)),
    ] {
        let probe = make_app(kind, cfg);
        let candidates = probe.tasks_of_class(VersionClass::Rand);
        let total = probe.all_tasks().len();
        drop(probe);
        for (label, count) in [
            ("0-faults", 0usize),
            ("8-faults", 8),
            ("2pct", total / 50),
            ("5pct", total / 20),
        ] {
            let seed = AtomicU64::new(1);
            group.bench_with_input(BenchmarkId::new(kind.name(), label), &count, |b, &count| {
                b.iter(|| {
                    let app = make_app(kind, cfg);
                    let plan = FaultPlan::sample(
                        &candidates,
                        count,
                        Phase::AfterCompute,
                        seed.fetch_add(1, Ordering::Relaxed),
                    );
                    assert!(run_ft(&pool, app, plan).sink_completed);
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
