//! Smith-Waterman — blocked local sequence alignment with memory reuse.
//!
//! Same wavefront tiling as LCS, but with the paper's **memory reuse**
//! strategy: one data block per tile *column*, one version per tile *row*
//! (a tile row overwrites the row before last). Retention is
//! `KeepLast(2)`, and the task graph carries the anti-dependence edge
//! `(i-2, j+1) → (i, j)` so every reader of version `i−2` of column block
//! `j` finishes before task `(i,j)` overwrites it — the Section II
//! requirement that "all uses of a data block causally precede a subsequent
//! definition".
//!
//! A recovered task `(i,j)` needs version `i−1` of its column block; if
//! that has been overwritten, the producer chain `(i−1,j), (i−2,j), …` is
//! re-executed — the paper's sequential recovery chains (Section VI-C).
//!
//! Published block layout: `[right_col(B) | bottom_row(B) | corner | max]`
//! where `corner` is the bottom-right of the tile *above* (passed through
//! for the right-neighbour's diagonal read) and `max` is the running
//! local-alignment maximum over all tiles that causally precede this one.

use crate::common::{keys, AppConfig, BenchApp, VerifyOutcome, VersionClass};
use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};

const MATCH: i32 = 2;
const MISMATCH: i32 = -1;
const GAP: i32 = -1;

/// Blocked Smith-Waterman benchmark instance.
pub struct Sw {
    cfg: AppConfig,
    x: Vec<u8>,
    y: Vec<u8>,
    /// True for the memory-reuse strategy (the paper's choice for SW);
    /// false for single-assignment (every version retained, no anti edges).
    reuse: bool,
    /// One block per tile column; version = tile row.
    store: BlockStore<i32>,
}

impl Sw {
    /// Create an instance with random 4-letter sequences (memory reuse, as
    /// the paper selected for SW).
    pub fn new(cfg: AppConfig) -> Self {
        Self::with_reuse(cfg, true)
    }

    /// Single-assignment variant: every tile-row version stays resident.
    pub fn single_assignment(cfg: AppConfig) -> Self {
        Self::with_reuse(cfg, false)
    }

    fn with_reuse(cfg: AppConfig, reuse: bool) -> Self {
        let x = crate::common::random_sequence(cfg.n, 4, cfg.seed);
        let y = crate::common::random_sequence(cfg.n, 4, cfg.seed.wrapping_add(1));
        let nb = cfg.nb();
        let retention = if reuse {
            Retention::KeepLast(2)
        } else {
            Retention::KeepAll
        };
        Sw {
            cfg,
            x,
            y,
            reuse,
            store: BlockStore::new(nb, retention),
        }
    }

    fn nb(&self) -> usize {
        self.cfg.nb()
    }

    fn task_key(i: usize, j: usize) -> Key {
        keys::encode(0, 0, i, j)
    }

    /// Best local alignment score found by the task-graph run.
    pub fn result(&self) -> Option<i32> {
        let nb = self.nb();
        let b = self.cfg.b;
        self.store
            .read(nb - 1, (nb - 1) as u64)
            .ok()
            .map(|blk| blk[2 * b + 1])
    }

    /// Independent reference: rolling-row Smith-Waterman.
    pub fn reference(&self) -> i32 {
        let n = self.cfg.n;
        let mut prev = vec![0i32; n + 1];
        let mut cur = vec![0i32; n + 1];
        let mut best = 0;
        for u in 1..=n {
            for v in 1..=n {
                let s = if self.x[u - 1] == self.y[v - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
                cur[v] = 0
                    .max(prev[v - 1] + s)
                    .max(prev[v] + GAP)
                    .max(cur[v - 1] + GAP);
                best = best.max(cur[v]);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        best
    }
}

impl TaskGraph for Sw {
    fn sink(&self) -> Key {
        let nb = self.nb();
        Self::task_key(nb - 1, nb - 1)
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        let (_, _, i, j) = keys::decode(key);
        let nb = self.nb();
        let mut p = Vec::with_capacity(3);
        if i > 0 {
            p.push(Self::task_key(i - 1, j));
        }
        if j > 0 {
            p.push(Self::task_key(i, j - 1));
        }
        // Anti-dependence: we overwrite version i-2 of column block j,
        // whose other reader is task (i-2, j+1). Single-assignment never
        // overwrites, so the edge is unnecessary there.
        if self.reuse && i >= 2 && j + 1 < nb {
            p.push(Self::task_key(i - 2, j + 1));
        }
        p
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        let (_, _, i, j) = keys::decode(key);
        let nb = self.nb();
        let mut s = Vec::with_capacity(3);
        if i + 1 < nb {
            s.push(Self::task_key(i + 1, j));
        }
        if j + 1 < nb {
            s.push(Self::task_key(i, j + 1));
        }
        if self.reuse && i + 2 < nb && j > 0 {
            s.push(Self::task_key(i + 2, j - 1));
        }
        s
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let (_, _, i, j) = keys::decode(key);
        let b = self.cfg.b;

        let top = if i > 0 {
            Some(
                self.store
                    .read(j, (i - 1) as u64)
                    .map_err(|e| e.into_fault())?,
            )
        } else {
            None
        };
        let left = if j > 0 {
            Some(
                self.store
                    .read(j - 1, i as u64)
                    .map_err(|e| e.into_fault())?,
            )
        } else {
            None
        };

        // Boundary values. The diagonal corner of this tile is carried in
        // the left block (bottom-right of tile (i-1, j-1)).
        let top_row = |v: usize| top.as_ref().map(|t| t[b + v]).unwrap_or(0);
        let left_col = |u: usize| left.as_ref().map(|l| l[u]).unwrap_or(0);
        let corner = left.as_ref().map(|l| l[2 * b]).unwrap_or(0);
        let mut running_max = top
            .as_ref()
            .map(|t| t[2 * b + 1])
            .unwrap_or(0)
            .max(left.as_ref().map(|l| l[2 * b + 1]).unwrap_or(0));
        // Corner we pass through to our right neighbour: bottom-right of
        // the tile above us.
        let corner_out = top.as_ref().map(|t| t[2 * b - 1]).unwrap_or(0);

        let mut prev: Vec<i32> = (0..b).map(top_row).collect();
        let mut cur = vec![0i32; b];
        let mut right_col = Vec::with_capacity(b);
        for u in 0..b {
            let xc = self.x[i * b + u];
            for v in 0..b {
                let s = if xc == self.y[j * b + v] {
                    MATCH
                } else {
                    MISMATCH
                };
                let dg = if v > 0 {
                    prev[v - 1]
                } else if u == 0 {
                    corner
                } else {
                    left_col(u - 1)
                };
                let up = prev[v];
                let lf = if v == 0 { left_col(u) } else { cur[v - 1] };
                let h = 0.max(dg + s).max(up + GAP).max(lf + GAP);
                cur[v] = h;
                running_max = running_max.max(h);
            }
            right_col.push(cur[b - 1]);
            std::mem::swap(&mut prev, &mut cur);
        }

        let mut out = right_col;
        out.extend_from_slice(&prev);
        out.push(corner_out);
        out.push(running_max);
        self.store.publish(j, i as u64, key, out);
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        let (_, _, i, j) = keys::decode(key);
        self.store.poison(j, i as u64);
    }
}

impl BenchApp for Sw {
    fn name(&self) -> &'static str {
        "SW"
    }

    fn config(&self) -> AppConfig {
        self.cfg
    }

    fn all_tasks(&self) -> Vec<Key> {
        let nb = self.nb();
        (0..nb)
            .flat_map(|i| (0..nb).map(move |j| Self::task_key(i, j)))
            .collect()
    }

    fn tasks_of_class(&self, class: VersionClass) -> Vec<Key> {
        let nb = self.nb();
        match class {
            VersionClass::First => (0..nb).map(|j| Self::task_key(0, j)).collect(),
            VersionClass::Last => (0..nb).map(|j| Self::task_key(nb - 1, j)).collect(),
            VersionClass::Rand => self.all_tasks(),
        }
    }

    fn verify_detailed(&self) -> Result<VerifyOutcome, String> {
        let nb = self.nb();
        let b = self.cfg.b;
        match self.store.read(nb - 1, (nb - 1) as u64) {
            Ok(blk) => {
                let got = blk[2 * b + 1];
                let want = self.reference();
                if got == want {
                    Ok(VerifyOutcome {
                        checked: 1,
                        skipped_poisoned: 0,
                    })
                } else {
                    Err(format!("SW best score {got} != reference {want}"))
                }
            }
            Err(BlockError::Poisoned { .. }) => Ok(VerifyOutcome {
                checked: 0,
                skipped_poisoned: 1,
            }),
            Err(e) => Err(format!("sink block unreadable: {e:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
    use nabbit_ft::seq;
    use std::sync::Arc;

    #[test]
    fn sequential_matches_reference() {
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        seq::run(app.as_ref()).unwrap();
        app.verify().unwrap();
    }

    #[test]
    fn graph_shape_includes_anti_deps() {
        let app = Sw::new(AppConfig::new(64, 16)); // 4x4 tiles
        let s = nabbit_ft::analysis::graph_stats(&app);
        assert_eq!(s.tasks, 16);
        // Data edges: 2*nb*(nb-1) = 24; anti edges: (nb-2)*(nb-1) = 6.
        assert_eq!(s.edges, 30);
        assert_eq!(s.max_in_degree, 3);
    }

    #[test]
    fn anti_dep_edges_are_symmetric() {
        let app = Sw::new(AppConfig::new(128, 16));
        for &k in &app.all_tasks() {
            for p in app.predecessors(k) {
                assert!(
                    app.successors(p).contains(&k),
                    "pred/succ mismatch: {p} -> {k}"
                );
            }
            for s in app.successors(k) {
                assert!(
                    app.predecessors(s).contains(&k),
                    "succ/pred mismatch: {k} -> {s}"
                );
            }
        }
    }

    #[test]
    fn parallel_baseline_matches_reference() {
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
        // Memory reuse actually evicted old versions.
        assert!(app.store.evictions() > 0);
    }

    #[test]
    fn ft_without_faults_matches_reference() {
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(
            report.re_executions, 0,
            "fault-free reuse needs no recovery"
        );
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_faults_on_last_version_tasks_chains() {
        // v=last failures force re-execution chains down the column.
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        let last = app.tasks_of_class(VersionClass::Last);
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&last, 2, Phase::AfterCompute, 5));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 2);
        // Each failure re-executes the failed task plus (typically) the
        // producers of the overwritten earlier versions.
        assert!(report.re_executions >= 2);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_random_faults_matches_reference() {
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 12, Phase::AfterCompute, 23));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_after_notify_faults_match_reference() {
        let app = Arc::new(Sw::new(AppConfig::new(128, 16)));
        let sink = app.sink();
        let keys: Vec<_> = app
            .tasks_of_class(VersionClass::Rand)
            .into_iter()
            .filter(|&k| k != sink)
            .collect();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 8, Phase::AfterNotify, 29));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn identical_sequences_score() {
        let mut app = Sw::new(AppConfig::new(64, 8));
        app.y = app.x.clone();
        let app = Arc::new(app);
        seq::run(app.as_ref()).unwrap();
        // Perfect alignment of the whole string: N * MATCH.
        assert_eq!(app.result(), Some(64 * MATCH));
    }

    #[test]
    fn class_lists_are_disjoint_first_last() {
        let app = Sw::new(AppConfig::new(128, 16));
        let first = app.tasks_of_class(VersionClass::First);
        let last = app.tasks_of_class(VersionClass::Last);
        assert_eq!(first.len(), 8);
        assert_eq!(last.len(), 8);
        assert!(first.iter().all(|k| !last.contains(k)));
    }
}
