//! Sleep/wake support for idle workers.
//!
//! A worker that repeatedly fails to find work must eventually block rather
//! than burn a core: the experiments in the paper pin one worker per core,
//! and a spinning sibling distorts measurements. The [`Parker`] here is a
//! classic eventcount-lite: workers announce themselves as sleepy by
//! incrementing an epoch-tagged sleeper count; producers that make new work
//! visible bump the epoch and wake sleepers through a `Condvar`.
//!
//! The protocol avoids lost wakeups: a worker re-checks for work *after*
//! registering as a sleeper and before actually blocking, and `notify`
//! always bumps the epoch so a sleeper that raced with the notification
//! observes a stale epoch and retries instead of sleeping.

use ft_sync::atomic::{AtomicU64, Ordering};
use parking_lot::{Condvar, Mutex};

/// Shared sleep/wake state for a pool of workers.
pub struct Parker {
    /// High 32 bits: epoch; low 32 bits: number of registered sleepers.
    state: AtomicU64,
    lock: Mutex<()>,
    condvar: Condvar,
}

const SLEEPERS_MASK: u64 = 0xFFFF_FFFF;
const EPOCH_UNIT: u64 = 1 << 32;

/// A ticket obtained before blocking; captures the epoch observed when the
/// worker decided it was out of work.
#[derive(Clone, Copy, Debug)]
pub struct SleepToken {
    epoch: u64,
}

impl Default for Parker {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Parker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Parker")
            .field("sleepers", &self.sleepers())
            .finish()
    }
}

impl Parker {
    /// Create a parker with no sleepers.
    pub fn new() -> Self {
        Parker {
            state: AtomicU64::new(0),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Phase 1 of going to sleep: record intent and capture the epoch.
    ///
    /// After calling this, the worker must re-check all work sources. If it
    /// finds work it must call [`Parker::cancel_sleep`]; otherwise it calls
    /// [`Parker::sleep`] with the returned token.
    pub fn prepare_sleep(&self) -> SleepToken {
        let prev = self.state.fetch_add(1, Ordering::SeqCst);
        SleepToken { epoch: prev >> 32 }
    }

    /// Abort a prepared sleep (work was found on the re-check).
    pub fn cancel_sleep(&self) {
        self.state.fetch_sub(1, Ordering::SeqCst);
    }

    /// Phase 2: block until the epoch advances past the token's epoch.
    ///
    /// Returns immediately if a notification already happened.
    pub fn sleep(&self, token: SleepToken) {
        let mut guard = self.lock.lock();
        loop {
            let cur = self.state.load(Ordering::SeqCst) >> 32;
            if cur != token.epoch {
                break;
            }
            self.condvar.wait(&mut guard);
        }
        drop(guard);
        self.state.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake all sleeping workers; called after making new work visible.
    ///
    /// Always bumps the epoch so concurrent `prepare_sleep`/`sleep` pairs
    /// cannot miss the notification.
    pub fn notify(&self) {
        let prev = self.state.fetch_add(EPOCH_UNIT, Ordering::SeqCst);
        if prev & SLEEPERS_MASK != 0 {
            let _guard = self.lock.lock();
            self.condvar.notify_all();
        }
    }

    /// Wake at most one sleeping worker; called after making a single unit
    /// of work visible. The epoch still bumps, so a racing
    /// `prepare_sleep`/`sleep` pair cannot miss the notification — but only
    /// one blocked worker is signalled, avoiding the thundering herd of
    /// [`Parker::notify`] when one job arrives. The woken worker is
    /// responsible for escalating (waking another sleeper) while more work
    /// remains visible.
    pub fn notify_one(&self) {
        let prev = self.state.fetch_add(EPOCH_UNIT, Ordering::SeqCst);
        if prev & SLEEPERS_MASK != 0 {
            let _guard = self.lock.lock();
            self.condvar.notify_one();
        }
    }

    /// Number of workers currently registered as (about to be) sleeping.
    pub fn sleepers(&self) -> usize {
        (self.state.load(Ordering::SeqCst) & SLEEPERS_MASK) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn notify_before_sleep_returns_immediately() {
        let p = Parker::new();
        let token = p.prepare_sleep();
        p.notify();
        // Must not block.
        p.sleep(token);
        assert_eq!(p.sleepers(), 0);
    }

    #[test]
    fn cancel_sleep_decrements() {
        let p = Parker::new();
        let _ = p.prepare_sleep();
        assert_eq!(p.sleepers(), 1);
        p.cancel_sleep();
        assert_eq!(p.sleepers(), 0);
    }

    #[test]
    fn sleeper_wakes_on_notify() {
        let p = Arc::new(Parker::new());
        let woke = Arc::new(AtomicBool::new(false));
        let h = {
            let p = Arc::clone(&p);
            let woke = Arc::clone(&woke);
            thread::spawn(move || {
                let token = p.prepare_sleep();
                p.sleep(token);
                woke.store(true, Ordering::SeqCst);
            })
        };
        // Wait for the sleeper to register.
        while p.sleepers() == 0 {
            thread::yield_now();
        }
        assert!(!woke.load(Ordering::SeqCst));
        p.notify();
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn many_sleepers_all_wake() {
        let p = Arc::new(Parker::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let p = Arc::clone(&p);
            handles.push(thread::spawn(move || {
                let token = p.prepare_sleep();
                p.sleep(token);
            }));
        }
        while p.sleepers() < 8 {
            thread::yield_now();
        }
        // Give them a moment to actually block on the condvar.
        thread::sleep(Duration::from_millis(10));
        p.notify();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.sleepers(), 0);
    }
}
