//! Dual-lane (priority-aware) job submission.
//!
//! PR 6 adds an opt-in **priority pop order** to the scheduler: traversal
//! jobs targeting hard/critical tasks of a deadline-carrying DAG are
//! spawned [`Priority::High`] and must be acquired before normal jobs
//! wherever both are visible. The pool realizes this with *two lanes*
//! everywhere a queue exists — a hot and a normal Chase–Lev deque per
//! worker, and the [`PrioInjector`] here: a pair of segmented lock-free
//! [`Injector`]s plus a conservative occupancy hint for the hot lane.
//!
//! The hint exists so that FIFO-mode workloads (which never push a hot
//! job) pay a single atomic load per acquisition attempt instead of
//! probing the hot lane's head/tail indices. Its protocol:
//!
//! * `push(_, High)` increments the hint **before** publishing the
//!   element. Both the increment and the thief's load are `SeqCst`, so in
//!   the SC total order any thief that starts after a completed hot push
//!   observes a non-zero hint — a zero hint can only miss pushes that are
//!   still in flight, and those wake a worker via the pool's parker
//!   anyway.
//! * a successful `steal_hot` decrements the hint afterwards. Every
//!   successful steal is preceded by its element's push, which is preceded
//!   by the matching increment, so decrements never outnumber increments
//!   and the counter cannot wrap.
//!
//! The hint may therefore transiently *over*-count (probe finds the lane
//! empty — wasted loads, not lost work); it never under-counts a published
//! element. The loom models in `crates/steal/tests/loom_priority.rs`
//! check exactly this: no loss, no duplication, hot-before-normal pop
//! order, and a hint that returns to zero once the lanes drain.

use crate::deque::Worker;
use crate::injector::Injector;
use crate::metrics::CachePadded;
use ft_sync::atomic::{AtomicU64, Ordering};

/// Acquisition priority of a spawned job.
///
/// [`Priority::High`] jobs are popped/stolen before [`Priority::Normal`]
/// ones wherever both are visible to a worker. The default everywhere is
/// `Normal`; a pool with no `High` spawns behaves exactly like the
/// single-lane pool (FIFO mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Ordinary job: popped after any visible high-priority work.
    #[default]
    Normal,
    /// Hot job (hard/critical task traversal): popped first.
    High,
}

/// A two-lane MPMC injector: hot jobs are stolen before normal ones.
pub struct PrioInjector<T> {
    hot: Injector<T>,
    normal: Injector<T>,
    /// Conservative count of elements in the hot lane (protocol above).
    hot_hint: CachePadded<AtomicU64>,
}

impl<T> std::fmt::Debug for PrioInjector<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrioInjector")
            .field("hot_len", &self.hot.len())
            .field("normal_len", &self.normal.len())
            .finish()
    }
}

impl<T> Default for PrioInjector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrioInjector<T> {
    /// Create an empty two-lane injector.
    pub fn new() -> Self {
        PrioInjector {
            hot: Injector::new(),
            normal: Injector::new(),
            hot_hint: CachePadded(AtomicU64::new(0)),
        }
    }

    /// Push a value into the lane selected by `prio`.
    pub fn push(&self, value: T, prio: Priority) {
        match prio {
            Priority::High => {
                // Count the element *before* it becomes stealable so a
                // thief that observes the published element also observes
                // a non-zero hint (SeqCst pairs with the load in
                // `steal_hot`).
                self.hot_hint.fetch_add(1, Ordering::SeqCst);
                self.hot.push(value);
            }
            Priority::Normal => self.normal.push(value),
        }
    }

    /// Steal one element from the hot lane, if the hint says it may hold
    /// any. The common FIFO-mode cost is the single hint load.
    pub fn steal_hot(&self) -> Option<T> {
        if self.hot_hint.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let stolen = self.hot.steal();
        if stolen.is_some() {
            // One published element consumed: release its hint count.
            self.hot_hint.fetch_sub(1, Ordering::SeqCst);
        }
        stolen
    }

    /// Steal one element from the normal lane.
    pub fn steal_normal(&self) -> Option<T> {
        self.normal.steal()
    }

    /// Steal one element, hot lane first.
    pub fn steal(&self) -> Option<T> {
        self.steal_hot().or_else(|| self.steal_normal())
    }

    /// Batch-steal from the *normal* lane into `dest`, returning the
    /// oldest stolen element. Hot elements are rare by construction
    /// (critical-task traversals only), so they are stolen one at a time
    /// via [`PrioInjector::steal_hot`], which keeps the hint accounting
    /// exact.
    pub fn steal_batch_and_pop_normal(&self, dest: &Worker<T>) -> Option<T>
    where
        T: Send,
    {
        self.normal.steal_batch_and_pop(dest)
    }

    /// True if both lanes are empty.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.normal.is_empty()
    }

    /// Total elements across both lanes (racy, diagnostics only).
    pub fn len(&self) -> usize {
        self.hot.len() + self.normal.len()
    }

    /// Current value of the hot-lane occupancy hint (diagnostics/tests).
    pub fn hot_hint(&self) -> u64 {
        self.hot_hint.load(Ordering::SeqCst)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn hot_before_normal_single_thread() {
        let q = PrioInjector::new();
        q.push(1u64, Priority::Normal);
        q.push(2, Priority::High);
        q.push(3, Priority::Normal);
        q.push(4, Priority::High);
        assert_eq!(q.steal(), Some(2));
        assert_eq!(q.steal(), Some(4));
        assert_eq!(q.steal(), Some(1));
        assert_eq!(q.steal(), Some(3));
        assert_eq!(q.steal(), None);
        assert!(q.is_empty());
        assert_eq!(q.hot_hint(), 0);
    }

    #[test]
    fn hint_tracks_hot_lane_exactly_when_sequential() {
        let q = PrioInjector::new();
        for i in 0..100u64 {
            q.push(i, Priority::High);
        }
        assert_eq!(q.hot_hint(), 100);
        for _ in 0..100 {
            assert!(q.steal_hot().is_some());
        }
        assert_eq!(q.hot_hint(), 0);
        assert_eq!(q.steal_hot(), None);
    }

    #[test]
    fn fifo_mode_never_touches_hot_lane() {
        let q = PrioInjector::new();
        for i in 0..64u64 {
            q.push(i, Priority::Normal);
        }
        assert_eq!(q.hot_hint(), 0);
        let (w, _s) = crate::deque::deque::<u64>();
        // Batch path drains the normal lane in FIFO order.
        let first = q.steal_batch_and_pop_normal(&w);
        assert_eq!(first, Some(0));
        let mut got = vec![0u64];
        while let Some(v) = w.pop().or_else(|| q.steal_batch_and_pop_normal(&w)) {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_mixed_push_steal_no_loss() {
        use std::sync::Arc;
        let q = Arc::new(PrioInjector::new());
        let n_per = 1000u64;
        std::thread::scope(|ts| {
            for p in 0..2u64 {
                let q = Arc::clone(&q);
                ts.spawn(move || {
                    for i in 0..n_per {
                        let prio = if i % 3 == 0 {
                            Priority::High
                        } else {
                            Priority::Normal
                        };
                        q.push(p * n_per + i, prio);
                    }
                });
            }
            let mut seen = std::collections::HashSet::new();
            while seen.len() < 2 * n_per as usize {
                if let Some(v) = q.steal() {
                    assert!(seen.insert(v), "duplicate element {v}");
                }
            }
        });
        assert!(q.is_empty());
        assert_eq!(q.hot_hint(), 0);
    }
}
