//! The workspace must stay lint-clean: this test runs the real policy over
//! the real tree, so `cargo test` fails the moment a PR erodes the
//! SAFETY/ordering discipline — the same gate CI runs via
//! `cargo run -p ft-lint -- --deny`.

use ft_lint::{run, Config};
use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_lint_clean() {
    let report = run(&Config::workspace(workspace_root())).expect("lint run");
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — runtime dirs moved?",
        report.files_scanned
    );
}

#[test]
fn no_l1_waivers_anywhere() {
    // Acceptance bar from the issue: every unsafe site has a real SAFETY
    // comment; waiving L1 is not an accepted escape hatch.
    let report = run(&Config::workspace(workspace_root())).expect("lint run");
    let l1: Vec<_> = report.waivers.iter().filter(|w| w.rule == "L1").collect();
    assert!(l1.is_empty(), "L1 must not be waived: {l1:?}");
}

#[test]
fn deny_mode_binary_exits_zero_on_workspace() {
    // Shell the actual binary, exactly as CI does.
    let out = Command::new(env!("CARGO_BIN_EXE_ft-lint"))
        .args(["--deny", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("spawn ft-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "ft-lint --deny failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"violations\": ["));
    assert!(stdout.contains("\"files_scanned\""));
}
