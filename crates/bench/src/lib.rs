//! `ft-bench` — the experiment harness.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (Section VI); the Criterion benches under `benches/` provide
//! statistically-disciplined micro versions of the same comparisons plus
//! ablations of the design decisions called out in DESIGN.md.
//!
//! Scaled defaults: the paper's testbed was a 48-core machine running
//! ~10-minute configurations (Table I); the harness defaults reproduce the
//! same *graph shapes* at sizes that complete in seconds here, and every
//! experiment takes `--n/--b/--loss/--reps` overrides to scale up.

pub mod dag_gen;
pub mod grids;
pub mod measure;
pub mod meta;
pub mod registry;
pub mod report;
pub mod snapshot;

pub use dag_gen::{DagGenConfig, RandDag};
pub use measure::{measure, Stats};
pub use registry::{make_app, make_randdag, parse_randdag, AppKind, APP_KINDS};
pub use report::{ExperimentReport, Row};

use ft_apps::BenchApp;
use ft_steal::pool::Pool;
use nabbit_ft::inject::FaultPlan;
use nabbit_ft::metrics::RunReport;
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use nabbit_ft::TaskGraph;
use std::sync::Arc;

/// Run the fault-tolerant scheduler over a fresh app instance.
pub fn run_ft(pool: &Pool, app: Arc<dyn BenchApp>, plan: FaultPlan) -> RunReport {
    let graph: Arc<dyn TaskGraph> = app;
    FtScheduler::with_plan(graph, Arc::new(plan)).run(pool)
}

/// Run the baseline (non-FT) scheduler over a fresh app instance.
pub fn run_baseline(pool: &Pool, app: Arc<dyn BenchApp>) -> RunReport {
    let graph: Arc<dyn TaskGraph> = app;
    BaselineScheduler::new(graph).run(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_apps::AppConfig;
    use ft_steal::pool::PoolConfig;

    #[test]
    fn harness_roundtrip_all_apps() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        for kind in APP_KINDS {
            let app = make_app(*kind, AppConfig::new(64, 16));
            let r = run_ft(&pool, app, FaultPlan::none());
            assert!(r.sink_completed, "{kind:?}");
            let app = make_app(*kind, AppConfig::new(64, 16));
            let r = run_baseline(&pool, app);
            assert!(r.sink_completed, "{kind:?}");
        }
    }
}
