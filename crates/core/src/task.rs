//! Task descriptors — the per-task runtime state of Section III.
//!
//! "For each task, the runtime holds the following fields: (int) join […],
//! (int64_t*) notifyArray […], (int) status". The fault-tolerant version
//! adds the notification bit vector, the life number, a recovery marker and
//! the poison/overwritten flags through which detected errors surface.
//!
//! Two descriptor types exist so the baseline scheduler (Figure 2,
//! non-shaded) carries **zero** fault-tolerance state — the paper's
//! "baseline version includes no additional data structures or statements
//! introduced for fault tolerance". The shared traversal engine sees both
//! through the [`Descriptor`] trait.
//!
//! Since PR 8 the descriptors are **allocation-free for typical fan-in**:
//! the predecessor list ([`PredList`]) and notify cells ([`NotifyCells`])
//! store up to [`INLINE_KEYS`] keys inline and only spill wider lists to
//! the heap, and the bit vector keeps its first word inline. A grid/LCS/LU
//! task (≤ 2 predecessors, ≤ 2 successors) therefore costs zero heap
//! allocations beyond its arena slot.
//!
//! Since PR 9 the notify array is **lock-free**: [`NotifyCells`] is a
//! fixed-capacity cell array (capacity = the task's out-degree, known from
//! the graph) whose slots are claimed by `fetch_add` and published with a
//! `Release` store, plus a CAS-installed overflow chain for the recovery
//! path's re-registrations. Delivery is arbitrated per slot by a
//! `key → TAKEN` compare-exchange, so registrant (self-delivery) and
//! drainer (completion scan) deliver each notification exactly once
//! without a mutex. See `docs/ALGORITHM.md` "Lock-free notification
//! (PR 9)" for the protocol and its ordering table. The `locked_notify`
//! cargo feature swaps in a mutex-based implementation of the same API —
//! the ablation baseline `bench_pr9` measures against.

use crate::bitvec::AtomicBitVec;
use crate::fault::Fault;
use crate::graph::Key;
use crate::scheduler::engine::Descriptor;
use ft_sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};

/// Keys stored inline by [`PredList`] and [`NotifyCells`] before spilling
/// to the heap. Four covers every regular kernel (grid/LCS/LU/strassen
/// fan-in ≤ 3) and the bulk of random-DAG nodes.
pub const INLINE_KEYS: usize = 4;

/// Ordered immediate-predecessor list with inline storage for up to
/// [`INLINE_KEYS`] keys. Immutable after construction.
pub struct PredList {
    len: u32,
    inline: [Key; INLINE_KEYS],
    /// Full list when `len > INLINE_KEYS`; empty (no allocation) otherwise.
    spill: Box<[Key]>,
}

impl PredList {
    /// Copy `preds` into a new list.
    pub fn new(preds: &[Key]) -> Self {
        let mut inline = [0; INLINE_KEYS];
        let spill = if preds.len() <= INLINE_KEYS {
            inline[..preds.len()].copy_from_slice(preds);
            Box::default()
        } else {
            preds.to_vec().into_boxed_slice()
        };
        PredList {
            len: preds.len() as u32,
            inline,
            spill,
        }
    }

    /// The predecessors, in graph order.
    pub fn as_slice(&self) -> &[Key] {
        if self.len as usize <= INLINE_KEYS {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of predecessors.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no predecessors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for PredList {
    type Target = [Key];
    fn deref(&self) -> &[Key] {
        self.as_slice()
    }
}

/// Outcome of a drainer's [`NotifyCells::take_at`] on one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Take {
    /// The drainer won the slot's CAS: deliver this successor key.
    Deliver(Key),
    /// The slot was claimed but its key is not (yet) visible. The SC-fence
    /// protocol guarantees the registrant then observes `status ≥ Computed`
    /// after its own fence and self-delivers — the drainer skips the slot.
    Delegated,
    /// The slot was already delivered (by the registrant or an earlier
    /// scan).
    Done,
}

/// Slot value of a claimed-but-unpublished cell. `i64::MIN` is never a
/// task key (the block store reserves it as `RESILIENT_PRODUCER`, and no
/// graph in the suite issues it).
const CELL_EMPTY: i64 = i64::MIN;
/// Slot value after the notification was delivered (by whichever side won
/// the `key → TAKEN` compare-exchange).
const CELL_TAKEN: i64 = i64::MIN + 1;

/// Slots per overflow segment. Overflow is reached only by recovery-time
/// re-registrations (normal operation claims at most `out_degree` slots),
/// so segments are small.
#[cfg(not(feature = "locked_notify"))]
const SEG_SLOTS: usize = 8;

/// One CAS-installed segment of the overflow chain.
#[cfg(not(feature = "locked_notify"))]
struct OverflowSeg {
    /// First global slot index this segment covers.
    base: usize,
    slots: [AtomicI64; SEG_SLOTS],
    next: ft_sync::atomic::AtomicPtr<OverflowSeg>,
}

// ft-lint: hot-path begin(notify-cells)
#[cfg(not(feature = "locked_notify"))]
impl OverflowSeg {
    fn new(base: usize) -> Box<Self> {
        // ft-lint: allow(L9) overflow segments exist only for recovery-time
        // re-registrations; the steady-state claim/publish/take path never
        // reaches this allocation.
        Box::new(OverflowSeg {
            base,
            slots: std::array::from_fn(|_| AtomicI64::new(CELL_EMPTY)),
            next: ft_sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
        })
    }
}

/// Lock-free successor notification cells ("notifyArray", PR 9).
///
/// A registrant (successor `A` registering on predecessor `B`) claims a
/// slot index with `fetch_add`, publishes its key with a `Release` store,
/// then — after an SC fence — re-reads `B.status` and self-delivers if
/// `B` already computed. The drainer (`B`'s `ComputeAndNotify`) publishes
/// `Computed`, fences, and scans every claimed slot; a `key → TAKEN` CAS
/// arbitrates so each notification is delivered exactly once. An `EMPTY`
/// slot at scan time means the registrant's fence is ordered after the
/// drainer's, so the registrant is guaranteed to see `≥ Computed` and
/// self-deliver (Dekker argument — see `docs/ALGORITHM.md`).
///
/// Capacity covers the task's out-degree: `INLINE_KEYS` cells inline plus
/// a pre-sized spill. Claims beyond that (recovery re-registration) land
/// in a CAS-installed overflow chain.
#[cfg(not(feature = "locked_notify"))]
pub struct NotifyCells {
    /// Next free slot index. SeqCst RMW/loads: the drainer's final length
    /// re-read orders against late claimers (termination argument).
    claims: ft_sync::atomic::AtomicUsize,
    /// Cells 0..INLINE_KEYS, stored inline.
    inline: [AtomicI64; INLINE_KEYS],
    /// Cells INLINE_KEYS..capacity for out-degrees above INLINE_KEYS;
    /// empty (no allocation) otherwise.
    spill: Box<[AtomicI64]>,
    /// CAS-installed chain for claims past the fixed capacity.
    overflow: ft_sync::atomic::AtomicPtr<OverflowSeg>,
}

// SAFETY: the raw overflow pointers only ever reference heap segments
// installed by a successful CAS (never aliased mutably after publication;
// every field of a segment is atomic) and are freed exactly once, in
// `Drop`, when no other thread can hold a reference (the descriptor arena
// outlives every job of the epoch and drops after quiesce).
#[cfg(not(feature = "locked_notify"))]
unsafe impl Send for NotifyCells {}
// SAFETY: see the `Send` justification above; all shared state is atomic.
#[cfg(not(feature = "locked_notify"))]
unsafe impl Sync for NotifyCells {}

#[cfg(not(feature = "locked_notify"))]
impl NotifyCells {
    /// Cells with fixed capacity `max(capacity, INLINE_KEYS)`, all empty.
    pub fn new(capacity: usize) -> Self {
        let spill: Box<[AtomicI64]> = (INLINE_KEYS..capacity)
            .map(|_| AtomicI64::new(CELL_EMPTY))
            .collect();
        NotifyCells {
            claims: ft_sync::atomic::AtomicUsize::new(0),
            inline: std::array::from_fn(|_| AtomicI64::new(CELL_EMPTY)),
            spill,
            overflow: ft_sync::atomic::AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Fixed (inline + spill) capacity before the overflow chain starts.
    fn fixed_cap(&self) -> usize {
        INLINE_KEYS + self.spill.len()
    }

    /// The cell for `slot`, walking (and with `install`, extending) the
    /// overflow chain for slots past the fixed capacity. Returns `None`
    /// only when `install` is false and the covering segment is not (yet)
    /// published — the drainer treats that as [`Take::Delegated`].
    fn cell(&self, slot: usize, install: bool) -> Option<&AtomicI64> {
        if slot < INLINE_KEYS {
            return Some(&self.inline[slot]);
        }
        if slot < self.fixed_cap() {
            return Some(&self.spill[slot - INLINE_KEYS]);
        }
        let mut base = self.fixed_cap();
        let mut link = &self.overflow;
        loop {
            // ord: Acquire pairs with the Release CAS install below so the
            // segment's fields are visible once the pointer is.
            let mut ptr = link.load(Ordering::Acquire);
            if ptr.is_null() {
                if !install {
                    return None;
                }
                let seg = Box::into_raw(OverflowSeg::new(base));
                // ord: Release publishes the segment's initialized fields;
                // Acquire on failure sees the winner's segment.
                match link.compare_exchange(
                    std::ptr::null_mut(),
                    seg,
                    Ordering::Release,
                    Ordering::Acquire,
                ) {
                    Ok(_) => ptr = seg,
                    Err(winner) => {
                        // SAFETY: the CAS failed, so `seg` was never
                        // published — this thread still uniquely owns it.
                        drop(unsafe { Box::from_raw(seg) });
                        ptr = winner;
                    }
                }
            }
            // SAFETY: non-null chain pointers always reference live
            // published segments; segments are only freed in `Drop`.
            let seg = unsafe { &*ptr };
            debug_assert_eq!(seg.base, base, "overflow chain bases are sequential");
            if slot < base + SEG_SLOTS {
                return Some(&seg.slots[slot - base]);
            }
            base += SEG_SLOTS;
            link = &seg.next;
        }
    }

    /// Registrant step 1: reserve a slot index.
    pub fn claim(&self) -> usize {
        // ord: SeqCst so the drainer's final SeqCst length re-read and this
        // RMW are totally ordered — a claim the drainer's last read missed
        // is SC-ordered after the drainer's fence, which forces the
        // registrant's post-fence status read to observe ≥ Computed.
        self.claims.fetch_add(1, Ordering::SeqCst)
    }

    /// Registrant step 2: publish `key` into the claimed `slot`.
    pub fn publish(&self, slot: usize, key: Key) {
        debug_assert!(
            key > CELL_TAKEN,
            "task keys must not collide with sentinels"
        );
        let cell = self.cell(slot, true).expect("installed above");
        // ord: Release pairs with the drainer's Acquire scan load.
        cell.store(key, Ordering::Release);
    }

    /// Registrant self-delivery arbitration: after observing
    /// `status ≥ Computed`, atomically take back the own slot. Returns
    /// `true` iff this registrant won (the drainer did not deliver it).
    pub fn try_take(&self, slot: usize, key: Key) -> bool {
        let cell = self.cell(slot, true).expect("installed by publish");
        // ord: AcqRel — the winner orders its delivery after the publish.
        cell.compare_exchange(key, CELL_TAKEN, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Drainer scan of one claimed slot.
    pub fn take_at(&self, slot: usize) -> Take {
        let Some(cell) = self.cell(slot, false) else {
            return Take::Delegated;
        };
        // ord: Acquire pairs with the registrant's Release publish.
        match cell.load(Ordering::Acquire) {
            CELL_EMPTY => Take::Delegated,
            CELL_TAKEN => Take::Done,
            key => {
                // ord: AcqRel — winning the CAS orders the delivery after
                // the registrant's publish; a loss means the registrant
                // self-delivered (the only other transition is key→TAKEN).
                if cell
                    .compare_exchange(key, CELL_TAKEN, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    Take::Deliver(key)
                } else {
                    Take::Done
                }
            }
        }
    }

    /// Number of claimed slots so far.
    pub fn len(&self) -> usize {
        // ord: SeqCst — see `claim`; the drainer's termination check relies
        // on the total order with late claim RMWs.
        self.claims.load(Ordering::SeqCst)
    }

    /// True when no successor has claimed a slot.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
// ft-lint: hot-path end(notify-cells)

#[cfg(not(feature = "locked_notify"))]
impl Drop for NotifyCells {
    fn drop(&mut self) {
        // ord: Relaxed is enough — `&mut self` proves exclusive access.
        let mut ptr = self.overflow.load(Ordering::Relaxed);
        while !ptr.is_null() {
            // SAFETY: `&mut self` means no other reference exists; each
            // segment was leaked from a `Box` by exactly one winning CAS
            // and is freed exactly once here.
            let seg = unsafe { Box::from_raw(ptr) };
            // ord: Relaxed — exclusive access, see above.
            ptr = seg.next.load(Ordering::Relaxed);
        }
    }
}

/// Mutex-based ablation of [`NotifyCells`] (`--features locked_notify`):
/// the identical claim/publish/take API backed by one lock, so `bench_pr9`
/// can measure exactly the notification-path contention the lock-free
/// cells remove, with the engine code byte-identical in both builds.
#[cfg(feature = "locked_notify")]
pub struct NotifyCells {
    slots: parking_lot::Mutex<Vec<i64>>,
}

#[cfg(feature = "locked_notify")]
impl NotifyCells {
    /// Cells with room for `capacity` slots (grown on demand).
    pub fn new(capacity: usize) -> Self {
        NotifyCells {
            slots: parking_lot::Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    // ft-lint: hot-path begin(locked-notify)
    //
    // This is the deliberate mutex ablation (`--features locked_notify`)
    // that `bench_pr9` measures against the lock-free cells; every lock
    // acquisition below is the point of the experiment, not an accident.

    /// Registrant step 1: reserve a slot index.
    pub fn claim(&self) -> usize {
        // ft-lint: allow(L9) measured ablation — the lock is the baseline.
        let mut g = self.slots.lock();
        g.push(CELL_EMPTY);
        g.len() - 1
    }

    /// Registrant step 2: publish `key` into the claimed `slot`.
    pub fn publish(&self, slot: usize, key: Key) {
        debug_assert!(
            key > CELL_TAKEN,
            "task keys must not collide with sentinels"
        );
        // ft-lint: allow(L9) measured ablation — the lock is the baseline.
        self.slots.lock()[slot] = key;
    }

    /// Registrant self-delivery arbitration (see the lock-free variant).
    pub fn try_take(&self, slot: usize, key: Key) -> bool {
        // ft-lint: allow(L9) measured ablation — the lock is the baseline.
        let mut g = self.slots.lock();
        if g[slot] == key {
            g[slot] = CELL_TAKEN;
            true
        } else {
            false
        }
    }

    /// Drainer scan of one claimed slot.
    pub fn take_at(&self, slot: usize) -> Take {
        // ft-lint: allow(L9) measured ablation — the lock is the baseline.
        let mut g = self.slots.lock();
        match g[slot] {
            CELL_EMPTY => Take::Delegated,
            CELL_TAKEN => Take::Done,
            key => {
                g[slot] = CELL_TAKEN;
                Take::Deliver(key)
            }
        }
    }

    /// Number of claimed slots so far.
    pub fn len(&self) -> usize {
        // ft-lint: allow(L9) measured ablation — the lock is the baseline.
        self.slots.lock().len()
    }

    /// True when no successor has claimed a slot.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    // ft-lint: hot-path end(locked-notify)
}

/// Execution status of a task ("Visited, Computed, and Completed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Status {
    /// Created and inserted into the hash map; compute not yet done.
    Visited = 0,
    /// The `compute` function has executed.
    Computed = 1,
    /// All enqueued successors have been notified.
    Completed = 2,
}

impl Status {
    /// Decode a raw status byte; `None` if the byte holds none of the
    /// three legal values — a smashed status, which the FT scheduler
    /// surfaces as a descriptor fault rather than a spuriously finished
    /// task.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Visited),
            1 => Some(Status::Computed),
            2 => Some(Status::Completed),
            _ => None,
        }
    }
}

/// Descriptor for the **baseline** (non-fault-tolerant) scheduler.
pub struct BaseDesc {
    /// Task key.
    pub key: Key,
    /// Ordered immediate predecessors (cached at creation; `Init(A)`).
    pub preds: PredList,
    /// Join counter, initialized to `|preds)| + 1` (the +1 is consumed by
    /// the self-notification at the end of `InitAndCompute`).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successor notification cells, sized by the task's out-degree.
    pub notify: NotifyCells,
}

impl BaseDesc {
    /// Create a descriptor with the given ordered predecessor list and
    /// notify capacity (the task's out-degree).
    pub fn new(key: Key, preds: &[Key], out_degree: usize) -> Self {
        let join = preds.len() as i64 + 1;
        BaseDesc {
            key,
            preds: PredList::new(preds),
            join: AtomicI64::new(join),
            status: AtomicU8::new(Status::Visited as u8),
            notify: NotifyCells::new(out_degree),
        }
    }

    /// Current status. The baseline has no fault model, so a corrupt
    /// status byte (impossible without injection) is a panic, never a
    /// silent `Completed`.
    pub fn status(&self) -> Status {
        // ord: Acquire — pairs with set_status's Release so the Figure-2
        // gate observing Computed also sees the task's output blocks.
        Status::from_u8(self.status.load(Ordering::Acquire))
            .expect("corrupt status byte — the baseline scheduler has no fault model")
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        // ord: Release — publishes the writes that justify the new status.
        self.status.store(s as u8, Ordering::Release);
    }
}

impl Descriptor for BaseDesc {
    fn life(&self) -> u64 {
        1
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify_cells(&self) -> &NotifyCells {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        BaseDesc::set_status(self, s);
    }
}

/// Descriptor for the **fault-tolerant** scheduler.
pub struct FtDesc {
    /// Task key.
    pub key: Key,
    /// Life number of this incarnation (1 = original; recovery replaces the
    /// map entry with a descriptor of life+1).
    pub life: u64,
    /// Ordered immediate predecessors.
    pub preds: PredList,
    /// Join counter (`|preds| + 1`, self-notification included).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successor notification cells, sized by the task's out-degree. A
    /// recovered incarnation gets a **fresh** descriptor (life+1) and
    /// therefore fresh cells — the life number doubles as the generation
    /// tag, so `ResetNode`/`ReinitNotifyEntry` never clear cells in place.
    pub notify: NotifyCells,
    /// Per-predecessor (plus self) notification bits; Guarantee 3.
    pub bits: AtomicBitVec,
    /// True once a detected soft error has corrupted this descriptor.
    /// "Once an error is detected, all subsequent accesses observe it."
    pub poisoned: AtomicBool,
    /// True once a data-block version produced by this task was evicted and
    /// is again needed — the task must be re-executed as if it failed.
    pub overwritten: AtomicBool,
    /// True when this incarnation was created by `RecoverTask`.
    pub is_recovery: AtomicBool,
}

impl FtDesc {
    /// Create incarnation `life` of task `key` with the given ordered
    /// predecessor list and notify capacity (the task's out-degree). Join
    /// counter and bit vector cover `preds` plus the self slot.
    pub fn new(key: Key, life: u64, preds: &[Key], out_degree: usize) -> Self {
        let n = preds.len();
        FtDesc {
            key,
            life,
            preds: PredList::new(preds),
            join: AtomicI64::new(n as i64 + 1),
            status: AtomicU8::new(Status::Visited as u8),
            notify: NotifyCells::new(out_degree),
            bits: AtomicBitVec::new_all_set(n + 1),
            poisoned: AtomicBool::new(false),
            overwritten: AtomicBool::new(false),
            is_recovery: AtomicBool::new(false),
        }
    }

    /// Guarded status read: a byte outside the three legal values means
    /// the descriptor was corrupted, and surfaces as a descriptor fault
    /// exactly like a poisoned flag.
    pub fn try_status(&self) -> Result<Status, Fault> {
        // ord: Acquire — pairs with set_status's Release so the Figure-2
        // gate observing Computed also sees the task's output blocks.
        Status::from_u8(self.status.load(Ordering::Acquire))
            .ok_or_else(|| Fault::descriptor(self.key, self.life))
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        // ord: Release — publishes the writes that justify the new status.
        self.status.store(s as u8, Ordering::Release);
    }

    /// Guarded access: fail if this descriptor has been corrupted. Every
    /// routine that touches the descriptor inside one of the paper's try
    /// blocks calls this first.
    pub fn check(&self) -> Result<(), Fault> {
        // ord: Acquire — observing the poison flag must also see the fault
        // context written before it was raised (Release in poison_task).
        if self.poisoned.load(Ordering::Acquire) {
            Err(Fault::descriptor(self.key, self.life))
        } else {
            Ok(())
        }
    }

    /// `ConvertPredKeyToIndex`: position of `pkey` in the ordered
    /// predecessor list, or the self slot when `pkey == self.key`.
    ///
    /// Returns `None` when `pkey` is not a predecessor (can happen when the
    /// predecessor list of a *new incarnation* differs — it cannot for the
    /// deterministic graphs the contract requires, so callers treat `None`
    /// as a descriptor error).
    pub fn pred_index(&self, pkey: Key) -> Option<usize> {
        if pkey == self.key {
            return Some(self.preds.len());
        }
        self.preds.iter().position(|&p| p == pkey)
    }

    /// `ResetNode` state restoration: join back to `|preds| + 1`, all bits
    /// set. (The caller then re-runs `InitAndCompute`.)
    pub fn reset_for_reexploration(&self) {
        // ord: Release — the restored join count publishes the reset state
        // before the node is re-announced to notifiers.
        self.join
            .store(self.preds.len() as i64 + 1, Ordering::Release);
        self.bits.set_all();
    }
}

impl Descriptor for FtDesc {
    fn life(&self) -> u64 {
        self.life
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify_cells(&self) -> &NotifyCells {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        FtDesc::set_status(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_desc_initial_state() {
        let d = BaseDesc::new(5, &[1, 2, 3], 2);
        assert_eq!(d.key, 5);
        assert_eq!(d.join.load(Ordering::Relaxed), 4);
        assert_eq!(d.status(), Status::Visited);
        assert!(d.notify.is_empty());
    }

    #[test]
    fn ft_desc_initial_state() {
        let d = FtDesc::new(5, 1, &[1, 2], 2);
        assert_eq!(d.life, 1);
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.len(), 3);
        assert_eq!(d.bits.count_set(), 3);
        assert!(d.check().is_ok());
        assert!(!d.is_recovery.load(Ordering::Relaxed));
    }

    #[test]
    fn pred_list_inline_and_spilled() {
        let short = PredList::new(&[1, 2, 3, 4]);
        assert_eq!(short.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(short.len(), 4);
        let long: Vec<Key> = (0..9).collect();
        let spilled = PredList::new(&long);
        assert_eq!(spilled.as_slice(), long.as_slice());
        assert!(PredList::new(&[]).is_empty());
    }

    #[test]
    fn notify_cells_claim_publish_take() {
        let n = NotifyCells::new(2);
        assert!(n.is_empty());
        // Claim/publish across inline, spill and overflow regions.
        for k in 0..10 {
            let slot = n.claim();
            assert_eq!(slot, k as usize);
            n.publish(slot, 100 + k);
        }
        assert_eq!(n.len(), 10);
        for k in 0..10 {
            assert_eq!(n.take_at(k as usize), Take::Deliver(100 + k));
            assert_eq!(n.take_at(k as usize), Take::Done, "exactly-once");
        }
    }

    #[test]
    fn notify_cells_claimed_but_unpublished_is_delegated() {
        let n = NotifyCells::new(1);
        let slot = n.claim();
        assert_eq!(n.take_at(slot), Take::Delegated);
        n.publish(slot, 7);
        assert_eq!(n.take_at(slot), Take::Deliver(7));
    }

    #[test]
    fn notify_cells_registrant_self_delivery_wins_once() {
        let n = NotifyCells::new(4);
        let slot = n.claim();
        n.publish(slot, 42);
        assert!(n.try_take(slot, 42), "registrant wins the untouched slot");
        assert!(!n.try_take(slot, 42));
        assert_eq!(n.take_at(slot), Take::Done, "drainer then finds it taken");
        // And the reverse order: drainer first, registrant loses.
        let slot2 = n.claim();
        n.publish(slot2, 43);
        assert_eq!(n.take_at(slot2), Take::Deliver(43));
        assert!(!n.try_take(slot2, 43));
    }

    #[test]
    fn notify_cells_overflow_scan_without_install_is_delegated() {
        // A drainer scanning a slot whose overflow segment is not yet
        // installed must delegate, not panic.
        let n = NotifyCells::new(0);
        for _ in 0..20 {
            n.claim();
        }
        assert_eq!(n.take_at(19), Take::Delegated);
    }

    #[test]
    fn notify_cells_concurrent_claims_are_unique_and_all_delivered() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let n = Arc::new(NotifyCells::new(4));
        std::thread::scope(|s| {
            for t in 0..8i64 {
                let n = Arc::clone(&n);
                s.spawn(move || {
                    for i in 0..32 {
                        let slot = n.claim();
                        n.publish(slot, t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(n.len(), 8 * 32);
        let mut seen = HashSet::new();
        for slot in 0..n.len() {
            match n.take_at(slot) {
                Take::Deliver(k) => assert!(seen.insert(k), "duplicate key {k}"),
                other => panic!("slot {slot}: expected Deliver, got {other:?}"),
            }
        }
        assert_eq!(seen.len(), 8 * 32);
    }

    #[test]
    fn status_ordering_matches_paper() {
        // "if (B.status < Computed)" relies on Visited < Computed < Completed.
        assert!(Status::Visited < Status::Computed);
        assert!(Status::Computed < Status::Completed);
    }

    #[test]
    fn from_u8_rejects_garbage() {
        assert_eq!(Status::from_u8(0), Some(Status::Visited));
        assert_eq!(Status::from_u8(1), Some(Status::Computed));
        assert_eq!(Status::from_u8(2), Some(Status::Completed));
        for v in 3..=255u8 {
            assert_eq!(Status::from_u8(v), None, "byte {v} must not decode");
        }
    }

    #[test]
    fn ft_corrupt_status_byte_is_a_descriptor_fault() {
        let d = FtDesc::new(7, 3, &[1], 1);
        assert_eq!(d.try_status().unwrap(), Status::Visited);
        d.status.store(0xAB, Ordering::Release);
        let err = d.try_status().unwrap_err();
        assert_eq!(err.source, 7);
        assert_eq!(err.life, 3);
    }

    #[test]
    #[should_panic(expected = "corrupt status byte")]
    fn base_corrupt_status_byte_panics() {
        let d = BaseDesc::new(1, &[], 0);
        d.status.store(0xFF, Ordering::Release);
        let _ = d.status();
    }

    #[test]
    fn pred_index_including_self() {
        let d = FtDesc::new(10, 1, &[7, 8, 9], 1);
        assert_eq!(d.pred_index(7), Some(0));
        assert_eq!(d.pred_index(9), Some(2));
        assert_eq!(d.pred_index(10), Some(3), "self slot is last");
        assert_eq!(d.pred_index(99), None);
    }

    #[test]
    fn pred_index_with_spilled_preds() {
        let preds: Vec<Key> = (100..108).collect();
        let d = FtDesc::new(10, 1, &preds, 1);
        assert_eq!(d.pred_index(100), Some(0));
        assert_eq!(d.pred_index(107), Some(7));
        assert_eq!(d.pred_index(10), Some(8), "self slot is last");
        assert_eq!(d.bits.len(), 9);
    }

    #[test]
    fn check_fails_after_poison() {
        let d = FtDesc::new(3, 2, &[], 1);
        d.poisoned.store(true, Ordering::Release);
        let err = d.check().unwrap_err();
        assert_eq!(err.source, 3);
        assert_eq!(err.life, 2);
    }

    #[test]
    fn reset_restores_join_and_bits() {
        let d = FtDesc::new(1, 1, &[2, 3], 1);
        assert!(d.bits.unset(0));
        assert!(d.bits.unset(2));
        d.join.store(0, Ordering::Relaxed);
        d.reset_for_reexploration();
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.count_set(), 3);
    }

    #[test]
    fn source_task_has_join_one() {
        // A source (no preds) still needs the self-notification to fire.
        let d = FtDesc::new(0, 1, &[], 1);
        assert_eq!(d.join.load(Ordering::Relaxed), 1);
        assert_eq!(d.pred_index(0), Some(0));
    }
}
