//! Atomic notification bit vector (Guarantee 3).
//!
//! "We retain a bit vector that tracks if the join counter has been
//! decremented for a particular predecessor in the ordered list of
//! predecessors. This bit vector is initialized to 1 for all bits. Each bit
//! is unset when the corresponding predecessor is observed to have been
//! computed […]. The join counter is decremented only if that bit is set."
//!
//! The vector has one bit per predecessor **plus one for the task itself**:
//! `InitAndCompute` ends with a self-notification (`NotifyOnce(A, key, key)`)
//! so the join counter starts at `|in(A)| + 1`; the self bit keeps that
//! decrement exactly-once too (a reset node re-traverses and re-self-
//! notifies).
//!
//! The first word is stored **inline**: every task with ≤ 63 predecessors
//! (all the paper's kernels, and any realistic fan-in) pays zero heap
//! allocations for its bit vector; wider vectors spill the remaining words
//! into a boxed slice.

use ft_sync::atomic::{AtomicU64, Ordering};

/// A fixed-width vector of atomically clearable bits.
pub struct AtomicBitVec {
    /// Bits 0..=63, stored inline.
    word0: AtomicU64,
    /// Words 1.. for vectors wider than 64 bits; empty (no allocation)
    /// otherwise.
    spill: Box<[AtomicU64]>,
    len: usize,
}

/// Value of word `w` with every in-range bit set.
fn full_mask(len: usize, w: usize) -> u64 {
    let bits_in_word = if (w + 1) * 64 <= len {
        64
    } else {
        len.saturating_sub(w * 64)
    };
    if bits_in_word == 64 {
        u64::MAX
    } else {
        (1u64 << bits_in_word) - 1
    }
}

impl AtomicBitVec {
    /// Create a vector of `len` bits, all set to 1.
    pub fn new_all_set(len: usize) -> Self {
        let nwords = len.div_ceil(64).max(1);
        let spill: Box<[AtomicU64]> = (1..nwords)
            .map(|w| AtomicU64::new(full_mask(len, w)))
            .collect();
        AtomicBitVec {
            word0: AtomicU64::new(full_mask(len, 0)),
            spill,
            len,
        }
    }

    /// The word holding bit index range `[64w, 64w+63]`.
    fn word(&self, w: usize) -> &AtomicU64 {
        if w == 0 {
            &self.word0
        } else {
            &self.spill[w - 1]
        }
    }

    /// Number of words (inline + spill).
    fn nwords(&self) -> usize {
        1 + self.spill.len()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `AtomicBitUnset`: clear bit `i`. Returns `true` iff the bit was set
    /// (i.e. this caller won the right to decrement the join counter).
    pub fn unset(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        // ord: AcqRel — winning the unset must both observe the reset
        // that set the bit (Acquire) and order the caller's subsequent
        // join decrement after it (Release).
        let prev = self.word(i / 64).fetch_and(!mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Read bit `i` (used by `ReinitNotifyEntry`: "if S.bitVector[ind]==1").
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        // ord: Acquire — pairs with set_all's Release so a reader that
        // sees a restored bit also sees the reset that restored it.
        self.word(i / 64).load(Ordering::Acquire) & (1u64 << (i % 64)) != 0
    }

    /// `SetAllBits`: restore every bit to 1 (used by `ResetNode`).
    pub fn set_all(&self) {
        for w in 0..self.nwords() {
            // ord: Release — publishes the reset to get()'s Acquire
            // loads before the node is re-armed.
            self.word(w)
                .store(full_mask(self.len, w), Ordering::Release);
        }
    }

    /// Number of set bits (diagnostics).
    pub fn count_set(&self) -> usize {
        (0..self.nwords())
            // ord: Acquire — diagnostics read the freshest published words.
            .map(|w| self.word(w).load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_all_set() {
        for len in [0, 1, 5, 63, 64, 65, 128, 130] {
            let v = AtomicBitVec::new_all_set(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.count_set(), len, "len={len}");
            for i in 0..len {
                assert!(v.get(i), "bit {i} of {len}");
            }
        }
    }

    #[test]
    fn narrow_vectors_do_not_spill() {
        for len in [0, 1, 63, 64] {
            assert!(AtomicBitVec::new_all_set(len).spill.is_empty(), "len={len}");
        }
        assert_eq!(AtomicBitVec::new_all_set(65).spill.len(), 1);
    }

    #[test]
    fn unset_returns_true_once() {
        let v = AtomicBitVec::new_all_set(10);
        assert!(v.unset(3));
        assert!(!v.unset(3));
        assert!(!v.get(3));
        assert!(v.get(2));
        assert_eq!(v.count_set(), 9);
    }

    #[test]
    fn set_all_restores() {
        let v = AtomicBitVec::new_all_set(100);
        for i in 0..100 {
            v.unset(i);
        }
        assert_eq!(v.count_set(), 0);
        v.set_all();
        assert_eq!(v.count_set(), 100);
        // Bits beyond len must stay clear so count_set stays exact.
        assert!(v.unset(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let v = AtomicBitVec::new_all_set(4);
        v.unset(4);
    }

    #[test]
    fn word_boundary_bits() {
        let v = AtomicBitVec::new_all_set(65);
        assert!(v.unset(63));
        assert!(v.unset(64));
        assert!(!v.unset(64));
        assert_eq!(v.count_set(), 63);
    }

    #[test]
    fn concurrent_unset_exactly_one_winner_per_bit() {
        const BITS: usize = 256;
        let v = Arc::new(AtomicBitVec::new_all_set(BITS));
        let wins = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for _ in 0..8 {
                let v = Arc::clone(&v);
                let wins = Arc::clone(&wins);
                s.spawn(move || {
                    for i in 0..BITS {
                        if v.unset(i) {
                            wins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), BITS);
        assert_eq!(v.count_set(), 0);
    }
}
