//! Task descriptors — the per-task runtime state of Section III.
//!
//! "For each task, the runtime holds the following fields: (int) join […],
//! (int64_t*) notifyArray […], (int) status". The fault-tolerant version
//! adds the notification bit vector, the life number, a recovery marker and
//! the poison/overwritten flags through which detected errors surface.
//!
//! Two descriptor types exist so the baseline scheduler (Figure 2,
//! non-shaded) carries **zero** fault-tolerance state — the paper's
//! "baseline version includes no additional data structures or statements
//! introduced for fault tolerance". The shared traversal engine sees both
//! through the [`Descriptor`] trait.
//!
//! Since PR 8 the descriptors are **allocation-free for typical fan-in**:
//! the predecessor list ([`PredList`]) and notify array ([`NotifyList`])
//! store up to [`INLINE_KEYS`] keys inline and only spill wider lists to
//! the heap, and the bit vector keeps its first word inline. A grid/LCS/LU
//! task (≤ 2 predecessors, ≤ 2 successors) therefore costs zero heap
//! allocations beyond its arena slot.

use crate::bitvec::AtomicBitVec;
use crate::fault::Fault;
use crate::graph::Key;
use crate::scheduler::engine::Descriptor;
use ft_sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};
use parking_lot::Mutex;

/// Keys stored inline by [`PredList`] and [`NotifyList`] before spilling
/// to the heap. Four covers every regular kernel (grid/LCS/LU/strassen
/// fan-in ≤ 3) and the bulk of random-DAG nodes.
pub const INLINE_KEYS: usize = 4;

/// Ordered immediate-predecessor list with inline storage for up to
/// [`INLINE_KEYS`] keys. Immutable after construction.
pub struct PredList {
    len: u32,
    inline: [Key; INLINE_KEYS],
    /// Full list when `len > INLINE_KEYS`; empty (no allocation) otherwise.
    spill: Box<[Key]>,
}

impl PredList {
    /// Copy `preds` into a new list.
    pub fn new(preds: &[Key]) -> Self {
        let mut inline = [0; INLINE_KEYS];
        let spill = if preds.len() <= INLINE_KEYS {
            inline[..preds.len()].copy_from_slice(preds);
            Box::default()
        } else {
            preds.to_vec().into_boxed_slice()
        };
        PredList {
            len: preds.len() as u32,
            inline,
            spill,
        }
    }

    /// The predecessors, in graph order.
    pub fn as_slice(&self) -> &[Key] {
        if self.len as usize <= INLINE_KEYS {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    /// Number of predecessors.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when there are no predecessors.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for PredList {
    type Target = [Key];
    fn deref(&self) -> &[Key] {
        self.as_slice()
    }
}

/// Append-only successor list ("notifyArray") with inline storage for up
/// to [`INLINE_KEYS`] keys. Guarded by the descriptor's mutex; readers
/// access entries by index so the engine can drain it incrementally
/// without copying a batch out.
pub struct NotifyList {
    len: u32,
    inline: [Key; INLINE_KEYS],
    /// Entries past the inline capacity, in push order.
    spill: Vec<Key>,
}

impl NotifyList {
    /// An empty list (no allocation).
    pub const fn new() -> Self {
        NotifyList {
            len: 0,
            inline: [0; INLINE_KEYS],
            spill: Vec::new(),
        }
    }

    /// Append a successor key.
    pub fn push(&mut self, key: Key) {
        let i = self.len as usize;
        if i < INLINE_KEYS {
            self.inline[i] = key;
        } else {
            self.spill.push(key);
        }
        self.len += 1;
    }

    /// Entry `i` (push order). Panics when out of range.
    pub fn get(&self, i: usize) -> Key {
        assert!(i < self.len as usize, "notify index {i} out of range");
        if i < INLINE_KEYS {
            self.inline[i]
        } else {
            self.spill[i - INLINE_KEYS]
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no successor has enqueued itself.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for NotifyList {
    fn default() -> Self {
        Self::new()
    }
}

/// Execution status of a task ("Visited, Computed, and Completed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Status {
    /// Created and inserted into the hash map; compute not yet done.
    Visited = 0,
    /// The `compute` function has executed.
    Computed = 1,
    /// All enqueued successors have been notified.
    Completed = 2,
}

impl Status {
    /// Decode a raw status byte; `None` if the byte holds none of the
    /// three legal values — a smashed status, which the FT scheduler
    /// surfaces as a descriptor fault rather than a spuriously finished
    /// task.
    pub fn from_u8(v: u8) -> Option<Status> {
        match v {
            0 => Some(Status::Visited),
            1 => Some(Status::Computed),
            2 => Some(Status::Completed),
            _ => None,
        }
    }
}

/// Descriptor for the **baseline** (non-fault-tolerant) scheduler.
pub struct BaseDesc {
    /// Task key.
    pub key: Key,
    /// Ordered immediate predecessors (cached at creation; `Init(A)`).
    pub preds: PredList,
    /// Join counter, initialized to `|preds)| + 1` (the +1 is consumed by
    /// the self-notification at the end of `InitAndCompute`).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successors enqueued to be notified when this task computes.
    pub notify: Mutex<NotifyList>,
}

impl BaseDesc {
    /// Create a descriptor with the given ordered predecessor list.
    pub fn new(key: Key, preds: &[Key]) -> Self {
        let join = preds.len() as i64 + 1;
        BaseDesc {
            key,
            preds: PredList::new(preds),
            join: AtomicI64::new(join),
            status: AtomicU8::new(Status::Visited as u8),
            notify: Mutex::new(NotifyList::new()),
        }
    }

    /// Current status. The baseline has no fault model, so a corrupt
    /// status byte (impossible without injection) is a panic, never a
    /// silent `Completed`.
    pub fn status(&self) -> Status {
        Status::from_u8(self.status.load(Ordering::Acquire))
            .expect("corrupt status byte — the baseline scheduler has no fault model")
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        self.status.store(s as u8, Ordering::Release);
    }
}

impl Descriptor for BaseDesc {
    fn life(&self) -> u64 {
        1
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify(&self) -> &Mutex<NotifyList> {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        BaseDesc::set_status(self, s);
    }
}

/// Descriptor for the **fault-tolerant** scheduler.
pub struct FtDesc {
    /// Task key.
    pub key: Key,
    /// Life number of this incarnation (1 = original; recovery replaces the
    /// map entry with a descriptor of life+1).
    pub life: u64,
    /// Ordered immediate predecessors.
    pub preds: PredList,
    /// Join counter (`|preds| + 1`, self-notification included).
    pub join: AtomicI64,
    /// Execution status.
    pub status: AtomicU8,
    /// Successors awaiting notification.
    pub notify: Mutex<NotifyList>,
    /// Per-predecessor (plus self) notification bits; Guarantee 3.
    pub bits: AtomicBitVec,
    /// True once a detected soft error has corrupted this descriptor.
    /// "Once an error is detected, all subsequent accesses observe it."
    pub poisoned: AtomicBool,
    /// True once a data-block version produced by this task was evicted and
    /// is again needed — the task must be re-executed as if it failed.
    pub overwritten: AtomicBool,
    /// True when this incarnation was created by `RecoverTask`.
    pub is_recovery: AtomicBool,
}

impl FtDesc {
    /// Create incarnation `life` of task `key` with the given ordered
    /// predecessor list. Join counter and bit vector cover `preds` plus the
    /// self slot.
    pub fn new(key: Key, life: u64, preds: &[Key]) -> Self {
        let n = preds.len();
        FtDesc {
            key,
            life,
            preds: PredList::new(preds),
            join: AtomicI64::new(n as i64 + 1),
            status: AtomicU8::new(Status::Visited as u8),
            notify: Mutex::new(NotifyList::new()),
            bits: AtomicBitVec::new_all_set(n + 1),
            poisoned: AtomicBool::new(false),
            overwritten: AtomicBool::new(false),
            is_recovery: AtomicBool::new(false),
        }
    }

    /// Guarded status read: a byte outside the three legal values means
    /// the descriptor was corrupted, and surfaces as a descriptor fault
    /// exactly like a poisoned flag.
    pub fn try_status(&self) -> Result<Status, Fault> {
        Status::from_u8(self.status.load(Ordering::Acquire))
            .ok_or_else(|| Fault::descriptor(self.key, self.life))
    }

    /// Store a new status.
    pub fn set_status(&self, s: Status) {
        self.status.store(s as u8, Ordering::Release);
    }

    /// Guarded access: fail if this descriptor has been corrupted. Every
    /// routine that touches the descriptor inside one of the paper's try
    /// blocks calls this first.
    pub fn check(&self) -> Result<(), Fault> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(Fault::descriptor(self.key, self.life))
        } else {
            Ok(())
        }
    }

    /// `ConvertPredKeyToIndex`: position of `pkey` in the ordered
    /// predecessor list, or the self slot when `pkey == self.key`.
    ///
    /// Returns `None` when `pkey` is not a predecessor (can happen when the
    /// predecessor list of a *new incarnation* differs — it cannot for the
    /// deterministic graphs the contract requires, so callers treat `None`
    /// as a descriptor error).
    pub fn pred_index(&self, pkey: Key) -> Option<usize> {
        if pkey == self.key {
            return Some(self.preds.len());
        }
        self.preds.iter().position(|&p| p == pkey)
    }

    /// `ResetNode` state restoration: join back to `|preds| + 1`, all bits
    /// set. (The caller then re-runs `InitAndCompute`.)
    pub fn reset_for_reexploration(&self) {
        self.join
            .store(self.preds.len() as i64 + 1, Ordering::Release);
        self.bits.set_all();
    }
}

impl Descriptor for FtDesc {
    fn life(&self) -> u64 {
        self.life
    }
    fn preds(&self) -> &[Key] {
        &self.preds
    }
    fn join(&self) -> &AtomicI64 {
        &self.join
    }
    fn notify(&self) -> &Mutex<NotifyList> {
        &self.notify
    }
    fn set_status(&self, s: Status) {
        FtDesc::set_status(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_desc_initial_state() {
        let d = BaseDesc::new(5, &[1, 2, 3]);
        assert_eq!(d.key, 5);
        assert_eq!(d.join.load(Ordering::Relaxed), 4);
        assert_eq!(d.status(), Status::Visited);
        assert!(d.notify.lock().is_empty());
    }

    #[test]
    fn ft_desc_initial_state() {
        let d = FtDesc::new(5, 1, &[1, 2]);
        assert_eq!(d.life, 1);
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.len(), 3);
        assert_eq!(d.bits.count_set(), 3);
        assert!(d.check().is_ok());
        assert!(!d.is_recovery.load(Ordering::Relaxed));
    }

    #[test]
    fn pred_list_inline_and_spilled() {
        let short = PredList::new(&[1, 2, 3, 4]);
        assert_eq!(short.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(short.len(), 4);
        let long: Vec<Key> = (0..9).collect();
        let spilled = PredList::new(&long);
        assert_eq!(spilled.as_slice(), long.as_slice());
        assert!(PredList::new(&[]).is_empty());
    }

    #[test]
    fn notify_list_inline_and_spilled() {
        let mut n = NotifyList::new();
        assert!(n.is_empty());
        for k in 0..10 {
            n.push(k);
        }
        assert_eq!(n.len(), 10);
        for k in 0..10 {
            assert_eq!(n.get(k as usize), k);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn notify_list_oob_panics() {
        let mut n = NotifyList::new();
        n.push(1);
        n.get(1);
    }

    #[test]
    fn status_ordering_matches_paper() {
        // "if (B.status < Computed)" relies on Visited < Computed < Completed.
        assert!(Status::Visited < Status::Computed);
        assert!(Status::Computed < Status::Completed);
    }

    #[test]
    fn from_u8_rejects_garbage() {
        assert_eq!(Status::from_u8(0), Some(Status::Visited));
        assert_eq!(Status::from_u8(1), Some(Status::Computed));
        assert_eq!(Status::from_u8(2), Some(Status::Completed));
        for v in 3..=255u8 {
            assert_eq!(Status::from_u8(v), None, "byte {v} must not decode");
        }
    }

    #[test]
    fn ft_corrupt_status_byte_is_a_descriptor_fault() {
        let d = FtDesc::new(7, 3, &[1]);
        assert_eq!(d.try_status().unwrap(), Status::Visited);
        d.status.store(0xAB, Ordering::Release);
        let err = d.try_status().unwrap_err();
        assert_eq!(err.source, 7);
        assert_eq!(err.life, 3);
    }

    #[test]
    #[should_panic(expected = "corrupt status byte")]
    fn base_corrupt_status_byte_panics() {
        let d = BaseDesc::new(1, &[]);
        d.status.store(0xFF, Ordering::Release);
        let _ = d.status();
    }

    #[test]
    fn pred_index_including_self() {
        let d = FtDesc::new(10, 1, &[7, 8, 9]);
        assert_eq!(d.pred_index(7), Some(0));
        assert_eq!(d.pred_index(9), Some(2));
        assert_eq!(d.pred_index(10), Some(3), "self slot is last");
        assert_eq!(d.pred_index(99), None);
    }

    #[test]
    fn pred_index_with_spilled_preds() {
        let preds: Vec<Key> = (100..108).collect();
        let d = FtDesc::new(10, 1, &preds);
        assert_eq!(d.pred_index(100), Some(0));
        assert_eq!(d.pred_index(107), Some(7));
        assert_eq!(d.pred_index(10), Some(8), "self slot is last");
        assert_eq!(d.bits.len(), 9);
    }

    #[test]
    fn check_fails_after_poison() {
        let d = FtDesc::new(3, 2, &[]);
        d.poisoned.store(true, Ordering::Release);
        let err = d.check().unwrap_err();
        assert_eq!(err.source, 3);
        assert_eq!(err.life, 2);
    }

    #[test]
    fn reset_restores_join_and_bits() {
        let d = FtDesc::new(1, 1, &[2, 3]);
        assert!(d.bits.unset(0));
        assert!(d.bits.unset(2));
        d.join.store(0, Ordering::Relaxed);
        d.reset_for_reexploration();
        assert_eq!(d.join.load(Ordering::Relaxed), 3);
        assert_eq!(d.bits.count_set(), 3);
    }

    #[test]
    fn source_task_has_join_one() {
        // A source (no preds) still needs the self-notification to fire.
        let d = FtDesc::new(0, 1, &[]);
        assert_eq!(d.join.load(Ordering::Relaxed), 1);
        assert_eq!(d.pred_index(0), Some(0));
    }
}
