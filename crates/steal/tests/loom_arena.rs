//! Loom models for the epoch arena's publish/reclaim handshake
//! (`crates/steal/src/arena.rs`):
//!
//! * racing allocators claim **disjoint** slots and each reads back its
//!   own value — the `fetch_add` partitioning plus the Release-CAS /
//!   Acquire-load chunk publication never hand two threads one slot;
//! * a handle published to another thread through an external protocol
//!   (here: an `AtomicPtr`, standing in for the task map) dereferences to
//!   the fully-written value — publication of the *chunk* cannot outrun
//!   publication of the *element*;
//! * drop-after-quiesce: the arena reclaims exactly the committed
//!   elements once the racing allocators are joined (the engine's epoch
//!   teardown), including the overflow path where a loser's speculative
//!   chunk is freed.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-steal --test loom_arena
//! ```
#![cfg(loom)]

use ft_steal::arena::Arena;
use loom::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Two allocators race on one arena: distinct slots, values intact.
#[test]
fn racing_allocs_get_disjoint_slots() {
    loom::model(|| {
        let arena = Arc::new(Arena::<u64>::new());
        let a1 = Arc::clone(&arena);
        let t = loom::thread::spawn(move || {
            let r = a1.alloc(0x1111);
            assert_eq!(*r, 0x1111);
            r.as_ptr() as usize
        });
        let mine = arena.alloc(0x2222);
        assert_eq!(*mine, 0x2222);
        let theirs = t.join().unwrap();
        assert_ne!(
            mine.as_ptr() as usize,
            theirs,
            "two claimants must never share a slot"
        );
        assert_eq!(*mine, 0x2222, "neighbor's write must not clobber ours");
    });
}

/// An `ArenaRef` handed to another thread through an acquire/release
/// pointer (the task-map stand-in) observes the complete element.
#[test]
fn published_handle_reads_initialized_value() {
    loom::model(|| {
        let arena = Arc::new(Arena::<(u64, u64)>::new());
        let mailbox = Arc::new(AtomicPtr::new(std::ptr::null_mut::<(u64, u64)>()));

        let a1 = Arc::clone(&arena);
        let m1 = Arc::clone(&mailbox);
        let producer = loom::thread::spawn(move || {
            let r = a1.alloc((7, 9));
            // ord: Release — the external publication protocol under test
            // (models the task map's insert).
            m1.store(r.as_ptr() as *mut (u64, u64), Ordering::Release);
        });

        // ord: Acquire — pairs with the producer's Release store.
        let p = mailbox.load(Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: non-null means the producer published it, the arena
            // outlives both threads (Arc), and elements are never moved.
            let v = unsafe { &*p };
            assert_eq!(*v, (7, 9), "published element must be fully written");
            assert!(arena.owns(p), "published element lives in the arena");
        }
        producer.join().unwrap();
    });
}

/// Epoch teardown: after racing allocators quiesce (join), dropping the
/// arena drops every committed element exactly once.
#[test]
fn drop_after_quiesce_reclaims_all_committed() {
    // The drop counter is bookkeeping *about* the model, not modeled
    // state, so it uses a std atomic (loom atomics cannot live in statics).
    static DROPS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    loom::model(|| {
        DROPS.store(0, std::sync::atomic::Ordering::SeqCst);

        let arena = Arc::new(Arena::<Counted>::new());
        let a1 = Arc::clone(&arena);
        let t = loom::thread::spawn(move || {
            a1.alloc(Counted(1));
        });
        arena.alloc(Counted(2));
        t.join().unwrap();
        drop(arena);
        assert_eq!(
            DROPS.load(std::sync::atomic::Ordering::SeqCst),
            2,
            "every committed element drops exactly once at epoch teardown"
        );
    });
}
