//! The baseline NABBIT scheduler — Figure 2, non-shaded portions only.
//!
//! [`BaselineScheduler`] is [`Engine<NoFt>`]: the shared traversal of
//! [`super::engine`] instantiated with a policy whose error type is
//! [`Infallible`] and whose descriptor is the FT-state-free
//! [`BaseDesc`]. After monomorphization every guard is a constant
//! `Ok(())` and every catch arm is uninhabited, so the compiled scheduler
//! contains no fault-tolerance branches or fields — the paper's "baseline
//! version includes no additional data structures or statements introduced
//! for fault tolerance".
//!
//! A compute that returns a fault panics: the baseline, like the paper's,
//! has no recovery path.

use super::engine::{Engine, FtPolicy};
use crate::fault::Fault;
use crate::graph::{Key, TaskGraph};
use crate::inject::Phase;
use crate::task::{BaseDesc, Status};
use crate::trace::Event;
use ft_steal::arena::ArenaRef;
use ft_steal::pool::Scope;
use std::convert::Infallible;
use std::sync::Arc;

/// The no-fault-tolerance policy: all guards pass, no probes, no recovery.
pub struct NoFt;

impl FtPolicy for NoFt {
    type Desc = BaseDesc;
    type Err = Infallible;

    fn make_desc(&self, graph: &dyn TaskGraph, key: Key, scratch: &mut Vec<Key>) -> BaseDesc {
        graph.predecessors_into(key, scratch);
        BaseDesc::new(key, scratch, graph.out_degree(key))
    }

    #[inline]
    fn emit(&self, _worker: Option<usize>, _event: Event) {}

    #[inline]
    fn check(_d: &BaseDesc) -> Result<(), Infallible> {
        Ok(())
    }

    #[inline]
    fn read_status(d: &BaseDesc) -> Result<Status, Infallible> {
        Ok(d.status())
    }

    #[inline]
    fn check_dependable(_b: &BaseDesc) -> Result<(), Infallible> {
        Ok(())
    }

    #[inline]
    fn consume_notification(
        _engine: &Engine<Self>,
        _a: &BaseDesc,
        _key: Key,
        _pkey: Key,
        _life: u64,
        _worker: Option<usize>,
    ) -> Result<bool, Infallible> {
        Ok(true)
    }

    #[inline]
    fn join_underflow_ok(&self) -> bool {
        false
    }

    #[inline]
    fn is_recovery_exec(_d: &BaseDesc) -> bool {
        false
    }

    #[inline]
    fn probe(
        _engine: &Engine<Self>,
        _a: &BaseDesc,
        _key: Key,
        _phase: Phase,
        _worker: Option<usize>,
    ) {
    }

    fn compute_error(_engine: &Engine<Self>, f: Fault) -> Infallible {
        panic!("baseline scheduler has no recovery path: {f}")
    }

    fn on_guard_fault(
        _engine: &Arc<Engine<Self>>,
        _s: &Scope<'_>,
        f: Infallible,
        _key: Key,
        _life: u64,
    ) {
        match f {}
    }

    fn on_compute_fault(
        _engine: &Arc<Engine<Self>>,
        _s: &Scope<'_>,
        _a: ArenaRef<BaseDesc>,
        _key: Key,
        _life: u64,
        f: Infallible,
    ) {
        match f {}
    }
}

/// The non-fault-tolerant NABBIT scheduler.
pub type BaselineScheduler = Engine<NoFt>;

impl Engine<NoFt> {
    /// Create a scheduler for `graph`. One scheduler instance = one run.
    pub fn new(graph: Arc<dyn TaskGraph>) -> Arc<Self> {
        Engine::with_policy(graph, NoFt)
    }

    /// Baseline scheduler with explicit scheduling options (priority pop
    /// order, deadline monitor) — the fault-free comparison point for the
    /// priority experiments.
    pub fn with_opts(graph: Arc<dyn TaskGraph>, opts: super::SchedOpts) -> Arc<Self> {
        Engine::with_policy_opts(graph, NoFt, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ComputeCtx;
    use crate::metrics::RunReport;
    use ft_steal::pool::{Pool, PoolConfig};
    use ft_sync::atomic::{AtomicU64, Ordering};
    use parking_lot::Mutex;
    use std::collections::HashSet;

    /// A 2-D wavefront grid graph: (i,j) depends on (i-1,j) and (i,j-1);
    /// sink is (n-1, n-1); key = i*n + j.
    struct Grid {
        n: i64,
        computed: Mutex<Vec<Key>>,
    }

    impl Grid {
        fn new(n: i64) -> Self {
            Grid {
                n,
                computed: Mutex::new(Vec::new()),
            }
        }
    }

    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut su = Vec::new();
            if i + 1 < self.n {
                su.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                su.push(i * self.n + (j + 1));
            }
            su
        }
        fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            self.computed.lock().push(k);
            Ok(())
        }
    }

    fn run_grid(n: i64, threads: usize) -> (Arc<Grid>, RunReport) {
        let g = Arc::new(Grid::new(n));
        let pool = Pool::new(PoolConfig::with_threads(threads));
        let sched = BaselineScheduler::new(Arc::clone(&g) as Arc<dyn TaskGraph>);
        let report = sched.run(&pool);
        (g, report)
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let (g, report) = run_grid(16, 4);
        let order = g.computed.lock();
        assert_eq!(order.len(), 256);
        let unique: HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 256, "no task executed twice");
        assert!(report.sink_completed);
        assert_eq!(report.computes, 256);
        assert_eq!(report.re_executions, 0);
    }

    #[test]
    fn respects_dependence_order() {
        let (g, _) = run_grid(8, 4);
        let order = g.computed.lock();
        let pos: std::collections::HashMap<Key, usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for &k in order.iter() {
            for p in g.predecessors(k) {
                assert!(pos[&p] < pos[&k], "pred {p} must precede {k}");
            }
        }
    }

    #[test]
    fn single_task_graph() {
        struct One(AtomicU64);
        impl TaskGraph for One {
            fn sink(&self) -> Key {
                0
            }
            fn predecessors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn successors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
        let g = Arc::new(One(AtomicU64::new(0)));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let sched = BaselineScheduler::new(Arc::clone(&g) as _);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(g.0.load(Ordering::Relaxed), 1);
        assert_eq!(sched.tasks_created(), 1);
    }

    #[test]
    fn chain_graph_sequential_dependences() {
        struct Chain {
            len: i64,
            acc: AtomicU64,
        }
        impl TaskGraph for Chain {
            fn sink(&self) -> Key {
                self.len - 1
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                if k == 0 {
                    vec![]
                } else {
                    vec![k - 1]
                }
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                if k == self.len - 1 {
                    vec![]
                } else {
                    vec![k + 1]
                }
            }
            fn compute(&self, k: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                // Monotone check: k-th task sees exactly k prior computes.
                let prev = self.acc.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, k as u64, "chain executed out of order");
                Ok(())
            }
        }
        let g = Arc::new(Chain {
            len: 200,
            acc: AtomicU64::new(0),
        });
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 200);
    }

    #[test]
    fn wide_fanin_graph() {
        // Sink depends on 500 sources: stresses the notify array and the
        // join counter contention path.
        struct Fan {
            width: i64,
        }
        impl TaskGraph for Fan {
            fn sink(&self) -> Key {
                self.width
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                if k == self.width {
                    (0..self.width).collect()
                } else {
                    vec![]
                }
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                if k == self.width {
                    vec![]
                } else {
                    vec![self.width]
                }
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                Ok(())
            }
        }
        let g = Arc::new(Fan { width: 500 });
        let pool = Pool::new(PoolConfig::with_threads(8));
        let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 501);
    }

    #[test]
    fn repeated_runs_fresh_scheduler() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        for _ in 0..3 {
            let g = Arc::new(Grid::new(10));
            let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
            assert!(report.sink_completed);
            assert_eq!(report.computes, 100);
        }
    }
}
