//! Bad fixture for L4: uses atomics but is not claimed in the
//! loom-coverage manifest the test supplies.

use ft_sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::SeqCst);
}
