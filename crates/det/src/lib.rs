//! `ft-det` — deterministic single-threaded schedule exploration.
//!
//! The multithreaded [`ft_steal::pool::Pool`] executes a task-graph run
//! under whatever interleaving the OS scheduler happens to produce, so a
//! concurrency bug may show up once in ten thousand runs and never again.
//! [`DetPool`] implements the same [`Executor`]/[`SpawnHost`] surface but
//! runs every job on the calling thread, choosing the **next ready job
//! uniformly at random with a seeded xorshift PRNG**. Each seed is one
//! total order of the spawned jobs — one simulated interleaving — and the
//! same `(graph, fault plan, seed)` triple replays the identical schedule
//! every time.
//!
//! The FT scheduler runs on it unmodified:
//!
//! ```
//! use ft_det::DetPool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = DetPool::new(42);
//! let hits = Arc::new(AtomicUsize::new(0));
//! let h = Arc::clone(&hits);
//! pool.run_until_complete(move |scope| {
//!     for _ in 0..10 {
//!         let h = Arc::clone(&h);
//!         scope.spawn(move |_| {
//!             h.fetch_add(1, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 10);
//! ```
//!
//! Caveat: `DetPool` explores *schedule* nondeterminism (which ready job
//! runs next), not *memory-model* nondeterminism (reorderings below
//! sequential consistency). The loom models in `ft-steal` cover the latter
//! for the deque and latch primitives.

#![warn(missing_docs)]

use ft_steal::instance::{instance_root, InstanceHandle, QuiesceHook};
use ft_steal::pool::{Executor, Job, Scope, SpawnHost};
use ft_steal::priority::Priority;
use ft_steal::rng::XorShift64Star;
use std::any::Any;
use std::cell::{Cell, RefCell};

/// A deterministic, single-threaded executor with a seeded random schedule.
///
/// All spawned jobs go into one ready list; the drain loop repeatedly picks
/// a uniformly random element (via `swap_remove`, so selection is O(1)) and
/// runs it to completion before picking the next. Because a job only ever
/// becomes ready by an explicit `spawn`, every dependence the scheduler
/// encodes through spawning is respected, while every allowed reordering of
/// ready jobs is reachable under some seed.
pub struct DetPool {
    seed: u64,
    queue: RefCell<Vec<Job>>,
    /// High-priority ready list: drained (still in seeded-random order)
    /// before any job in `queue` is considered. Models the real pool's
    /// priority pop order deterministically.
    hot: RefCell<Vec<Job>>,
    rng: RefCell<XorShift64Star>,
    /// First panic payload from a job; re-raised when the queue drains.
    panic: RefCell<Option<Box<dyn Any + Send>>>,
    /// Jobs executed across all runs on this pool (diagnostics).
    executed: Cell<u64>,
    /// True while the drain loop is running (jobs see `worker_index() == 0`).
    draining: Cell<bool>,
}

impl DetPool {
    /// Create a pool whose schedule is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        DetPool {
            seed,
            queue: RefCell::new(Vec::new()),
            hot: RefCell::new(Vec::new()),
            rng: RefCell::new(XorShift64Star::new(seed)),
            panic: RefCell::new(None),
            executed: Cell::new(0),
            draining: Cell::new(false),
        }
    }

    /// The seed this pool was built with (for failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total jobs executed on this pool so far.
    pub fn jobs_executed(&self) -> u64 {
        self.executed.get()
    }

    /// Run `f` (which spawns the root work) and drain every transitively
    /// spawned job in seeded-random order. Mirrors
    /// [`ft_steal::pool::Pool::run_until_complete`]: if any job panicked,
    /// the remaining jobs still run and the first payload is re-raised here.
    pub fn run_until_complete<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_>),
    {
        let scope = Scope::for_host(self);
        f(&scope);
        self.drain(&scope);
        if let Some(payload) = self.panic.borrow_mut().take() {
            std::panic::resume_unwind(payload);
        }
    }

    fn drain(&self, scope: &Scope<'_>) {
        self.draining.set(true);
        loop {
            // Pick-and-pop inside a short borrow so jobs can spawn freely.
            // Hot jobs strictly first (mirrors the real pool's acquisition
            // order); within a lane the seeded RNG picks uniformly, so the
            // whole schedule is still a pure function of the seed.
            let job = {
                let mut hot = self.hot.borrow_mut();
                if hot.is_empty() {
                    drop(hot);
                    let mut q = self.queue.borrow_mut();
                    if q.is_empty() {
                        break;
                    }
                    let idx = self.rng.borrow_mut().next_below(q.len());
                    q.swap_remove(idx)
                } else {
                    let idx = self.rng.borrow_mut().next_below(hot.len());
                    hot.swap_remove(idx)
                }
            };
            self.executed.set(self.executed.get() + 1);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                job.run(scope);
            }));
            if let Err(payload) = result {
                let mut slot = self.panic.borrow_mut();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        self.draining.set(false);
    }
}

impl SpawnHost for DetPool {
    fn spawn_job(&self, job: Job) {
        self.queue.borrow_mut().push(job);
    }

    fn spawn_job_with(&self, job: Job, prio: Priority) {
        match prio {
            Priority::High => self.hot.borrow_mut().push(job),
            Priority::Normal => self.queue.borrow_mut().push(job),
        }
    }

    fn num_threads(&self) -> usize {
        1
    }

    fn worker_index(&self) -> Option<usize> {
        if self.draining.get() {
            Some(0)
        } else {
            None
        }
    }
}

impl Executor for DetPool {
    fn execute_job(&self, root: Job) {
        self.run_until_complete(|scope| root.run(scope));
    }

    fn num_threads(&self) -> usize {
        1
    }

    /// Enqueue an instance root **without draining**: submissions
    /// accumulate, and a later [`Executor::drive`] interleaves the jobs of
    /// every pending instance through the one seeded RNG. The same seed
    /// plus the same submission sequence therefore replays the identical
    /// cross-instance schedule — the property the concurrent-submission
    /// oracle campaigns rely on.
    fn submit_instance(&self, root: Job, on_quiesce: Option<QuiesceHook>) -> InstanceHandle {
        let (job, handle) = instance_root(root, on_quiesce);
        self.queue.borrow_mut().push(job);
        handle
    }

    fn queued_jobs(&self) -> u64 {
        (self.queue.borrow().len() + self.hot.borrow().len()) as u64
    }

    /// Drain every pending job (all submitted instances interleaved) in
    /// seeded-random order on the calling thread. Instance panics stay in
    /// their handles; panics of plain `spawn`ed jobs are re-raised here
    /// like in [`DetPool::run_until_complete`].
    fn drive(&self) {
        let scope = Scope::for_host(self);
        self.drain(&scope);
        if let Some(payload) = self.panic.borrow_mut().take() {
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::{AtomicU64, Ordering};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Record the order in which numbered jobs run under `seed`.
    fn order_for(seed: u64, n: usize) -> Vec<usize> {
        let pool = DetPool::new(seed);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        pool.run_until_complete(move |scope: &Scope<'_>| {
            for i in 0..n {
                let o = Arc::clone(&o);
                scope.spawn(move |_| o.lock().push(i));
            }
        });
        Arc::try_unwrap(order).unwrap().into_inner()
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(order_for(7, 50), order_for(7, 50));
        assert_eq!(order_for(123, 50), order_for(123, 50));
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let distinct: std::collections::HashSet<Vec<usize>> =
            (0..16).map(|s| order_for(s, 20)).collect();
        assert!(
            distinct.len() > 8,
            "16 seeds produced only {} schedules",
            distinct.len()
        );
    }

    #[test]
    fn schedule_is_a_permutation() {
        let order = order_for(99, 100);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn hot_jobs_drain_before_normal_ones_deterministically() {
        for seed in 0..8u64 {
            let pool = DetPool::new(seed);
            let order = Arc::new(Mutex::new(Vec::new()));
            let o = Arc::clone(&order);
            pool.run_until_complete(move |scope: &Scope<'_>| {
                for i in 0..6usize {
                    let o = Arc::clone(&o);
                    scope.spawn(move |_| o.lock().push(("normal", i)));
                }
                for i in 0..6usize {
                    let o = Arc::clone(&o);
                    scope.spawn_with(Priority::High, move |_| o.lock().push(("hot", i)));
                }
            });
            let got = Arc::try_unwrap(order).unwrap().into_inner();
            assert!(
                got[..6].iter().all(|&(lane, _)| lane == "hot"),
                "seed {seed}: hot lane must drain first, got {got:?}"
            );
        }
        // Replays are still identical per seed with mixed priorities.
        let run = |seed: u64| -> Vec<(u8, usize)> {
            let pool = DetPool::new(seed);
            let order = Arc::new(Mutex::new(Vec::new()));
            let o = Arc::clone(&order);
            pool.run_until_complete(move |scope: &Scope<'_>| {
                for i in 0..10usize {
                    let o = Arc::clone(&o);
                    let prio = if i % 3 == 0 {
                        Priority::High
                    } else {
                        Priority::Normal
                    };
                    scope.spawn_with(prio, move |_| o.lock().push((prio as u8, i)));
                }
            });
            Arc::try_unwrap(order).unwrap().into_inner()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn recursive_spawning_quiesces() {
        let pool = DetPool::new(1);
        let count = Arc::new(AtomicU64::new(0));
        fn fanout(scope: &Scope<'_>, depth: usize, count: Arc<AtomicU64>) {
            count.fetch_add(1, Ordering::Relaxed);
            if depth > 0 {
                for _ in 0..2 {
                    let c = Arc::clone(&count);
                    scope.spawn(move |s| fanout(s, depth - 1, c));
                }
            }
        }
        let c = Arc::clone(&count);
        pool.run_until_complete(move |scope: &Scope<'_>| {
            scope.spawn(move |s| fanout(s, 10, c));
        });
        assert_eq!(count.load(Ordering::Relaxed), 2047);
        assert_eq!(pool.jobs_executed(), 2047);
    }

    #[test]
    fn worker_index_inside_jobs_only() {
        let pool = DetPool::new(5);
        pool.run_until_complete(|scope: &Scope<'_>| {
            assert_eq!(scope.worker_index(), None, "submitter is not a worker");
            assert_eq!(scope.num_threads(), 1);
            scope.spawn(|s| {
                assert_eq!(s.worker_index(), Some(0));
            });
        });
    }

    #[test]
    fn panic_propagates_after_drain() {
        let pool = DetPool::new(3);
        let ran = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&ran);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_until_complete(move |scope: &Scope<'_>| {
                scope.spawn(|_| panic!("boom"));
                for _ in 0..10 {
                    let r = Arc::clone(&r);
                    scope.spawn(move |_| {
                        r.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // Like the multithreaded pool, remaining jobs still ran.
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        // Pool is reusable afterwards.
        pool.run_until_complete(|scope: &Scope<'_>| {
            scope.spawn(|_| {});
        });
    }
}
