//! Trace-based guarantee oracle.
//!
//! Validates a recorded [`Trace`](super::Trace) against the six Section-IV
//! guarantees of the fault-tolerant scheduler, plus consistency between the
//! trace and the run's [`RunReport`]. The oracle replays the event log in
//! emission order and reconstructs what the scheduler's shared state *must*
//! have looked like; any divergence is reported as a [`Violation`].
//!
//! Per-guarantee checks (see `docs/ALGORITHM.md` for the guarantee text):
//!
//! * **G1 — each failure recovered at most once.** No duplicate
//!   `RecoveryStarted { key, new_life }`: one recovery per incarnation.
//! * **G2 — a recovered task is replaced by a fresh incarnation.** Life
//!   numbers per key increase strictly 1, 2, 3, …: every `RecoveryStarted`
//!   carries `new_life == current_max + 1`, and no event references a life
//!   the task never had.
//! * **G3 — notifications decrement the join counter exactly once.**
//!   `Notified { key, life, pred }` is unique per (task, incarnation,
//!   predecessor) within a reset epoch; repeats must surface as
//!   `DuplicateNotify`. In [`strict`](OracleMode::Strict) mode the oracle
//!   additionally requires that a `Computed { key, life }` is preceded by
//!   exactly `indegree + 1` notifications of that incarnation (the `+1` is
//!   the self-edge consumed at the end of `InitAndCompute`).
//! * **G4 — the notify array is reconstructed on recovery.** Consequence
//!   checked: in a run whose sink completed, every inserted task reaches
//!   `Completed` at its final incarnation, and every `Completed` has a
//!   matching earlier `Computed` of the same incarnation. Conversely, a run
//!   that *quiesced without completing its sink* lost a notification
//!   somewhere (tasks stranded mid-graph) and is flagged outright — this is
//!   the symptom a dropped notify-cell publish produces (PR 9).
//! * **G5 — a task whose input failed is reset and re-explored.** Every
//!   `Reset { key, … }` is preceded by a `FaultObserved` whose source is
//!   *another* task (the failed input).
//! * **G6 — failures during recovery are recovered.** Every
//!   `FaultObserved { source }` is followed by `RecoveryStarted` or
//!   `RecoverySuppressed` for that source, and every injected
//!   before/after-compute fault leads to at least one recovery of its task.
//!
//! Report cross-checks tie the counters to the event log: `computes` ==
//! #`Computed`, `recoveries` == #`RecoveryStarted`, `notifications` ==
//! #`Notified`, and so on — a scheduler that, say, silently skips the
//! bit-vector test changes these invariants and is caught.
//!
//! On failure, [`FailureReport`] serializes the offending run — seed, fault
//! plan, violations, and the full trace — as JSON so the exact interleaving
//! can be replayed from `(graph, fault plan, seed)`.

use super::{Event, TimedEvent};
use crate::graph::{Key, TaskGraph};
use crate::inject::{FaultSite, Phase};
use crate::metrics::RunReport;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How strictly to interpret the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// The trace came from the deterministic executor (`ft-det`): event
    /// emission order is the real execution order, so exact counting
    /// checks apply (e.g. a compute sees exactly `indegree + 1` prior
    /// notifications).
    Strict,
    /// The trace came from the multithreaded pool: emission order is a
    /// linearization that may interleave independent critical sections, so
    /// checks that depend on cross-thread ordering of *independent* events
    /// are relaxed. All uniqueness, pairing, and report checks still apply.
    Concurrent,
}

/// One guarantee violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which check failed: "G1".."G6", "order", or "report".
    pub guarantee: &'static str,
    /// Human-readable description with the offending keys/lives.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.guarantee, self.message)
    }
}

/// Validate `events` (in emission order) against the six guarantees and
/// the run report. Returns every violation found (empty = trace passes).
pub fn check_trace(
    graph: &dyn TaskGraph,
    events: &[TimedEvent],
    report: &RunReport,
    mode: OracleMode,
) -> Vec<Violation> {
    let mut v: Vec<Violation> = Vec::new();
    let mut push = |guarantee: &'static str, message: String| {
        v.push(Violation { guarantee, message });
    };

    // Reconstructed state, keyed by task.
    let mut max_life: HashMap<Key, u64> = HashMap::new();
    let mut inserted: HashSet<Key> = HashSet::new();
    // G1: recoveries seen per (key, new_life).
    let mut recoveries_seen: HashSet<(Key, u64)> = HashSet::new();
    // G3: notifications seen per (key, life) in the current reset epoch.
    let mut notified: HashMap<(Key, u64), HashSet<Key>> = HashMap::new();
    // Computed/Completed incarnations.
    let mut computed: HashSet<(Key, u64)> = HashSet::new();
    let mut completed: HashSet<(Key, u64)> = HashSet::new();
    // G5/G6 bookkeeping.
    let mut observed_sources: Vec<(u64, Key)> = Vec::new(); // (seq, source) awaiting recovery/suppression
    let mut recovery_event_seqs: HashMap<Key, Vec<u64>> = HashMap::new(); // Started or Suppressed
                                                                          // Counters for report cross-checks.
    let mut n_computed = 0u64;
    let mut n_completed = 0u64;
    let mut n_notified = 0u64;
    let mut n_duplicate = 0u64;
    let mut n_injected = 0u64;
    let mut n_recov_started = 0u64;
    let mut n_recov_suppressed = 0u64;
    let mut n_reset = 0u64;
    let mut injected_eager: HashMap<Key, u64> = HashMap::new(); // before/after-compute fires per key
    let mut recoveries_per_key: HashMap<Key, u64> = HashMap::new();
    let mut computed_keys: HashSet<Key> = HashSet::new();

    for (i, te) in events.iter().enumerate() {
        if i > 0 && events[i - 1].seq >= te.seq {
            push(
                "order",
                format!("event #{i} has non-increasing seq {}", te.seq),
            );
        }
        match te.event {
            Event::Inserted { key } => {
                if !inserted.insert(key) {
                    push("order", format!("task {key} inserted twice"));
                }
                max_life.entry(key).or_insert(1);
            }
            Event::Notified { key, life, pred } => {
                n_notified += 1;
                // Life-vs-max-life checks are Strict-only: on a multithreaded
                // pool, a successor can observe (and notify) a recovered
                // incarnation between `replace_task`'s map CAS and the
                // recovering thread's `RecoveryStarted` emission, so the
                // trace can legally show `life > ml` transiently.
                let ml = *max_life.get(&key).unwrap_or(&0);
                if mode == OracleMode::Strict && (life == 0 || life > ml) {
                    push(
                        "G2",
                        format!("notification of {key} at life {life}, but max life is {ml}"),
                    );
                }
                let set = notified.entry((key, life)).or_default();
                if !set.insert(pred) {
                    push(
                        "G3",
                        format!(
                            "duplicate notification of {key} (life {life}) from pred {pred} \
                             decremented the join counter twice"
                        ),
                    );
                }
            }
            Event::DuplicateNotify { key, life, pred } => {
                n_duplicate += 1;
                // Absorbed duplicates are the mechanism working as intended;
                // nothing to check beyond the life being plausible.
                let ml = *max_life.get(&key).unwrap_or(&0);
                if mode == OracleMode::Strict && (life == 0 || life > ml) {
                    push(
                        "G2",
                        format!(
                            "duplicate notify of {key} from {pred} at life {life}, max is {ml}"
                        ),
                    );
                }
            }
            Event::Computed { key, life } => {
                n_computed += 1;
                computed_keys.insert(key);
                let ml = *max_life.get(&key).unwrap_or(&0);
                if mode == OracleMode::Strict && (life == 0 || life > ml) {
                    push(
                        "G2",
                        format!("compute of {key} at life {life}, but max life is {ml}"),
                    );
                }
                if !computed.insert((key, life)) {
                    // A second compute of the same incarnation is only
                    // legal after a ResetNode re-exploration, which clears
                    // the per-epoch notification set below.
                    push(
                        "G3",
                        format!("task {key} computed twice at life {life} without a reset"),
                    );
                }
                if mode == OracleMode::Strict {
                    let need = graph.predecessors(key).len() + 1;
                    let got = notified.get(&(key, life)).map_or(0, |s| s.len());
                    if got != need {
                        push(
                            "G3",
                            format!(
                                "task {key} (life {life}) computed after {got} notifications; \
                                 expected indegree+1 = {need}"
                            ),
                        );
                    }
                }
            }
            Event::Completed { key, life } => {
                n_completed += 1;
                if !computed.contains(&(key, life)) {
                    push(
                        "G4",
                        format!("task {key} completed at life {life} without computing"),
                    );
                }
                completed.insert((key, life));
            }
            Event::Injected { key, phase } => {
                n_injected += 1;
                if phase != Phase::AfterNotify {
                    *injected_eager.entry(key).or_insert(0) += 1;
                }
            }
            Event::FaultObserved { source, .. } => {
                observed_sources.push((te.seq, source));
            }
            Event::RecoveryStarted { key, new_life } => {
                n_recov_started += 1;
                *recoveries_per_key.entry(key).or_insert(0) += 1;
                recovery_event_seqs.entry(key).or_default().push(te.seq);
                if !recoveries_seen.insert((key, new_life)) {
                    push(
                        "G1",
                        format!("task {key} recovered twice to the same life {new_life}"),
                    );
                }
                let ml = max_life.entry(key).or_insert(1);
                // Strict-only for the same reason as above: concurrent
                // emission can reorder two RecoveryStarted events of
                // adjacent lives (the CAS order is authoritative, the
                // emission order is not).
                if mode == OracleMode::Strict && new_life != *ml + 1 {
                    push(
                        "G2",
                        format!(
                            "recovery of {key} produced life {new_life}; expected a fresh \
                             incarnation with life {}",
                            *ml + 1
                        ),
                    );
                }
                *ml = (*ml).max(new_life);
            }
            Event::RecoverySuppressed { key, .. } => {
                n_recov_suppressed += 1;
                recovery_event_seqs.entry(key).or_default().push(te.seq);
            }
            Event::Reset { key, life } => {
                n_reset += 1;
                // G5: a reset must be caused by an observed fault in some
                // *other* task (the failed input).
                let caused = events[..i].iter().any(
                    |p| matches!(p.event, Event::FaultObserved { source, .. } if source != key),
                );
                if !caused {
                    push(
                        "G5",
                        format!(
                            "task {key} (life {life}) was reset with no prior fault observed \
                             in another task"
                        ),
                    );
                }
                // New epoch: the incarnation's bits and join counter were
                // restored, so the same predecessors may notify again.
                notified.remove(&(key, life));
                computed.remove(&(key, life));
            }
        }
    }

    // G6: every observed fault is followed by a recovery action for its
    // source (started or suppressed — both mean the failure was handled).
    for (seq, source) in &observed_sources {
        let handled = recovery_event_seqs
            .get(source)
            .is_some_and(|seqs| seqs.iter().any(|&s| s > *seq));
        if !handled {
            push(
                "G6",
                format!(
                    "fault in task {source} observed at seq {seq} but never recovered \
                     or suppressed afterwards"
                ),
            );
        }
    }
    // G6: eagerly-observed injections (before/after compute) always cause
    // at least one recovery of their task.
    for (key, fires) in &injected_eager {
        let recs = recoveries_per_key.get(key).copied().unwrap_or(0);
        if recs < *fires {
            push(
                "G6",
                format!(
                    "task {key} had {fires} eagerly-observed injected fault(s) but only \
                     {recs} recover(ies)"
                ),
            );
        }
    }

    // G4 consequence: in a successful run, every inserted task finished at
    // its final incarnation.
    if report.sink_completed {
        for &key in &inserted {
            let ml = *max_life.get(&key).unwrap_or(&1);
            if !completed.contains(&(key, ml)) {
                push(
                    "G4",
                    format!(
                        "run completed but task {key} never completed its final \
                         incarnation (life {ml})"
                    ),
                );
            }
        }
        let sink = graph.sink();
        if !inserted.contains(&sink) {
            push("report", format!("sink {sink} never inserted"));
        }
    } else {
        // The run returned (the pool quiesced: no task left running, no
        // pending work) yet the sink never completed. Some notification
        // was lost — the exact failure a broken notify-cell publish
        // produces (PR 9) — or the graph wedged some other way. A
        // correctly reconstructed notify array (G4) makes this impossible.
        push(
            "G4",
            format!(
                "run quiesced but sink {} never completed: a notification \
                 was lost (tasks stranded mid-graph)",
                graph.sink()
            ),
        );
    }

    // Report cross-checks: counters must equal what the trace shows.
    let mut cross = |name: &str, reported: u64, traced: u64| {
        if reported != traced {
            push(
                "report",
                format!("report.{name} = {reported} but the trace shows {traced}"),
            );
        }
    };
    cross("computes", report.computes, n_computed);
    cross("recoveries", report.recoveries, n_recov_started);
    cross(
        "recoveries_suppressed",
        report.recoveries_suppressed,
        n_recov_suppressed,
    );
    cross("resets", report.resets, n_reset);
    cross("notifications", report.notifications, n_notified);
    cross(
        "duplicate_notifications",
        report.duplicate_notifications,
        n_duplicate,
    );
    cross("injected", report.injected, n_injected);
    cross(
        "distinct_tasks_executed",
        report.distinct_tasks_executed,
        computed_keys.len() as u64,
    );
    if n_completed > n_computed {
        push(
            "report",
            format!("{n_completed} completions exceed {n_computed} computes"),
        );
    }

    v
}

/// Compare per-key results of an FT run against the sequential reference
/// (Theorem 1: same result with and without faults). `ft` and `reference`
/// look up the value each execution produced for a key.
pub fn check_result_equivalence<F, G>(keys: &[Key], ft: F, reference: G) -> Vec<Violation>
where
    F: Fn(Key) -> Option<u64>,
    G: Fn(Key) -> Option<u64>,
{
    let mut v = Vec::new();
    for &k in keys {
        let a = ft(k);
        let b = reference(k);
        if a != b {
            v.push(Violation {
                guarantee: "result",
                message: format!("task {k}: ft run produced {a:?}, reference produced {b:?}"),
            });
        }
    }
    v
}

/// Everything needed to reproduce and debug a failed oracle check:
/// `(graph label, fault plan, seed)` replays the schedule; the violations
/// and full trace say what went wrong.
pub struct FailureReport<'a> {
    /// Short description of the graph (shape parameters, generator seed).
    pub label: String,
    /// The `DetPool` schedule seed.
    pub seed: u64,
    /// The fault plan's sites with original budgets.
    pub sites: &'a [FaultSite],
    /// Violations found by the oracle.
    pub violations: &'a [Violation],
    /// Full event log.
    pub events: &'a [TimedEvent],
}

impl FailureReport<'_> {
    /// Serialize as JSON (hand-rolled; the workspace builds offline
    /// without serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"label\": {},\n", json_string(&self.label)));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"fault_plan\": [\n");
        let sites: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                format!(
                    "    {{\"key\": {}, \"phase\": \"{:?}\", \"fires\": {}}}",
                    s.key, s.phase, s.fires
                )
            })
            .collect();
        out.push_str(&sites.join(",\n"));
        out.push_str("\n  ],\n  \"violations\": [\n");
        let viols: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"guarantee\": {}, \"message\": {}}}",
                    json_string(v.guarantee),
                    json_string(&v.message)
                )
            })
            .collect();
        out.push_str(&viols.join(",\n"));
        out.push_str("\n  ],\n  \"trace\": [\n");
        let evs: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "    {{\"seq\": {}, \"t_ns\": {}, \"event\": {}}}",
                    e.seq,
                    e.t_ns,
                    json_string(&format!("{:?}", e.event))
                )
            })
            .collect();
        out.push_str(&evs.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the report under `dir` as `<label>-seed<seed>.json`; returns
    /// the path. `dir` is created if missing.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe: String = self
            .label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("{safe}-seed{}.json", self.seed));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::metrics::RunMetrics;

    /// 0 -> 1 chain.
    struct Chain;
    impl TaskGraph for Chain {
        fn sink(&self) -> Key {
            1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            if k == 1 {
                vec![0]
            } else {
                vec![]
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            if k == 0 {
                vec![1]
            } else {
                vec![]
            }
        }
        fn compute(
            &self,
            _: Key,
            _: &crate::graph::ComputeCtx<'_>,
        ) -> Result<(), crate::fault::Fault> {
            Ok(())
        }
    }

    fn ev(seq: u64, event: Event) -> TimedEvent {
        TimedEvent {
            seq,
            t_ns: seq,
            event,
        }
    }

    /// A minimal clean fault-free trace of the 0 -> 1 chain.
    fn clean_chain_trace() -> Vec<TimedEvent> {
        vec![
            ev(0, Event::Inserted { key: 1 }),
            ev(1, Event::Inserted { key: 0 }),
            ev(
                2,
                Event::Notified {
                    key: 0,
                    life: 1,
                    pred: 0,
                },
            ),
            ev(3, Event::Computed { key: 0, life: 1 }),
            ev(4, Event::Completed { key: 0, life: 1 }),
            ev(
                5,
                Event::Notified {
                    key: 1,
                    life: 1,
                    pred: 0,
                },
            ),
            ev(
                6,
                Event::Notified {
                    key: 1,
                    life: 1,
                    pred: 1,
                },
            ),
            ev(7, Event::Computed { key: 1, life: 1 }),
            ev(8, Event::Completed { key: 1, life: 1 }),
        ]
    }

    fn matching_report() -> RunReport {
        let m = RunMetrics::new();
        m.record_compute(0);
        m.record_compute(1);
        for _ in 0..3 {
            m.notifications.add(None);
        }
        let mut r = m.snapshot();
        r.sink_completed = true;
        r
    }

    #[test]
    fn clean_trace_passes() {
        let v = check_trace(
            &Chain,
            &clean_chain_trace(),
            &matching_report(),
            OracleMode::Strict,
        );
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn duplicate_decrement_is_g3() {
        let mut t = clean_chain_trace();
        // Same (key, life, pred) notified twice — the bit vector failed.
        t.insert(
            6,
            ev(
                5,
                Event::Notified {
                    key: 1,
                    life: 1,
                    pred: 0,
                },
            ),
        );
        let mut r = matching_report();
        r.notifications += 1;
        let v = check_trace(&Chain, &t, &r, OracleMode::Concurrent);
        assert!(v.iter().any(|v| v.guarantee == "G3"), "got {v:?}");
    }

    #[test]
    fn compute_with_missing_notification_is_g3_strict() {
        let t = vec![
            ev(0, Event::Inserted { key: 1 }),
            ev(1, Event::Inserted { key: 0 }),
            ev(
                2,
                Event::Notified {
                    key: 0,
                    life: 1,
                    pred: 0,
                },
            ),
            ev(3, Event::Computed { key: 0, life: 1 }),
            ev(4, Event::Completed { key: 0, life: 1 }),
            // Sink computes after only one of its two required notifies.
            ev(
                5,
                Event::Notified {
                    key: 1,
                    life: 1,
                    pred: 0,
                },
            ),
            ev(6, Event::Computed { key: 1, life: 1 }),
            ev(7, Event::Completed { key: 1, life: 1 }),
        ];
        let mut r = matching_report();
        r.notifications = 2;
        let v = check_trace(&Chain, &t, &r, OracleMode::Strict);
        assert!(v.iter().any(|v| v.guarantee == "G3"), "got {v:?}");
    }

    #[test]
    fn double_recovery_same_life_is_g1() {
        let mut t = clean_chain_trace();
        t.push(ev(
            9,
            Event::FaultObserved {
                source: 0,
                kind: FaultKind::Descriptor,
            },
        ));
        t.push(ev(
            10,
            Event::RecoveryStarted {
                key: 0,
                new_life: 2,
            },
        ));
        t.push(ev(
            11,
            Event::RecoveryStarted {
                key: 0,
                new_life: 2,
            },
        ));
        let mut r = matching_report();
        r.recoveries = 2;
        let v = check_trace(&Chain, &t, &r, OracleMode::Concurrent);
        assert!(v.iter().any(|v| v.guarantee == "G1"), "got {v:?}");
    }

    #[test]
    fn stale_incarnation_recovery_is_g2() {
        let mut t = clean_chain_trace();
        t.push(ev(
            9,
            Event::FaultObserved {
                source: 0,
                kind: FaultKind::Descriptor,
            },
        ));
        // Skips life 2: not a fresh incarnation. (Strict-only: emission
        // order around replace_task is not authoritative on a pool.)
        t.push(ev(
            10,
            Event::RecoveryStarted {
                key: 0,
                new_life: 3,
            },
        ));
        let mut r = matching_report();
        r.recoveries = 1;
        let v = check_trace(&Chain, &t, &r, OracleMode::Strict);
        assert!(v.iter().any(|v| v.guarantee == "G2"), "got {v:?}");
    }

    #[test]
    fn unexplained_reset_is_g5() {
        let mut t = clean_chain_trace();
        t.push(ev(9, Event::Reset { key: 1, life: 1 }));
        let mut r = matching_report();
        r.resets = 1;
        let v = check_trace(&Chain, &t, &r, OracleMode::Concurrent);
        assert!(v.iter().any(|v| v.guarantee == "G5"), "got {v:?}");
    }

    #[test]
    fn unhandled_fault_is_g6() {
        let mut t = clean_chain_trace();
        t.push(ev(
            9,
            Event::FaultObserved {
                source: 0,
                kind: FaultKind::Data,
            },
        ));
        let v = check_trace(&Chain, &t, &matching_report(), OracleMode::Concurrent);
        assert!(v.iter().any(|v| v.guarantee == "G6"), "got {v:?}");
    }

    #[test]
    fn quiesced_incomplete_run_is_g4() {
        // The trace itself is internally consistent, but the run returned
        // without completing the sink: a notification was lost.
        let mut r = matching_report();
        r.sink_completed = false;
        let v = check_trace(&Chain, &clean_chain_trace(), &r, OracleMode::Strict);
        assert!(v.iter().any(|v| v.guarantee == "G4"), "got {v:?}");
    }

    #[test]
    fn report_mismatch_is_caught() {
        let mut r = matching_report();
        r.computes += 5;
        let v = check_trace(&Chain, &clean_chain_trace(), &r, OracleMode::Strict);
        assert!(v.iter().any(|v| v.guarantee == "report"), "got {v:?}");
    }

    #[test]
    fn result_equivalence_flags_divergence() {
        let v = check_result_equivalence(&[1, 2, 3], |k| Some(k as u64), |_| Some(1));
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.guarantee == "result"));
        let ok = check_result_equivalence(&[1, 2], |k| Some(k as u64), |k| Some(k as u64));
        assert!(ok.is_empty());
    }

    #[test]
    fn failure_report_json_roundtrips_fields() {
        let sites = [FaultSite {
            key: 7,
            phase: Phase::AfterCompute,
            fires: 2,
        }];
        let viols = [Violation {
            guarantee: "G3",
            message: "dup \"notify\"".into(),
        }];
        let evs = clean_chain_trace();
        let rep = FailureReport {
            label: "grid 4x4".into(),
            seed: 99,
            sites: &sites,
            violations: &viols,
            events: &evs,
        };
        let json = rep.to_json();
        assert!(json.contains("\"seed\": 99"));
        assert!(json.contains("\"AfterCompute\""));
        assert!(json.contains("dup \\\"notify\\\""));
        let dir = std::env::temp_dir().join("ft-oracle-test-dump");
        let _ = std::fs::remove_dir_all(&dir);
        let path = rep.write_to(&dir).unwrap();
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"label\": \"grid 4x4\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
