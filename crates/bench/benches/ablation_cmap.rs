//! Ablation: shard-count sweep of the concurrent task map under the
//! scheduler's access mix (insert-if-absent once, then read-heavy gets).
//! Justifies DESIGN.md decision #2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_cmap::ShardedMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const KEYS: i64 = 4096;
const THREADS: usize = 4;

fn workload(shards: usize) {
    let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(shards));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            scope.spawn(move || {
                // Scheduler-like mix: each thread inserts a slice of the key
                // space, then performs many gets across the whole space.
                let lo = KEYS * t as i64 / THREADS as i64;
                let hi = KEYS * (t as i64 + 1) / THREADS as i64;
                for k in lo..hi {
                    m.insert_if_absent(k, || k as u64);
                }
                let mut acc = 0u64;
                for round in 0..8 {
                    for k in 0..KEYS {
                        if let Some(v) = m.get((k + round) % KEYS) {
                            acc = acc.wrapping_add(v);
                        }
                    }
                }
                black_box(acc);
            });
        }
    });
    assert_eq!(m.len(), KEYS as usize);
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cmap_shards");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(6))
        .warm_up_time(Duration::from_secs(1));
    for shards in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &s| {
            b.iter(|| workload(s))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
