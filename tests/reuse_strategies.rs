//! Single-assignment vs memory-reuse strategies (Section VI: "We evaluated
//! single-assignment and memory reuse strategies for implementing these
//! benchmarks"). The paper expects FT overheads "for the single-assignment
//! implementations to be lower" because recovery never has to rebuild
//! evicted inputs.

use ft_apps::cholesky::Cholesky;
use ft_apps::fw::Fw;
use ft_apps::lu::Lu;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::FtScheduler;
use nabbit_ft::TaskGraph;
use std::sync::Arc;

const CFG: (usize, usize) = (96, 16); // nb = 6

fn run_with_last_faults<A: BenchApp + 'static>(
    app: Arc<A>,
    faults: usize,
    seed: u64,
) -> nabbit_ft::RunReport {
    let last = app.tasks_of_class(VersionClass::Last);
    let plan = Arc::new(FaultPlan::sample(&last, faults, Phase::AfterCompute, seed));
    let pool = Pool::new(PoolConfig::with_threads(4));
    let report = FtScheduler::with_plan(Arc::clone(&app) as Arc<dyn TaskGraph>, plan).run(&pool);
    assert!(report.sink_completed);
    app.verify().expect("results verified");
    report
}

#[test]
fn sw_single_assignment_correct_and_chainless() {
    let sa = Arc::new(Sw::single_assignment(AppConfig::new(CFG.0, CFG.1)));
    let report = run_with_last_faults(sa, 3, 7);
    // No eviction → recovering a v=last task re-executes only itself.
    assert_eq!(report.re_executions, 3);
    assert_eq!(report.overwrite_faults, 0);
}

#[test]
fn sw_single_assignment_graph_has_no_anti_edges() {
    let sa = Sw::single_assignment(AppConfig::new(64, 16)); // 4x4 tiles
    let reuse = Sw::new(AppConfig::new(64, 16));
    let s_sa = nabbit_ft::analysis::graph_stats(&sa);
    let s_reuse = nabbit_ft::analysis::graph_stats(&reuse);
    assert_eq!(s_sa.tasks, s_reuse.tasks);
    // Data edges 2·nb·(nb−1) = 24; reuse adds (nb−2)(nb−1) = 6 anti edges.
    assert_eq!(s_sa.edges, 24);
    assert_eq!(s_reuse.edges, 30);
}

#[test]
fn fw_single_assignment_correct_and_chainless() {
    let sa = Arc::new(Fw::single_assignment(AppConfig::new(CFG.0, CFG.1)));
    let report = run_with_last_faults(sa, 3, 11);
    assert_eq!(
        report.re_executions, 3,
        "KeepAll: no cascading recomputation"
    );
    assert_eq!(report.overwrite_faults, 0);
}

#[test]
fn fw_strategy_spectrum_edge_counts() {
    let cfg = AppConfig::new(96, 16); // nb = 6
    let sa = nabbit_ft::analysis::graph_stats(&Fw::single_assignment(cfg));
    let two = nabbit_ft::analysis::graph_stats(&Fw::new(cfg));
    let one = nabbit_ft::analysis::graph_stats(&Fw::with_single_version(cfg));
    assert_eq!(sa.tasks, two.tasks);
    assert_eq!(two.tasks, one.tasks);
    // Anti-dependence edges grow as retention shrinks.
    assert!(sa.edges < two.edges, "{} < {}", sa.edges, two.edges);
    assert!(two.edges < one.edges, "{} < {}", two.edges, one.edges);
}

#[test]
fn lu_single_assignment_correct() {
    let sa = Arc::new(Lu::single_assignment(AppConfig::new(CFG.0, CFG.1)));
    let report = run_with_last_faults(sa, 4, 13);
    assert_eq!(report.re_executions, 4);
    assert_eq!(report.overwrite_faults, 0);
}

#[test]
fn cholesky_single_assignment_correct() {
    let sa = Arc::new(Cholesky::single_assignment(AppConfig::new(CFG.0, CFG.1)));
    let report = run_with_last_faults(sa, 4, 17);
    assert_eq!(report.re_executions, 4);
    assert_eq!(report.overwrite_faults, 0);
}

#[test]
fn reuse_can_cascade_where_single_assignment_cannot() {
    // The crispest contrast: FW with one retained version vs KeepAll,
    // identical faults. The reuse variant re-executes producer chains; the
    // single-assignment variant re-executes exactly the failed tasks.
    let cfg = AppConfig::new(96, 16);
    let faults = 3;

    let sa = Arc::new(Fw::single_assignment(cfg));
    let r_sa = run_with_last_faults(sa, faults, 99);

    let reuse = Arc::new(Fw::with_single_version(cfg));
    let r_reuse = run_with_last_faults(reuse, faults, 99);

    assert_eq!(r_sa.re_executions, faults as u64);
    assert!(
        r_reuse.re_executions > 5 * faults as u64,
        "plain reuse must cascade: {} re-executions for {} faults",
        r_reuse.re_executions,
        faults
    );
}

#[test]
fn both_strategies_agree_on_results() {
    // Same inputs, different strategies, identical answers (with faults).
    let cfg = AppConfig::new(CFG.0, CFG.1);
    let a = Arc::new(Sw::new(cfg));
    let b = Arc::new(Sw::single_assignment(cfg));
    run_with_last_faults(Arc::clone(&a), 2, 5);
    run_with_last_faults(Arc::clone(&b), 2, 5);
    assert_eq!(a.result(), b.result(), "strategies agree on the SW score");
}
