//! Chase–Lev work-stealing deque.
//!
//! One owner thread pushes and pops at the *bottom*; any number of thief
//! threads steal from the *top*. The implementation follows the C11
//! formulation of Lê, Pop, Cohen & Zappa Nardelli (PPoPP'13), including its
//! memory orderings, with a growable circular buffer.
//!
//! Buffer growth retires the old buffer into a list owned by the deque
//! rather than freeing it immediately: a concurrent thief may still be
//! reading an element slot of the old buffer. Retired buffers are freed when
//! the deque itself is dropped, which is safe because by then no thief holds
//! a reference (the pool joins its workers first).
//!
//! Elements are stored by value in `MaybeUninit` slots. The ABA-free
//! `top` counter is monotonically increasing, so a slot is logically owned
//! by exactly one successful `steal`/`pop`.
//!
//! Every atomic access below carries an `// ord:` tag and every `unsafe`
//! site a `// SAFETY:` comment; `ft-lint` rules L1/L2 enforce this (see
//! `docs/LINTS.md` and the ordering-discipline section of
//! `docs/ALGORITHM.md`).

use ft_sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Initial capacity (must be a power of two).
const MIN_CAP: usize = 64;

/// A circular buffer of `T` slots. Never shrinks; grows by doubling.
struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    /// Mask = cap - 1 for cheap modulo.
    mask: usize,
    /// Slot storage. Readers/writers synchronize through `top`/`bottom`.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: a Buffer is inert slot storage; the values inside move across
// threads only via the deque protocol, so sending the storage requires
// exactly `T: Send`.
unsafe impl<T: Send> Send for Buffer<T> {}
// SAFETY: concurrent access to the cells is arbitrated externally by the
// `top`/`bottom` protocol (each logical index has a unique writer and a
// unique consumer); the buffer never hands out `&T`, so `T: Sync` is not
// required.
unsafe impl<T: Send> Sync for Buffer<T> {}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            cap,
            mask: cap - 1,
            slots,
        })
    }

    /// Write `v` into logical index `i`.
    ///
    /// # Safety
    /// The caller must be the unique writer of slot `i & mask` for this
    /// logical index (guaranteed by the Chase–Lev protocol: only the owner
    /// writes, and only at `bottom`).
    unsafe fn put(&self, i: isize, v: T) {
        let slot = &self.slots[(i as usize) & self.mask];
        // SAFETY: per this fn's contract the caller is the unique writer of
        // this slot for index `i`, so no other access aliases the cell now.
        unsafe { (*slot.get()).write(v) };
    }

    /// Read the value at logical index `i` without consuming it.
    ///
    /// # Safety
    /// The slot must contain an initialized value for logical index `i`, and
    /// the caller must ensure it takes ownership at most once (the CAS on
    /// `top` arbitrates ownership among thieves and the owner).
    unsafe fn take(&self, i: isize) -> T {
        let slot = &self.slots[(i as usize) & self.mask];
        // SAFETY: per this fn's contract the slot is initialized for index
        // `i` and this is the at-most-once consuming read of it.
        unsafe { (*slot.get()).assume_init_read() }
    }
}

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Successfully stole an element.
    Success(T),
}

impl<T> Steal<T> {
    /// True if this is `Steal::Success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// Shared state of one Chase–Lev deque.
struct Inner<T> {
    /// Next index to steal from. Monotonically increasing.
    top: AtomicIsize,
    /// Next index the owner will push to.
    bottom: AtomicIsize,
    /// Current buffer. Replaced (never mutated in place) on growth.
    buf: AtomicPtr<Buffer<T>>,
    /// Retired buffers, freed on drop. Only the owner pushes here; protected
    /// by the owner-uniqueness of `Worker`.
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
}

// SAFETY: the Arc<Inner> is dropped on an arbitrary thread; every field it
// owns (buffers, queued T values, retired pointers) is safe to move given
// `T: Send`, and the `retired` cell is only touched by the unique owner.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: shared access goes through the atomics plus the slot-ownership
// protocol; `retired` is written only by the unique `Worker` owner, so no
// two threads ever touch it concurrently.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any elements still in the deque.
        // ord: Relaxed — `&mut self` proves exclusivity; whoever dropped the
        // last handle synchronized with all prior accesses via the Arc
        // refcount's Release/Acquire.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = self.buf.load(Ordering::Relaxed);
        // SAFETY: exclusive access: indices `t..b` are exactly the
        // initialized, unconsumed slots, and no thief can still hold a
        // buffer pointer (the pool joins its workers before dropping), so
        // freeing the current and retired buffers cannot race.
        unsafe {
            for i in t..b {
                drop((*buf).take(i));
            }
            drop(Box::from_raw(buf));
            for &r in &*self.retired.get() {
                drop(Box::from_raw(r));
            }
        }
    }
}

/// Owner handle: push/pop at the bottom. Not `Clone`; exactly one owner.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ord: Relaxed — advisory size for diagnostics only.
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        f.debug_struct("Worker")
            .field("len", &b.wrapping_sub(t).max(0))
            .finish()
    }
}

/// Thief handle: steal from the top. Cheaply cloneable.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ord: Relaxed — advisory size for diagnostics only.
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        f.debug_struct("Stealer")
            .field("len", &b.wrapping_sub(t).max(0))
            .finish()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Create a new deque, returning the unique owner handle and a stealer.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let buf = Box::into_raw(Buffer::new(MIN_CAP));
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buf: AtomicPtr::new(buf),
        retired: UnsafeCell::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

// SAFETY: a Worker may be moved to the thread that will own the deque; the
// owner-only state it reaches (`retired`, bottom-side writes) is unique to
// the single Worker handle, so `T: Send` suffices.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T: Send> Worker<T> {
    /// Push a value at the bottom. Owner-only.
    // ft-lint: hot-path begin(deque-owner)
    pub fn push(&self, v: T) {
        let inner = &*self.inner;
        // ord: Relaxed/Acquire/Relaxed — only the owner writes `bottom` and
        // `buf`, so it may read its own last stores relaxed; Acquire on
        // `top` pairs with thieves' Release-free CAS retirement of indices
        // so the owner sees which slots are free to reuse (LPCN'13 push).
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buf.load(Ordering::Relaxed);

        let len = b.wrapping_sub(t);
        // SAFETY: the owner is the unique writer at index `b`: thieves only
        // consume indices below `bottom`, and `grow` republishes the live
        // range before the new slot is written.
        unsafe {
            if len >= (*buf).cap as isize {
                self.grow(b, t);
                // ord: Relaxed — reading back the pointer this same thread
                // just stored in `grow`.
                buf = inner.buf.load(Ordering::Relaxed);
            }
            (*buf).put(b, v);
        }
        // ord: Release fence + Relaxed store — the slot write above must be
        // visible before the incremented `bottom` is; pairs with the
        // thief's Acquire load of `bottom` in `steal`.
        // sc: chase-lev/owner-publish
        fence(Ordering::Release);
        inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
    }

    /// Pop a value from the bottom (LIFO). Owner-only.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        // ord: Relaxed — owner reads/writes its own `bottom` and `buf`; the
        // SeqCst fence below is what orders the decrement against thieves.
        let b = inner.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        let buf = inner.buf.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // ord: SeqCst fence — the bottom decrement must be globally visible
        // before reading `top` (the crux of Chase-Lev: pairs with the
        // thief's top-read/bottom-read fence); `top` itself can then be
        // read Relaxed because the fence orders it.
        // sc: chase-lev/owner-take
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        let len = b.wrapping_sub(t);
        if len < 0 {
            // ord: Relaxed — restoring our own speculative decrement; no
            // other thread writes `bottom`.
            inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        // SAFETY: `t <= b < old bottom` means index `b` was published by a
        // completed push; if thieves race us for the last element the CAS
        // below decides ownership, and the loser forgets its copy.
        let v = unsafe { (*buf).take(b) };
        if len > 0 {
            // More than one element; no thief can race for index b.
            return Some(v);
        }
        // Exactly one element: race with thieves via CAS on top.
        // ord: SeqCst success / Relaxed failure — the CAS participates in
        // the same total order as the fences; on failure we only learn we
        // lost and read nothing guarded by `top`.
        let won = inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        // ord: Relaxed — only the owner writes bottom; restoring it to the
        // empty position needs no ordering (thieves re-validate via top).
        inner.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
        if won {
            Some(v)
        } else {
            // A thief got it; we must not drop the value we read (the thief
            // owns it) — forget our speculative copy.
            std::mem::forget(v);
            None
        }
    }

    // ft-lint: hot-path end(deque-owner)

    /// Number of elements currently visible to the owner (approximate for
    /// outside observers, exact for the owner between operations).
    pub fn len(&self) -> usize {
        // ord: Relaxed — advisory size; callers tolerate a stale snapshot.
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b.wrapping_sub(t).max(0) as usize
    }

    /// True if no elements are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create another stealer for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Double the buffer; called by `push` when full. Owner-only.
    ///
    /// The old buffer is retired, not freed: thieves may still be reading
    /// slots of it. `top`..`bottom` elements are copied to the new buffer.
    fn grow(&self, b: isize, t: isize) {
        let inner = &*self.inner;
        // ord: Relaxed — only the owner replaces `buf`; it reads its own
        // last published pointer.
        let old = inner.buf.load(Ordering::Relaxed);
        // SAFETY: the owner has exclusive write access to the new (still
        // private) buffer, the bit-copies only duplicate slots whose
        // ownership stays with the deque, and the old buffer is retired —
        // not freed — because a thief may still be reading it.
        unsafe {
            let new = Box::into_raw(Buffer::new((*old).cap * 2));
            for i in t..b {
                // Copy the raw bytes; ownership stays with the deque.
                let slot_old = &(*old).slots[(i as usize) & (*old).mask];
                let slot_new = &(*new).slots[(i as usize) & (*new).mask];
                std::ptr::copy_nonoverlapping(slot_old.get(), slot_new.get(), 1);
            }
            // ord: Release — the copied slot contents must be visible before
            // the new buffer pointer; pairs with the thief's Acquire load.
            inner.buf.store(new, Ordering::Release);
            (*inner.retired.get()).push(old);
        }
    }
}

impl<T: Send> Stealer<T> {
    /// Attempt to steal one element from the top (FIFO).
    // ft-lint: hot-path begin(deque-steal)
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        // ord: Acquire on `top` (pairs with competing CAS publications),
        // then a SeqCst fence ordering the top read before the bottom read
        // (mirrors the owner's pop fence), then Acquire on `bottom` pairing
        // with the owner's Release fence in `push` so the slot write at
        // `t` is visible before we read it.
        let t = inner.top.load(Ordering::Acquire);
        // sc: chase-lev/thief-steal
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if b.wrapping_sub(t) <= 0 {
            return Steal::Empty;
        }
        // ord: Acquire — read the buffer pointer *after* observing
        // non-empty; pairs with the owner's Release store in `grow` so the
        // copied slots are visible through the new pointer.
        let buf = inner.buf.load(Ordering::Acquire);
        // SAFETY: `t < b` means index `t` holds a published value; the CAS
        // below arbitrates ownership, and on loss we forget the speculative
        // copy without dropping it.
        let v = unsafe { (*buf).take(t) };
        // ord: SeqCst success / Relaxed failure — success joins the fence
        // total order claiming index `t`; failure reads nothing guarded.
        if inner
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(v)
        } else {
            // Lost the race; the element belongs to someone else.
            std::mem::forget(v);
            Steal::Retry
        }
    }
    // ft-lint: hot-path end(deque-steal)

    /// Approximate number of elements.
    pub fn len(&self) -> usize {
        // ord: Relaxed — advisory size; callers tolerate a stale snapshot.
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        b.wrapping_sub(t).max(0) as usize
    }

    /// True if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_sync::atomic::AtomicUsize;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let (w, _s) = deque::<u32>();
        for i in 0..10 {
            w.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let (w, s) = deque::<u32>();
        for i in 0..10 {
            w.push(i);
        }
        for i in 0..10 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn empty_deque_behaviour() {
        let (w, s) = deque::<u32>();
        assert!(w.is_empty());
        assert!(s.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
        w.push(7);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop(), Some(7));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn growth_preserves_elements() {
        let (w, s) = deque::<usize>();
        let n = MIN_CAP * 8;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        // Steal half from the top, pop half from the bottom.
        for i in 0..n / 2 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        for i in (n / 2..n).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_steal_sequential() {
        let (w, s) = deque::<u64>();
        let mut seen = HashSet::new();
        let mut next = 0u64;
        for round in 0..1000 {
            for _ in 0..(round % 7) {
                w.push(next);
                next += 1;
            }
            if round % 3 == 0 {
                if let Some(v) = w.pop() {
                    assert!(seen.insert(v));
                }
            }
            if round % 2 == 0 {
                if let Steal::Success(v) = s.steal() {
                    assert!(seen.insert(v));
                }
            }
        }
        while let Some(v) = w.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), next as usize);
    }

    #[test]
    fn drops_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, _s) = deque::<D>();
            for _ in 0..10 {
                w.push(D);
            }
            drop(w.pop()); // one dropped here
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_steal_no_dup_no_loss() {
        const N: usize = 100_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<usize>();
        let counts: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let counts = std::sync::Arc::new(counts);

        thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = s.clone();
                let counts = std::sync::Arc::clone(&counts);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(v) => {
                            counts[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if counts[N - 1].load(Ordering::Relaxed) > 0
                                || counts.iter().all(|c| c.load(Ordering::Relaxed) > 0)
                            {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => {}
                    }
                });
            }
            // Owner interleaves pushes and pops.
            let mut popped = Vec::new();
            for i in 0..N {
                w.push(i);
                if i % 5 == 0 {
                    if let Some(v) = w.pop() {
                        popped.push(v);
                    }
                }
            }
            // Drain the rest from the owner side.
            while let Some(v) = w.pop() {
                popped.push(v);
            }
            for v in popped {
                counts[v].fetch_add(1, Ordering::Relaxed);
            }
        });

        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "element {i} seen wrong number of times"
            );
        }
    }

    #[test]
    fn concurrent_growth_under_steal() {
        const N: usize = 50_000;
        let (w, s) = deque::<usize>();
        let stolen = std::sync::Arc::new(AtomicUsize::new(0));
        let done = std::sync::Arc::new(ft_sync::atomic::AtomicBool::new(false));

        thread::scope(|scope| {
            for _ in 0..3 {
                let s = s.clone();
                let stolen = std::sync::Arc::clone(&stolen);
                let done = std::sync::Arc::clone(&done);
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty if done.load(Ordering::Acquire) => break,
                        _ => std::hint::spin_loop(),
                    }
                });
            }
            let mut popped = 0usize;
            for i in 0..N {
                w.push(i);
                // Occasionally pop to force the single-element race path.
                if i % 97 == 0 && w.pop().is_some() {
                    popped += 1;
                }
            }
            while w.pop().is_some() {
                popped += 1;
            }
            // Let thieves drain anything left (there is nothing left, but the
            // CAS races must settle), then signal.
            done.store(true, Ordering::Release);
            // popped is accounted below.
            stolen.fetch_add(popped, Ordering::Relaxed);
        });

        assert_eq!(stolen.load(Ordering::Relaxed), N);
    }
}
