//! `ft-steal` — a Cilk-style work-stealing runtime built from scratch.
//!
//! This crate is the execution substrate for the NABBIT-style task-graph
//! schedulers in `nabbit-ft`. The paper ("Fault-Tolerant Dynamic Task Graph
//! Scheduling", SC 2014) runs on Cilk++; we reproduce the relevant runtime
//! behaviour with:
//!
//! * [`deque::Worker`]/[`deque::Stealer`] — a Chase–Lev work-stealing deque implemented directly
//!   with atomics, following the orderings of Lê, Pop, Cohen & Zappa Nardelli,
//!   *Correct and Efficient Work-Stealing for Weak Memory Models* (PPoPP'13).
//! * [`injector::Injector`] — a segmented lock-free MPMC queue (linked
//!   31-slot blocks, batch-steal into the caller's deque) for submissions
//!   arriving from outside the pool.
//! * [`pool::Pool`] — a persistent pool of worker threads, each owning a
//!   deque; idle workers steal from random victims and park when the system
//!   has no work (a single pool-wide pending-work counter makes the park
//!   decision O(1)).
//! * [`latch::CountLatch`] / [`latch::Flag`] — completion detection for
//!   fire-and-forget task DAGs (the sink task trips the latch).
//! * [`metrics::WorkerMetrics`] — per-worker counters (spawns, steals,
//!   executed jobs) aggregated without cross-thread contention.
//!
//! The pool deliberately exposes a *fire-and-forget* `spawn` rather than
//! fork-join `join`: NABBIT's traversal routines (`InitAndCompute`,
//! `TryInitCompute`, ...) only ever spawn children and never sync on them;
//! graph completion is detected when the sink task completes. This matches
//! how the paper's scheduler uses Cilk spawns.
//!
//! # Example
//!
//! ```
//! use ft_steal::pool::{Pool, PoolConfig};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = Pool::new(PoolConfig::with_threads(4));
//! let counter = Arc::new(AtomicUsize::new(0));
//! pool.run_until_complete(|scope| {
//!     for _ in 0..100 {
//!         let counter = Arc::clone(&counter);
//!         scope.spawn(move |_| {
//!             counter.fetch_add(1, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(counter.load(Ordering::Relaxed), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod arena;
pub mod deque;
pub mod injector;
pub mod instance;
pub mod job;
pub mod latch;
pub mod metrics;
pub mod parker;
pub mod pool;
pub mod priority;
pub mod rng;

pub use arena::{Arena, ArenaRef};
pub use instance::{AdmissionGate, InstanceHandle, InstanceStats, QuiesceHook};
pub use latch::{CountLatch, Flag};
pub use pool::{Executor, Job, Pool, PoolConfig, Scope, SpawnHost};
pub use priority::{PrioInjector, Priority};
