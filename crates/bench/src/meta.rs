//! Run metadata shared by the `bench_pr*` snapshot binaries: environment
//! overrides and the git revision, recorded into every emitted JSON so a
//! checked-in reference file says exactly how it was produced.

/// Whether the `bench_pr*` snapshot binaries construct **one resident
/// worker pool** and reuse it across every rep and workload (as opposed to
/// spinning a pool up per measurement). All snapshot binaries have worked
/// this way since PR 2 — the pool outlives every timed region, so thread
/// spawn/join never pollutes a sample — and each binary records the fact in
/// its emitted JSON so checked-in references are explicit about it.
/// `bench_pr7` additionally *measures* the spin-up-per-graph alternative as
/// its baseline.
pub const POOL_REUSE: bool = true;

/// Read a `usize` override from the environment, falling back to
/// `default`. CLI flags take precedence over the environment, so callers
/// resolve `default → env → flag` in that order.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

/// Short git revision of the working tree, or `"unknown"` outside a repo
/// (e.g. a source tarball). Appends `-dirty` when the tree has
/// uncommitted changes so a reference JSON can't silently come from
/// unreviewed code.
pub fn git_rev() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let Some(rev) = rev else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain", "-uno"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_default_and_override() {
        std::env::remove_var("FT_BENCH_TEST_KNOB");
        assert_eq!(env_usize("FT_BENCH_TEST_KNOB", 7), 7);
        std::env::set_var("FT_BENCH_TEST_KNOB", "12");
        assert_eq!(env_usize("FT_BENCH_TEST_KNOB", 7), 12);
        std::env::remove_var("FT_BENCH_TEST_KNOB");
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
