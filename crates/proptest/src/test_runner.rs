//! Case runner: seed derivation, regression-file persistence, replay.

use crate::strategy::TestRng;
use std::io::Write;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// Runner configuration (the subset of real proptest's knobs this
/// workspace uses; construct with struct-update from `default()`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused; kept so `..ProptestConfig::default()` stays idiomatic if a
    /// test ever sets it.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Locate the source file at runtime. `file!()` paths are relative to the
/// directory rustc was invoked from (the workspace root), while `cargo
/// test` may run with the member crate as cwd — probe a few ancestors.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let direct = PathBuf::from(source_file);
    let candidates = [
        direct.clone(),
        PathBuf::from("..").join(&direct),
        PathBuf::from("../..").join(&direct),
        PathBuf::from("../../..").join(&direct),
    ];
    let found = candidates.into_iter().find(|c| c.is_file())?;
    Some(found.with_extension("proptest-regressions"))
}

/// Parse persisted `cc <payload>` lines into replay seeds. Payloads we
/// wrote are 16 hex chars (a literal u64 seed); foreign payloads (real
/// proptest's RNG-state blobs) are hashed into a seed so they still
/// contribute a deterministic extra case.
fn load_regression_seeds(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let payload: &str = rest.split_whitespace().next().unwrap_or("");
        let seed = if payload.len() == 16 {
            u64::from_str_radix(payload, 16).unwrap_or_else(|_| fnv1a(payload.as_bytes()))
        } else {
            fnv1a(payload.as_bytes())
        };
        if !seeds.contains(&seed) {
            seeds.push(seed);
        }
    }
    seeds
}

fn persist_failure(path: &PathBuf, seed: u64, test_path: &str) {
    let entry = format!("cc {seed:016x}");
    if let Ok(existing) = std::fs::read_to_string(path) {
        if existing.lines().any(|l| l.trim().starts_with(&entry)) {
            return;
        }
    }
    let header_needed = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases."
        );
    }
    let _ = writeln!(f, "{entry} # replay seed for {test_path} (no shrinking)");
}

/// Run one proptest-defined test: replay persisted regression seeds, then
/// `config.cases` fresh deterministic cases. On failure, persist the seed,
/// report it, and re-raise the panic.
pub fn run_cases(
    test_path: &str,
    source_file: &str,
    config: &ProptestConfig,
    f: &dyn Fn(&mut TestRng),
) {
    let reg_path = regression_path(source_file);
    let mut seeds: Vec<(u64, bool)> = Vec::new();
    if let Some(p) = &reg_path {
        seeds.extend(load_regression_seeds(p).into_iter().map(|s| (s, true)));
    }
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v.parse::<u64>().unwrap_or_else(|_| fnv1a(v.as_bytes())),
        Err(_) => fnv1a(test_path.as_bytes()),
    };
    for i in 0..config.cases as u64 {
        seeds.push((
            base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            false,
        ));
    }

    for (seed, from_regression) in seeds {
        let mut rng = TestRng::new(seed);
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            if !from_regression {
                if let Some(p) = &reg_path {
                    persist_failure(p, seed, test_path);
                }
            }
            eprintln!(
                "[proptest shim] {test_path} failed with seed {seed:016x}{}",
                if from_regression {
                    " (persisted regression)"
                } else {
                    " (persisted to the .proptest-regressions file)"
                }
            );
            panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cases() {
        let c = ProptestConfig {
            cases: 24,
            ..ProptestConfig::default()
        };
        assert_eq!(c.cases, 24);
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn macro_end_to_end() {
        // Use the public macro from inside the crate to prove the plumbing.
        crate::proptest! {
            #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
            fn inner(x in 0u64..100, v in crate::collection::vec(0u8..4, 0..10)) {
                crate::prop_assert!(x < 100);
                crate::prop_assert!(v.len() < 10);
            }
        }
        inner();
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
