//! LCS — blocked longest common subsequence (single-assignment).
//!
//! The DP table is tiled into `nb × nb` blocks; task `(i,j)` computes tile
//! `(i,j)` from its top, left, and diagonal neighbours (the recursive
//! definition of the DP). Following the paper, LCS is the one benchmark
//! where memory reuse "is not applicable because each task's output is part
//! of the computation's final output" — every tile is its own block with a
//! single version ([`Retention::KeepAll`]).
//!
//! Each published block stores only what successors need — the tile's right
//! column and bottom row (`2B` i32 values) — rather than the full `B×B`
//! tile, the standard memory optimization for wavefront DP.

use crate::common::{keys, AppConfig, BenchApp, VerifyOutcome, VersionClass};
use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};

/// Blocked LCS benchmark instance. Build one per run.
pub struct Lcs {
    cfg: AppConfig,
    /// First input sequence (resilient application state).
    x: Vec<u8>,
    /// Second input sequence.
    y: Vec<u8>,
    /// One block per tile; layout `[right_col(B) | bottom_row(B)]`.
    store: BlockStore<i32>,
}

impl Lcs {
    /// Create an instance with random sequences over a 4-letter alphabet.
    pub fn new(cfg: AppConfig) -> Self {
        let x = crate::common::random_sequence(cfg.n, 4, cfg.seed);
        let y = crate::common::random_sequence(cfg.n, 4, cfg.seed.wrapping_add(1));
        let nb = cfg.nb();
        Lcs {
            cfg,
            x,
            y,
            store: BlockStore::new(nb * nb, Retention::KeepAll),
        }
    }

    fn nb(&self) -> usize {
        self.cfg.nb()
    }

    fn block_id(&self, i: usize, j: usize) -> usize {
        i * self.nb() + j
    }

    fn task_key(i: usize, j: usize) -> Key {
        keys::encode(0, 0, i, j)
    }

    /// LCS length computed by the task graph (sink tile's bottom-right
    /// corner). `None` before a completed run.
    pub fn result(&self) -> Option<i32> {
        let nb = self.nb();
        let b = self.cfg.b;
        self.store
            .read(self.block_id(nb - 1, nb - 1), 0)
            .ok()
            .map(|blk| blk[2 * b - 1])
    }

    /// Independent reference: classic O(N) space rolling-row LCS.
    pub fn reference(&self) -> i32 {
        let n = self.cfg.n;
        let mut prev = vec![0i32; n + 1];
        let mut cur = vec![0i32; n + 1];
        for u in 1..=n {
            for v in 1..=n {
                cur[v] = if self.x[u - 1] == self.y[v - 1] {
                    prev[v - 1] + 1
                } else {
                    prev[v].max(cur[v - 1])
                };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n]
    }
}

impl TaskGraph for Lcs {
    fn sink(&self) -> Key {
        let nb = self.nb();
        Self::task_key(nb - 1, nb - 1)
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        let (_, _, i, j) = keys::decode(key);
        let mut p = Vec::with_capacity(3);
        if i > 0 {
            p.push(Self::task_key(i - 1, j));
        }
        if j > 0 {
            p.push(Self::task_key(i, j - 1));
        }
        if i > 0 && j > 0 {
            p.push(Self::task_key(i - 1, j - 1));
        }
        p
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        let (_, _, i, j) = keys::decode(key);
        let nb = self.nb();
        let mut s = Vec::with_capacity(3);
        if i + 1 < nb {
            s.push(Self::task_key(i + 1, j));
        }
        if j + 1 < nb {
            s.push(Self::task_key(i, j + 1));
        }
        if i + 1 < nb && j + 1 < nb {
            s.push(Self::task_key(i + 1, j + 1));
        }
        s
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let (_, _, i, j) = keys::decode(key);
        let b = self.cfg.b;

        // Guarded reads of the three neighbour blocks.
        let top = if i > 0 {
            Some(
                self.store
                    .read(self.block_id(i - 1, j), 0)
                    .map_err(|e| e.into_fault())?,
            )
        } else {
            None
        };
        let left = if j > 0 {
            Some(
                self.store
                    .read(self.block_id(i, j - 1), 0)
                    .map_err(|e| e.into_fault())?,
            )
        } else {
            None
        };
        let corner = if i > 0 && j > 0 {
            self.store
                .read(self.block_id(i - 1, j - 1), 0)
                .map_err(|e| e.into_fault())?[2 * b - 1]
        } else {
            0
        };

        // Boundary vectors for this tile.
        let top_row = |v: usize| top.as_ref().map(|t| t[b + v]).unwrap_or(0);
        let left_col = |u: usize| left.as_ref().map(|l| l[u]).unwrap_or(0);

        let mut prev: Vec<i32> = (0..b).map(top_row).collect();
        let mut cur = vec![0i32; b];
        let mut right_col = Vec::with_capacity(b);
        for u in 0..b {
            let xc = self.x[i * b + u];
            for v in 0..b {
                let up = prev[v];
                let lf = if v == 0 { left_col(u) } else { cur[v - 1] };
                let dg = if v > 0 {
                    prev[v - 1]
                } else if u == 0 {
                    corner
                } else {
                    left_col(u - 1)
                };
                cur[v] = if xc == self.y[j * b + v] {
                    dg + 1
                } else {
                    up.max(lf)
                };
            }
            right_col.push(cur[b - 1]);
            std::mem::swap(&mut prev, &mut cur);
        }
        // `prev` now holds the bottom row.
        let mut out = right_col;
        out.extend_from_slice(&prev);
        self.store.publish(self.block_id(i, j), 0, key, out);
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        let (_, _, i, j) = keys::decode(key);
        self.store.poison(self.block_id(i, j), 0);
    }
}

impl BenchApp for Lcs {
    fn name(&self) -> &'static str {
        "LCS"
    }

    fn config(&self) -> AppConfig {
        self.cfg
    }

    fn all_tasks(&self) -> Vec<Key> {
        let nb = self.nb();
        (0..nb)
            .flat_map(|i| (0..nb).map(move |j| Self::task_key(i, j)))
            .collect()
    }

    fn tasks_of_class(&self, _class: VersionClass) -> Vec<Key> {
        // Single-assignment: every task produces the first and last (only)
        // version of its block; the classes coincide (the paper observes
        // near-identical behaviour across classes for LCS).
        self.all_tasks()
    }

    fn verify_detailed(&self) -> Result<VerifyOutcome, String> {
        let nb = self.nb();
        let b = self.cfg.b;
        match self.store.read(self.block_id(nb - 1, nb - 1), 0) {
            Ok(blk) => {
                let got = blk[2 * b - 1];
                let want = self.reference();
                if got == want {
                    Ok(VerifyOutcome {
                        checked: 1,
                        skipped_poisoned: 0,
                    })
                } else {
                    Err(format!("LCS length {got} != reference {want}"))
                }
            }
            Err(BlockError::Poisoned { .. }) => Ok(VerifyOutcome {
                checked: 0,
                skipped_poisoned: 1,
            }),
            Err(e) => Err(format!("sink block unreadable: {e:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
    use nabbit_ft::seq;
    use std::sync::Arc;

    #[test]
    fn sequential_execution_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        seq::run(app.as_ref()).unwrap();
        app.verify().unwrap();
    }

    #[test]
    fn graph_shape() {
        let app = Lcs::new(AppConfig::new(64, 16));
        // 4x4 tiles.
        assert_eq!(app.all_tasks().len(), 16);
        let s = nabbit_ft::analysis::graph_stats(&app);
        assert_eq!(s.tasks, 16);
        // E = 3(nb-1)^2 + 2(nb-1) = 27 + 6 = 33.
        assert_eq!(s.edges, 33);
        // S = 2*nb - 1 = 7.
        assert_eq!(s.critical_path, 7);
        assert_eq!(s.max_in_degree, 3);
        assert_eq!(s.max_out_degree, 3);
    }

    #[test]
    fn paper_table1_formulas_at_paper_scale() {
        // Table I: N=512K, B=2K -> nb=256: T=65536, E=195585, S≈510.
        let nb = 256i64;
        let t = nb * nb;
        let e = 3 * (nb - 1) * (nb - 1) + 2 * (nb - 1);
        assert_eq!(t, 65536);
        assert_eq!(e, 195585);
        // Our path counts tasks (2nb-1 = 511); the paper's 510 counts hops.
        assert_eq!(2 * nb - 1, 511);
    }

    #[test]
    fn parallel_baseline_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_without_faults_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.re_executions, 0);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_after_compute_faults_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 16, Phase::AfterCompute, 11));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 16);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_before_compute_faults_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 16, Phase::BeforeCompute, 13));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_after_notify_faults_matches_reference() {
        let app = Arc::new(Lcs::new(AppConfig::new(128, 16)));
        // Exclude the sink: an after-notify fault on it is never observed
        // (nothing reads the sink's output inside the run).
        let sink = app.sink();
        let keys: Vec<_> = app.all_tasks().into_iter().filter(|&k| k != sink).collect();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 16, Phase::AfterNotify, 17));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn tile_boundaries_handle_uneven_content() {
        // Identical sequences: LCS = N; exercises the all-match DP path
        // across tile boundaries.
        let mut app = Lcs::new(AppConfig::new(64, 8));
        app.y = app.x.clone();
        let app = Arc::new(app);
        seq::run(app.as_ref()).unwrap();
        assert_eq!(app.result(), Some(64));
    }

    #[test]
    fn single_tile_problem() {
        let app = Arc::new(Lcs::new(AppConfig::new(32, 32)));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 1);
        app.verify().unwrap();
    }
}
