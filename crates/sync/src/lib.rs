//! `ft-sync` — the cfg(loom)-switchable atomics facade.
//!
//! Every *runtime* crate (`ft-steal`, `ft-cmap`, `nabbit-ft`, `ft-det`)
//! imports atomics from `ft_sync::atomic` instead of `std::sync::atomic`.
//! Under a normal build the module is a zero-cost re-export of the std
//! atomics; under `RUSTFLAGS="--cfg loom"` it re-exports the loom shim's
//! schedule-perturbing atomics instead. The point is that the loom model
//! tests then exercise the *shipped* code paths — before this facade
//! existed, only the files that hand-rolled a `#[cfg(loom)]` import pair
//! were visible to the models, and every other atomic silently escaped
//! model checking.
//!
//! The `ft-lint` rule **L3** (see `docs/LINTS.md`) mechanically enforces
//! that no runtime crate imports `std::sync::atomic` directly, so new
//! lock-free code cannot opt out of model coverage by accident. This crate
//! is the single sanctioned exception: the `cfg(not(loom))` arm below is
//! where the std atomics enter the dependency graph.
//!
//! Usage is identical to std:
//!
//! ```
//! use ft_sync::atomic::{AtomicU64, Ordering};
//! let x = AtomicU64::new(1);
//! assert_eq!(x.fetch_add(1, Ordering::Relaxed), 1);
//! ```

#![warn(missing_docs)]

#[cfg(loom)]
pub use loom::sync::atomic;
#[cfg(not(loom))]
pub use std::sync::atomic;

#[cfg(test)]
mod tests {
    use super::atomic::{fence, AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

    // Statics must work in both arms: the loom shim keeps `const fn new`.
    static COUNTER: AtomicU64 = AtomicU64::new(0);

    #[test]
    fn facade_exposes_std_compatible_atomics() {
        COUNTER.store(7, Ordering::Relaxed);
        assert_eq!(COUNTER.load(Ordering::Relaxed), 7);

        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));

        let s = AtomicU8::new(3);
        assert_eq!(s.swap(4, Ordering::AcqRel), 3);

        let u = AtomicUsize::new(0);
        assert!(u
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok());
        fence(Ordering::SeqCst);
        assert_eq!(u.load(Ordering::SeqCst), 1);
    }
}
