//! Loom model tests for the PR-9 lock-free notify cells
//! ([`nabbit_ft::task::NotifyCells`]): the claim/publish/scan protocol
//! that replaced the mutexed notify list.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p nabbit-ft --test loom_notify
//! ```
//!
//! The models replay the exact engine-side protocol (`register_notify` /
//! the `compute_and_notify_step` drain, see `scheduler/engine.rs`) against
//! a bare status byte, so every atomic in the cell array — the `claims`
//! counter, the slot publishes, the paired SeqCst fences, and the
//! take-CAS — is a model-exploration point. `LOOM_MAX_ITERS` /
//! `LOOM_SEED` control the exploration budget and make failures
//! replayable.
#![cfg(loom)]

use ft_sync::atomic::{fence, AtomicU8, AtomicUsize, Ordering};
use nabbit_ft::task::{NotifyCells, Take};
use std::sync::Arc;

const VISITED: u8 = 0;
const COMPUTED: u8 = 1;

/// The engine's registration path (`register_notify`): claim a slot,
/// publish the key, fence, then re-check the producer's status and
/// self-deliver on a won CAS. Returns 1 if this side delivered.
fn register(cells: &NotifyCells, status: &AtomicU8, key: i64) -> usize {
    let slot = cells.claim();
    cells.publish(slot, key);
    // ord: Dekker pairing with the drainer's fence (see engine.rs).
    fence(Ordering::SeqCst);
    if status.load(Ordering::Acquire) >= COMPUTED && cells.try_take(slot, key) {
        1
    } else {
        0
    }
}

/// The engine's drain (`compute_and_notify_step`): mark Computed, fence,
/// then cursor-scan every claimed slot, re-checking the claim counter
/// until no late registrant slipped in. Delivered keys are appended to
/// `out`.
fn drain(cells: &NotifyCells, status: &AtomicU8, out: &mut Vec<i64>) {
    status.store(COMPUTED, Ordering::Release);
    // ord: Dekker pairing with the registrant's fence (see engine.rs).
    fence(Ordering::SeqCst);
    let mut cursor = 0usize;
    loop {
        let len = cells.len();
        while cursor < len {
            if let Take::Deliver(k) = cells.take_at(cursor) {
                out.push(k);
            }
            cursor += 1;
        }
        if cells.len() == cursor {
            break;
        }
    }
}

/// One registrant races the producer's drain: whatever the interleaving —
/// early registration (drain delivers), late registration (registrant
/// self-delivers after seeing Computed), or the claimed-but-unpublished
/// window (drain delegates, registrant must pick it up) — the
/// notification is delivered exactly once.
#[test]
fn registrant_racing_drainer_delivers_exactly_once() {
    loom::model(|| {
        let cells = Arc::new(NotifyCells::new(2));
        let status = Arc::new(AtomicU8::new(VISITED));
        let (c2, s2) = (Arc::clone(&cells), Arc::clone(&status));
        let registrant = loom::thread::spawn(move || register(&c2, &s2, 7));

        let mut delivered = Vec::new();
        drain(&cells, &status, &mut delivered);
        let self_delivered = registrant.join().unwrap();

        assert!(
            delivered.iter().all(|&k| k == 7),
            "alien key: {delivered:?}"
        );
        assert_eq!(
            delivered.len() + self_delivered,
            1,
            "exactly-once delivery violated: drain={delivered:?}, self={self_delivered}"
        );
    });
}

/// Two registrants race the drain past the fixed capacity (capacity 1, so
/// the loser claims into the overflow chain — the recovery
/// re-registration path). Unique slots, both keys delivered exactly once.
#[test]
fn overflow_claims_race_drain_exactly_once_each() {
    loom::model(|| {
        let cells = Arc::new(NotifyCells::new(1));
        let status = Arc::new(AtomicU8::new(VISITED));
        let delivered_self = Arc::new(AtomicUsize::new(0));

        let regs: Vec<_> = [7i64, 9]
            .into_iter()
            .map(|key| {
                let (c, s, d) = (
                    Arc::clone(&cells),
                    Arc::clone(&status),
                    Arc::clone(&delivered_self),
                );
                loom::thread::spawn(move || {
                    if register(&c, &s, key) == 1 {
                        // ord: Relaxed — test-side tally, joined below.
                        d.fetch_add(key as usize, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        let mut drained = Vec::new();
        drain(&cells, &status, &mut drained);
        for r in regs {
            r.join().unwrap();
        }

        let total: usize = drained.iter().map(|&k| k as usize).sum::<usize>()
            + delivered_self.load(Ordering::Relaxed);
        assert_eq!(
            total,
            7 + 9,
            "each key once: drained={drained:?}, self-sum={}",
            delivered_self.load(Ordering::Relaxed)
        );
    });
}

/// Generation-tagged reset: `ResetNode` re-explores a task *without*
/// clearing its notify cells — consumed (TAKEN) slots stay consumed, and
/// the re-registration claims a fresh slot. A drain racing the fresh
/// registration must never re-deliver the old epoch's key and must
/// deliver the new one exactly once.
#[test]
fn reset_epoch_reuses_cells_without_redelivery() {
    loom::model(|| {
        let cells = Arc::new(NotifyCells::new(1));
        let status = Arc::new(AtomicU8::new(VISITED));

        // Epoch 1 (sequential prologue): key 7 registers and is consumed
        // — the pre-reset history baked into the reused cell array.
        let slot = cells.claim();
        cells.publish(slot, 7);
        assert!(cells.try_take(slot, 7));

        // Epoch 2: the reset restored bits/join, cells untouched. A fresh
        // registration (key 9, claims past the consumed slot) races the
        // producer's drain.
        let (c2, s2) = (Arc::clone(&cells), Arc::clone(&status));
        let registrant = loom::thread::spawn(move || register(&c2, &s2, 9));

        let mut drained = Vec::new();
        drain(&cells, &status, &mut drained);
        let self_delivered = registrant.join().unwrap();

        assert!(
            !drained.contains(&7),
            "consumed slot re-delivered after reset: {drained:?}"
        );
        assert_eq!(
            drained.iter().filter(|&&k| k == 9).count() + self_delivered,
            1,
            "fresh registration not delivered exactly once: drain={drained:?}, \
             self={self_delivered}"
        );
    });
}
