//! Offline shim for the `criterion` crate.
//!
//! The workspace builds with no network and no crates.io mirror, so the
//! external `criterion` dependency is replaced by this in-repo shim
//! (pointed at via a path dependency in the workspace `Cargo.toml`). The
//! bench files compile and run unchanged; measurement is a plain
//! wall-clock sampler (median/mean over `sample_size` samples) with none
//! of criterion's statistics, HTML reports, or change detection.
//!
//! When invoked under `cargo test` (criterion's `--test` mode), each
//! benchmark body runs exactly once as a smoke test.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export location matching `criterion::black_box`.
pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level handle handed to each registered bench function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            10,
            Duration::from_secs(3),
            Duration::from_secs(1),
            &mut f,
        );
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Benchmark a routine with no external input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            id,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Close the group (printing is incremental; nothing left to do).
    pub fn finish(&mut self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: if test_mode() {
            None
        } else {
            Some(measurement_time)
        },
        warm_up: if test_mode() {
            Duration::ZERO
        } else {
            warm_up_time
        },
        sample_size: if test_mode() { 1 } else { sample_size },
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{label}: no samples (bencher.iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    eprintln!(
        "{label}: median {median:?}  mean {mean:?}  ({} samples)",
        b.samples.len()
    );
}

/// Timing handle passed to each benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Option<Duration>,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting up to `sample_size` samples within the
    /// measurement budget (once in `--test` mode).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if let Some(budget) = self.budget {
                if started.elapsed() > budget {
                    break;
                }
            }
        }
    }
}

/// Register bench functions under a group name, mirroring criterion's
/// macro of the same name (simple `name, fn…` form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("id", 7), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
