//! The fault-tolerant scheduler — Figure 2 with the shaded additions.
//!
//! [`FtScheduler`] is [`Engine<FtRecovery>`]: the shared traversal of
//! [`super::engine`] instantiated with the policy that restores every
//! shaded line of Figure 2, exactly as the paper introduces them:
//!
//! * every descriptor/data access inside a traversal phase is guarded
//!   (Cilk++ try/catch becomes `Result` + `match`);
//! * task keys and **life numbers** are threaded through the call stack
//!   rather than read from (possibly corrupt) descriptors;
//! * `NotifyOnce` consults the per-predecessor **bit vector** before
//!   decrementing the join counter (Guarantee 3);
//! * catch blocks invoke the recovery routines of Figure 3 (implemented in
//!   [`super::recovery`]).
//!
//! Fault injection happens at the three lifecycle points of Section VI
//! (before compute / after compute / after notify) by consulting the run's
//! [`FaultPlan`].

use super::engine::{Engine, FtPolicy};
use crate::fault::{Fault, FaultKind};
use crate::graph::{Key, TaskGraph};
use crate::inject::{FaultPlan, Phase};
use crate::task::{FtDesc, Status};
use crate::trace::{Event, Trace};
use ft_cmap::ShardedMap;
use ft_steal::arena::ArenaRef;
use ft_steal::pool::Scope;
use ft_sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The selective localized-recovery policy: guarded accesses, bit-vector
/// notification gating, fault-injection probes, Figure-3 recovery.
pub struct FtRecovery {
    /// The recovery table `R`: key → most recent life whose recovery has
    /// been initiated.
    pub(super) rtable: ShardedMap<u64>,
    pub(super) plan: Arc<FaultPlan>,
    pub(super) trace: Option<Arc<Trace>>,
    /// Mutation-testing switch: when set, `notify_once` ignores the bit
    /// vector and decrements the join counter on every notification —
    /// reintroducing exactly the duplicate-decrement bug Guarantee 3's bit
    /// vector exists to prevent. Tests flip it to prove the trace oracle
    /// catches a broken implementation. Never set in production paths.
    pub(super) sabotage_notify: AtomicBool,
    /// Mutation-testing switch for the PR-8 inline-chain path: when set,
    /// the engine's in-place successor notification skips
    /// `consume_notification` entirely — the bug a chain implementation
    /// that forgot the Guarantee-3 gate would have. Tests flip it to prove
    /// the oracle flags a broken inline-notify path.
    pub(super) sabotage_chain: AtomicBool,
    /// One-shot mutation-testing switch for the PR-9 notify cells: when
    /// set, the next registration claims its slot but drops the `Release`
    /// publish and the self-delivery fallback — a lost notification. Tests
    /// flip it to prove the oracle flags a quiesced-but-incomplete run.
    pub(super) sabotage_cell: AtomicBool,
}

impl FtRecovery {
    fn new(plan: Arc<FaultPlan>, trace: Option<Arc<Trace>>) -> Self {
        FtRecovery {
            rtable: ShardedMap::with_shards(64),
            plan,
            trace,
            sabotage_notify: AtomicBool::new(false),
            sabotage_chain: AtomicBool::new(false),
            sabotage_cell: AtomicBool::new(false),
        }
    }
}

impl FtPolicy for FtRecovery {
    type Desc = FtDesc;
    type Err = Fault;

    fn make_desc(&self, graph: &dyn TaskGraph, key: Key, scratch: &mut Vec<Key>) -> FtDesc {
        graph.predecessors_into(key, scratch);
        FtDesc::new(key, 1, scratch, graph.out_degree(key))
    }

    #[inline]
    fn emit(&self, worker: Option<usize>, event: Event) {
        if let Some(t) = &self.trace {
            t.record_from(worker, event);
        }
    }

    #[inline]
    fn check(d: &FtDesc) -> Result<(), Fault> {
        d.check()
    }

    #[inline]
    fn read_status(d: &FtDesc) -> Result<Status, Fault> {
        d.try_status()
    }

    fn check_dependable(b: &FtDesc) -> Result<(), Fault> {
        b.check()?;
        // ord: Acquire — observing the overwrite flag must also see the
        // recovery writes that set it, so the fault report is coherent.
        if b.overwritten.load(Ordering::Acquire) {
            // "if (B.overwritten) throw"
            return Err(Fault {
                source: b.key,
                kind: FaultKind::Overwritten,
                life: b.life,
            });
        }
        Ok(())
    }

    /// Unset the bit for `pkey`; consume only if the bit was set.
    fn consume_notification(
        engine: &Engine<Self>,
        a: &FtDesc,
        key: Key,
        pkey: Key,
        life: u64,
        worker: Option<usize>,
    ) -> Result<bool, Fault> {
        let ind = a
            .pred_index(pkey)
            .ok_or_else(|| Fault::descriptor(key, life))?;
        // ord: Relaxed — sabotage flags are test-campaign switches set
        // before the run starts; no data is published through them.
        let sabotaged = engine.policy.sabotage_notify.load(Ordering::Relaxed);
        if a.bits.unset(ind) || sabotaged {
            Ok(true)
        } else {
            // Duplicate notification absorbed (Guarantee 3).
            engine.metrics.duplicate_notifications.add(worker);
            engine.policy.emit(
                worker,
                Event::DuplicateNotify {
                    key,
                    life,
                    pred: pkey,
                },
            );
            Ok(false)
        }
    }

    #[inline]
    fn join_underflow_ok(&self) -> bool {
        // ord: Relaxed — mutation-testing switches set before the run.
        self.sabotage_notify.load(Ordering::Relaxed) || self.sabotage_chain.load(Ordering::Relaxed)
    }

    #[inline]
    fn sabotage_chain(&self) -> bool {
        // ord: Relaxed — mutation-testing switch set before the run.
        self.sabotage_chain.load(Ordering::Relaxed)
    }

    #[inline]
    fn sabotage_cell(&self) -> bool {
        // One-shot: exactly one registration loses its publish.
        // ord: Relaxed — single mutation-testing flag; the swap only
        // guarantees at-most-one winner, no data is released through it.
        self.sabotage_cell.load(Ordering::Relaxed)
            && self.sabotage_cell.swap(false, Ordering::Relaxed)
    }

    #[inline]
    fn is_recovery_exec(d: &FtDesc) -> bool {
        // ord: Relaxed — set before the recovery descriptor is published
        // to the scheduler; readers piggyback on that Release edge.
        d.is_recovery.load(Ordering::Relaxed)
    }

    fn probe(engine: &Engine<Self>, a: &FtDesc, key: Key, phase: Phase, worker: Option<usize>) {
        if engine.policy.plan.fire(key, phase) {
            engine.poison_task(a, phase, worker);
        }
    }

    fn compute_error(engine: &Engine<Self>, f: Fault) -> Fault {
        // ord: Relaxed — statistics counters read at quiescence.
        engine
            .metrics
            .compute_faults
            .fetch_add(1, Ordering::Relaxed);
        if f.kind == FaultKind::Overwritten {
            // ord: Relaxed — statistics counter read at quiescence.
            engine
                .metrics
                .overwrite_faults
                .fetch_add(1, Ordering::Relaxed);
        }
        f
    }

    /// catch { RecoverTaskOnce(key, life) }
    fn on_guard_fault(engine: &Arc<Engine<Self>>, s: &Scope<'_>, f: Fault, key: Key, life: u64) {
        engine.policy.emit(
            s.worker_index(),
            Event::FaultObserved {
                source: f.source,
                kind: f.kind,
            },
        );
        engine.recover_task_once(s, key, life);
    }

    fn on_compute_fault(
        engine: &Arc<Engine<Self>>,
        s: &Scope<'_>,
        a: ArenaRef<FtDesc>,
        key: Key,
        life: u64,
        f: Fault,
    ) {
        engine.policy.emit(
            s.worker_index(),
            Event::FaultObserved {
                source: f.source,
                kind: f.kind,
            },
        );
        if f.source == key {
            // "if (error in A) RecoverTaskOnce(key, life)"
            engine.recover_task_once(s, key, life);
        } else {
            // Error in an input. Mark the source so other traversals
            // observe the detected error ("once an error is detected, all
            // subsequent accesses to that object will observe the error"),
            // initiate its recovery, then process A anew.
            let src_life = match engine.get_task(f.source) {
                Some((src, sl)) => {
                    match f.kind {
                        // ord: Release — publishes the fault verdict so a
                        // dependent's Acquire check sees why it failed.
                        FaultKind::Overwritten => src.overwritten.store(true, Ordering::Release),
                        _ => src.poisoned.store(true, Ordering::Release),
                    }
                    sl
                }
                None => f.life.max(1),
            };
            engine.recover_task_once(s, f.source, src_life);
            engine.reset_node(s, a, key, life);
        }
    }
}

/// The fault-tolerant NABBIT scheduler.
pub type FtScheduler = Engine<FtRecovery>;

impl Engine<FtRecovery> {
    /// Scheduler with no planned faults.
    pub fn new(graph: Arc<dyn TaskGraph>) -> Arc<Self> {
        Self::with_plan(graph, Arc::new(FaultPlan::none()))
    }

    /// Scheduler with a fault-injection plan. One scheduler = one run.
    pub fn with_plan(graph: Arc<dyn TaskGraph>, plan: Arc<FaultPlan>) -> Arc<Self> {
        Engine::with_policy(graph, FtRecovery::new(plan, None))
    }

    /// Scheduler with a fault plan and an execution trace recorder.
    pub fn with_plan_traced(
        graph: Arc<dyn TaskGraph>,
        plan: Arc<FaultPlan>,
        trace: Arc<Trace>,
    ) -> Arc<Self> {
        Engine::with_policy(graph, FtRecovery::new(plan, Some(trace)))
    }

    /// Fully general constructor: fault plan, optional trace recorder, and
    /// scheduling options (priority pop order, deadline monitor).
    pub fn with_opts(
        graph: Arc<dyn TaskGraph>,
        plan: Arc<FaultPlan>,
        trace: Option<Arc<Trace>>,
        opts: super::SchedOpts,
    ) -> Arc<Self> {
        Engine::with_policy_opts(graph, FtRecovery::new(plan, trace), opts)
    }

    /// Disable the Guarantee-3 bit-vector check (mutation testing only).
    ///
    /// With this set, duplicate notifications decrement the join counter
    /// instead of being absorbed, so a task can become ready before all its
    /// predecessors computed. The trace oracle must flag such a run as a
    /// G3 violation; see `tests/det_campaigns.rs`.
    #[doc(hidden)]
    pub fn sabotage_notify_bitvec(&self) {
        // ord: Relaxed — mutation-testing switch armed before the run.
        self.policy.sabotage_notify.store(true, Ordering::Relaxed);
    }

    /// Break the inline-chain notification gate (mutation testing only).
    ///
    /// With this set, the engine's in-place delivery of notify-array
    /// entries (the PR-8 inline-chain site) bypasses the bit-vector check,
    /// so re-delivered notifications under faults double-decrement the
    /// join counter. The trace oracle must flag such a run as a G3
    /// violation; see `tests/det_campaigns.rs`.
    #[doc(hidden)]
    pub fn sabotage_inline_chain(&self) {
        // ord: Relaxed — mutation-testing switch armed before the run.
        self.policy.sabotage_chain.store(true, Ordering::Relaxed);
    }

    /// Drop one notify-cell publish (mutation testing only).
    ///
    /// With this set, exactly one registration claims its slot in the
    /// predecessor's notify cells but never publishes its key — and skips
    /// the self-delivery fallback — so one notification is lost and the
    /// successor's join counter never reaches zero. The run quiesces with
    /// an incomplete sink; the trace oracle must flag it as a G4
    /// violation; see `tests/det_campaigns.rs`.
    #[doc(hidden)]
    pub fn sabotage_notify_cell(&self) {
        // ord: Relaxed — mutation-testing switch armed before the run.
        self.policy.sabotage_cell.store(true, Ordering::Relaxed);
    }

    /// Number of entries in the recovery table (≥1 failure observed).
    pub fn recovery_table_len(&self) -> usize {
        self.policy.rtable.len()
    }

    /// Per-task execution counts N(A) after a run (Section V's `N`
    /// function) — used by the Theorem 2 bound evaluation.
    pub fn exec_counts(&self) -> Vec<(Key, u64)> {
        self.metrics.exec_counts.entries()
    }

    /// Poison a task: descriptor flag plus every output block version ("a
    /// fault affects both a task and the data blocks it has computed").
    pub(super) fn poison_task(&self, desc: &FtDesc, phase: Phase, worker: Option<usize>) {
        // ord: Release — the poison flag must publish after the injected
        // fault's effects so dependents observe a consistent error state.
        desc.poisoned.store(true, Ordering::Release);
        self.graph.poison_outputs(desc.key);
        // ord: Relaxed — statistics counter read at quiescence.
        self.metrics.injected.fetch_add(1, Ordering::Relaxed);
        self.policy.emit(
            worker,
            Event::Injected {
                key: desc.key,
                phase,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ComputeCtx;
    use ft_steal::pool::{Pool, PoolConfig};
    use parking_lot::Mutex;
    use std::collections::HashSet;

    /// Same wavefront grid as the baseline tests.
    struct Grid {
        n: i64,
        computed: Mutex<Vec<Key>>,
    }

    impl Grid {
        fn new(n: i64) -> Self {
            Grid {
                n,
                computed: Mutex::new(Vec::new()),
            }
        }
    }

    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut su = Vec::new();
            if i + 1 < self.n {
                su.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                su.push(i * self.n + (j + 1));
            }
            su
        }
        fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            self.computed.lock().push(k);
            Ok(())
        }
    }

    #[test]
    fn fault_free_run_matches_baseline_behaviour() {
        let g = Arc::new(Grid::new(16));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 256);
        assert_eq!(report.re_executions, 0);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.injected, 0);
        let order = g.computed.lock();
        let unique: HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 256);
    }

    #[test]
    fn fault_free_respects_dependence_order() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        let order = g.computed.lock();
        let pos: std::collections::HashMap<Key, usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for &k in order.iter() {
            for p in g.predecessors(k) {
                assert!(pos[&p] < pos[&k], "pred {p} must precede {k}");
            }
        }
    }

    #[test]
    fn before_compute_fault_recovers_without_reexecution() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(27, Phase::BeforeCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        assert_eq!(report.recoveries, 1);
        // Before-compute: no computed work lost, so every task computes
        // exactly once ("does not result in task re-execution overhead").
        assert_eq!(report.re_executions, 0);
        assert_eq!(report.computes, 64);
    }

    #[test]
    fn after_compute_fault_reexecutes_exactly_one_task() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(27, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.re_executions, 1, "the failed task recomputes");
        assert_eq!(report.computes, 65);
        assert_eq!(report.distinct_tasks_executed, 64);
    }

    #[test]
    fn sink_fault_is_recovered() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let sink = g.sink();
        let plan = Arc::new(FaultPlan::single(sink, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed, "sink recovered and completed");
        assert_eq!(report.re_executions, 1);
    }

    #[test]
    fn source_fault_is_recovered() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(0, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn many_faults_all_recovered() {
        let g = Arc::new(Grid::new(16));
        let pool = Pool::new(PoolConfig::with_threads(8));
        let keys: Vec<Key> = (0..256).collect();
        let plan = Arc::new(FaultPlan::sample(&keys, 64, Phase::AfterCompute, 7));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 256);
        // Every injected fault implies at least the failed task recomputing
        // (observed counts can exceed 64 if a recovery raced a traversal).
        assert!(
            report.re_executions >= 64,
            "re-exec {}",
            report.re_executions
        );
    }

    #[test]
    fn repeated_faults_on_same_task_recursively_recovered() {
        // Guarantee 6: failures during recovery are recovered. Fire 5 times
        // on the same task across incarnations.
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::new([crate::inject::FaultSite {
            key: 27,
            phase: Phase::AfterCompute,
            fires: 5,
        }]));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 5);
        assert!(report.recoveries >= 5);
        assert_eq!(report.re_executions, 5);
    }

    #[test]
    fn all_tasks_fail_once_still_completes() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::new(
            (0..64).map(|k| crate::inject::FaultSite::once(k, Phase::AfterCompute)),
        ));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 64);
        assert!(report.re_executions >= 64);
    }

    #[test]
    fn single_thread_recovery_works() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(1));
        let keys: Vec<Key> = (0..64).collect();
        let plan = Arc::new(FaultPlan::sample(&keys, 16, Phase::AfterCompute, 3));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 16);
    }

    #[test]
    fn after_notify_faults_may_go_unobserved() {
        // "a failed task whose successors already have been computed is not
        // recovered, because no other task attempts to access such a task".
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let plan = Arc::new(FaultPlan::single(0, Phase::AfterNotify));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        // The grid graph has no data blocks, so nothing revisits task 0
        // unless a traversal races; recovery count is 0 or small.
        assert!(report.re_executions <= 1);
    }

    #[test]
    fn before_compute_faults_everywhere() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan =
            Arc::new(FaultPlan::new((0..64).map(|k| {
                crate::inject::FaultSite::once(k, Phase::BeforeCompute)
            })));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 64);
        assert_eq!(report.re_executions, 0, "no computed work was lost");
    }

    #[test]
    fn corrupt_status_byte_is_detected_and_recovered() {
        // Satellite: a smashed status byte must surface as a descriptor
        // fault, not a spuriously finished task. Poison the sink's status
        // byte after the run and check the engine's view of completion.
        let g = Arc::new(Grid::new(4));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let sched = FtScheduler::new(Arc::clone(&g) as _);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        let (sd, _) = sched.get_task(g.sink()).unwrap();
        sd.status.store(0xEE, ft_sync::atomic::Ordering::Release);
        assert!(sd.try_status().is_err(), "smashed byte is a detected fault");
        // Re-reading completion must *not* decode the corrupt byte as
        // Completed (the old `from_u8` mapped any garbage to Completed).
        let report2 = sched.run(&pool);
        assert!(!report2.sink_completed);
    }
}
