//! Floyd-Warshall — blocked all-pairs shortest paths with two-version
//! data blocks.
//!
//! The classic Gauss-Seidel blocked FW: round `k` first updates the
//! diagonal tile `(k,k)`, then row-`k` and column-`k` tiles against the
//! fresh diagonal, then every remaining tile against the fresh row/column
//! tiles. Task `(k,i,j)` produces **version `k+1`** of block `(i,j)`
//! (version 0 is the pinned, resilient input).
//!
//! Following Section VI, "we adapted the implementation to retain two
//! versions per data block, doubling the memory requirement, to minimize
//! the impact of cascading recomputation" — retention is `KeepLast(2)`
//! by default; [`Fw::with_single_version`] builds the one-version ablation
//! (longer recovery chains, the configuration the paper moved away from).
//!
//! ## Anti-dependence edges
//!
//! Publishing version `k+1` of block `(i,j)` evicts version `k+1−keep`.
//! The evicted version's remaining readers are the round-`k−keep` tasks
//! that read row/column `k−keep` blocks, so tasks in tile row/column
//! `k−keep` carry an extra predecessor row/column (≈`2·nb²` edges per
//! round). These are the edges that reconcile our edge count with the
//! paper's Table I figure for FW (E = 308,880 at nb = 40: ~187k data-flow
//! edges + ~122k anti edges).

use crate::common::{keys, AppConfig, BenchApp, VerifyOutcome, VersionClass};
use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use std::sync::Arc;

/// Blocked Floyd-Warshall benchmark instance.
pub struct Fw {
    cfg: AppConfig,
    /// Retained versions per block (2 = paper configuration, 1 = ablation).
    keep: usize,
    /// First round this instance executes (0 for a fresh run; > 0 when
    /// resumed from a checkpoint snapshot — the checkpointing complement
    /// the paper's related-work section positions against).
    first_round: usize,
    /// Last round this instance executes (defaults to nb − 1).
    last_round: usize,
    store: BlockStore<f64>,
}

impl Fw {
    /// Paper configuration: two versions per block.
    pub fn new(cfg: AppConfig) -> Self {
        Self::with_keep(cfg, 2)
    }

    /// Ablation configuration: a single version per block (plain reuse,
    /// maximal cascading recomputation on recovery).
    pub fn with_single_version(cfg: AppConfig) -> Self {
        Self::with_keep(cfg, 1)
    }

    /// Single-assignment configuration: every version retained (the other
    /// strategy Section VI evaluates — no anti-dependence edges, no
    /// eviction, recovery never cascades; memory grows with the round
    /// count).
    pub fn single_assignment(cfg: AppConfig) -> Self {
        Self::with_keep(cfg, 0)
    }

    fn with_keep(cfg: AppConfig, keep: usize) -> Self {
        assert!(keep <= 2, "keep must be 0 (keep-all), 1 or 2");
        let nb = cfg.nb();
        let retention = if keep == 0 {
            Retention::KeepAll
        } else {
            Retention::KeepLast(keep as u64)
        };
        let store = BlockStore::new(nb * nb, retention);
        let dist = crate::common::random_matrix(cfg.n, 1.0, 10.0, cfg.seed);
        let mut dist = dist;
        for d in 0..cfg.n {
            dist[d * cfg.n + d] = 0.0;
        }
        for ti in 0..nb {
            for tj in 0..nb {
                let tile = crate::common::extract_tile(&dist, cfg.n, cfg.b, ti, tj);
                store.publish_pinned(ti * nb + tj, 0, tile);
            }
        }
        let last_round = nb - 1;
        Fw {
            cfg,
            keep,
            first_round: 0,
            last_round,
            store,
        }
    }

    /// Resume from a checkpoint: `tiles[bid]` is the state of each block
    /// *entering* round `first_round` (as returned by
    /// [`Fw::snapshot_tiles`] on an instance that ran the earlier rounds).
    /// The restored state is pinned (resilient), exactly like fresh inputs.
    pub fn resumed(cfg: AppConfig, first_round: usize, tiles: Vec<Vec<f64>>) -> Self {
        let nb = cfg.nb();
        assert!(first_round < nb, "first_round {first_round} out of range");
        assert_eq!(tiles.len(), nb * nb, "one tile per block");
        let store = BlockStore::new(nb * nb, Retention::KeepLast(2));
        for (bid, tile) in tiles.into_iter().enumerate() {
            assert_eq!(tile.len(), cfg.b * cfg.b, "tile {bid} has wrong shape");
            store.publish_pinned(bid, first_round as u64, tile);
        }
        Fw {
            cfg,
            keep: 2,
            first_round,
            last_round: nb - 1,
            store,
        }
    }

    /// Snapshot the state entering `round`: version `round` of every block.
    /// Valid while those versions are resident (run the instance only up to
    /// round `round − 1`, or snapshot promptly under `KeepLast(2)`).
    /// Returns `None` if any needed version has been evicted or poisoned.
    pub fn snapshot_tiles(&self, round: usize) -> Option<Vec<Vec<f64>>> {
        let nb = self.nb();
        let mut out = Vec::with_capacity(nb * nb);
        for bid in 0..nb * nb {
            out.push(self.store.read(bid, round as u64).ok()?.as_ref().clone());
        }
        Some(out)
    }

    /// Build an instance that only executes rounds `0..=last_round` (for
    /// producing checkpoints). Retention must keep the final versions:
    /// the run ends with every block at version `last_round + 1`.
    pub fn prefix(cfg: AppConfig, last_round: usize) -> Self {
        let mut fw = Self::with_keep(cfg, 2);
        assert!(last_round < cfg.nb());
        fw.last_round = last_round;
        fw
    }

    fn nb(&self) -> usize {
        self.cfg.nb()
    }

    fn bid(&self, i: usize, j: usize) -> usize {
        i * self.nb() + j
    }

    fn key(k: usize, i: usize, j: usize) -> Key {
        keys::encode(0, k, i, j)
    }

    /// Read a final-round tile (version `last_round + 1`). `None` before
    /// completion.
    pub fn final_tile(&self, i: usize, j: usize) -> Option<Arc<Vec<f64>>> {
        self.store
            .read(self.bid(i, j), (self.last_round + 1) as u64)
            .ok()
    }

    /// Independent reference: unblocked Floyd-Warshall on the same input.
    pub fn reference(&self) -> Vec<f64> {
        let n = self.cfg.n;
        let mut d = crate::common::random_matrix(n, 1.0, 10.0, self.cfg.seed);
        for x in 0..n {
            d[x * n + x] = 0.0;
        }
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                for j in 0..n {
                    let via = dik + d[k * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        d
    }
}

impl TaskGraph for Fw {
    fn sink(&self) -> Key {
        // Artificial convention: the final task to complete transitively is
        // the last round's diagonal-last tile. All round-(nb-1) tasks feed
        // into it transitively? They do not — so we use a dedicated sink:
        // task (nb-1, nb-1, nb-1) does NOT depend on every (nb-1,i,j).
        // Instead we add a synthetic sink task with tag 1 depending on every
        // round-(nb-1) task.
        keys::encode(1, 0, 0, 0)
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let nb = self.nb();
        if tag == 1 {
            // Synthetic sink: depends on every last-round task.
            let k = self.last_round;
            return (0..nb)
                .flat_map(|i| (0..nb).map(move |j| Self::key(k, i, j)))
                .collect();
        }
        let mut p = Vec::new();
        let base = self.first_round;
        // Data-flow predecessors (round `base` reads pinned restored state).
        if i == k && j == k {
            if k > base {
                p.push(Self::key(k - 1, k, k));
            }
        } else if i == k {
            p.push(Self::key(k, k, k));
            if k > base {
                p.push(Self::key(k - 1, k, j));
            }
        } else if j == k {
            p.push(Self::key(k, k, k));
            if k > base {
                p.push(Self::key(k - 1, i, k));
            }
        } else {
            p.push(Self::key(k, i, k));
            p.push(Self::key(k, k, j));
            if k > base {
                p.push(Self::key(k - 1, i, j));
            }
        }
        // Anti-dependence predecessors: we evict version (k+1) − keep of
        // block (i,j); its round-(k−keep) readers must have finished.
        // (Single-assignment — keep == 0 — never evicts, so no anti edges.)
        if self.keep > 0 && k >= base + self.keep {
            let kr = k - self.keep; // reader round
            if i == kr {
                for r in 0..nb {
                    let q = Self::key(kr, r, j);
                    if !p.contains(&q) {
                        p.push(q);
                    }
                }
            }
            if j == kr {
                for c in 0..nb {
                    let q = Self::key(kr, i, c);
                    if !p.contains(&q) {
                        p.push(q);
                    }
                }
            }
        }
        p
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let nb = self.nb();
        if tag == 1 {
            return vec![];
        }
        let mut s = Vec::new();
        // Data-flow successors.
        if i == k && j == k {
            for j2 in 0..nb {
                if j2 != k {
                    s.push(Self::key(k, k, j2));
                }
            }
            for i2 in 0..nb {
                if i2 != k {
                    s.push(Self::key(k, i2, k));
                }
            }
        } else if i == k {
            // Row tile (k, j): read by every rest task in column j.
            for i2 in 0..nb {
                if i2 != k {
                    s.push(Self::key(k, i2, j));
                }
            }
        } else if j == k {
            for j2 in 0..nb {
                if j2 != k {
                    s.push(Self::key(k, i, j2));
                }
            }
        }
        if k < self.last_round {
            let q = Self::key(k + 1, i, j);
            if !s.contains(&q) {
                s.push(q);
            }
        } else {
            s.push(keys::encode(1, 0, 0, 0));
        }
        // Anti-dependence successors: we are a round-k task reading
        // row/col-k blocks; the evictors at round k + keep in our row or
        // column depend on us.
        let ke = k + self.keep; // evictor round
        if self.keep > 0 && ke <= self.last_round {
            let q = Self::key(ke, k, j);
            if !s.contains(&q) {
                s.push(q);
            }
            let q = Self::key(ke, i, k);
            if !s.contains(&q) {
                s.push(q);
            }
        }
        s
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let (tag, k, i, j) = keys::decode(key);
        if tag == 1 {
            return Ok(()); // synthetic sink does no work
        }
        let b = self.cfg.b;
        let v = k as u64; // input version
        let read = |bi: usize, bj: usize, ver: u64| {
            self.store
                .read(self.bid(bi, bj), ver)
                .map_err(|e| e.into_fault())
        };

        let out: Vec<f64> = if i == k && j == k {
            // Diagonal: in-tile FW.
            let mut d = read(k, k, v)?.as_ref().clone();
            for t in 0..b {
                for u in 0..b {
                    let dut = d[u * b + t];
                    for w in 0..b {
                        let via = dut + d[t * b + w];
                        if via < d[u * b + w] {
                            d[u * b + w] = via;
                        }
                    }
                }
            }
            d
        } else if i == k {
            // Row tile: B = min(B, D · B) with fresh diagonal D.
            let mut m = read(k, j, v)?.as_ref().clone();
            let d = read(k, k, v + 1)?;
            for t in 0..b {
                for u in 0..b {
                    let dut = d[u * b + t];
                    for w in 0..b {
                        let via = dut + m[t * b + w];
                        if via < m[u * b + w] {
                            m[u * b + w] = via;
                        }
                    }
                }
            }
            m
        } else if j == k {
            // Column tile: A = min(A, A · D).
            let mut m = read(i, k, v)?.as_ref().clone();
            let d = read(k, k, v + 1)?;
            for t in 0..b {
                for u in 0..b {
                    let aut = m[u * b + t];
                    for w in 0..b {
                        let via = aut + d[t * b + w];
                        if via < m[u * b + w] {
                            m[u * b + w] = via;
                        }
                    }
                }
            }
            m
        } else {
            // Rest tile: C = min(C, A_row · B_col) with fresh row/col tiles.
            let mut c = read(i, j, v)?.as_ref().clone();
            let a = read(i, k, v + 1)?;
            let rb = read(k, j, v + 1)?;
            for t in 0..b {
                for u in 0..b {
                    let aut = a[u * b + t];
                    for w in 0..b {
                        let via = aut + rb[t * b + w];
                        if via < c[u * b + w] {
                            c[u * b + w] = via;
                        }
                    }
                }
            }
            c
        };
        self.store.publish(self.bid(i, j), v + 1, key, out);
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        let (tag, k, i, j) = keys::decode(key);
        if tag == 0 {
            self.store.poison(self.bid(i, j), (k + 1) as u64);
        }
    }
}

impl BenchApp for Fw {
    fn name(&self) -> &'static str {
        "FW"
    }

    fn config(&self) -> AppConfig {
        self.cfg
    }

    fn all_tasks(&self) -> Vec<Key> {
        let nb = self.nb();
        let mut v: Vec<Key> = (self.first_round..=self.last_round)
            .flat_map(|k| (0..nb).flat_map(move |i| (0..nb).map(move |j| Self::key(k, i, j))))
            .collect();
        v.push(self.sink());
        v
    }

    fn tasks_of_class(&self, class: VersionClass) -> Vec<Key> {
        let nb = self.nb();
        let round = |k: usize| -> Vec<Key> {
            (0..nb)
                .flat_map(|i| (0..nb).map(move |j| Self::key(k, i, j)))
                .collect()
        };
        let _ = nb;
        match class {
            VersionClass::First => round(self.first_round),
            VersionClass::Last => round(self.last_round),
            VersionClass::Rand => {
                let mut v = Vec::new();
                for k in self.first_round..=self.last_round {
                    v.extend(round(k));
                }
                v
            }
        }
    }

    fn verify_detailed(&self) -> Result<VerifyOutcome, String> {
        assert!(
            self.first_round == 0 && self.last_round == self.nb() - 1,
            "verify() is defined for full runs; compare resumed runs \
             tile-by-tile against a full run instead"
        );
        let reference = self.reference();
        let nb = self.nb();
        let b = self.cfg.b;
        let mut checked = 0;
        let mut skipped = 0;
        for ti in 0..nb {
            for tj in 0..nb {
                match self.store.read(self.bid(ti, tj), nb as u64) {
                    Ok(got) => {
                        let want = crate::common::extract_tile(&reference, self.cfg.n, b, ti, tj);
                        let diff = crate::common::max_abs_diff(&got, &want);
                        if diff > 1e-9 {
                            return Err(format!("tile ({ti},{tj}) differs by {diff}"));
                        }
                        checked += 1;
                    }
                    Err(BlockError::Poisoned { .. }) => skipped += 1,
                    Err(e) => return Err(format!("final tile ({ti},{tj}): {e:?}")),
                }
            }
        }
        Ok(VerifyOutcome {
            checked,
            skipped_poisoned: skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
    use nabbit_ft::seq;

    #[test]
    fn sequential_matches_reference() {
        let app = Arc::new(Fw::new(AppConfig::new(64, 16)));
        seq::run(app.as_ref()).unwrap();
        app.verify().unwrap();
    }

    #[test]
    fn graph_shape_matches_paper_formulas() {
        // nb = 4: T = nb^3 + 1 (synthetic sink).
        let app = Fw::new(AppConfig::new(64, 16));
        let s = nabbit_ft::analysis::graph_stats(&app);
        assert_eq!(s.tasks, 64 + 1);
        // Critical path ≈ 3 per round (diag → row/col → rest) + sink.
        assert!(s.critical_path >= 3 * 4, "S = {}", s.critical_path);
    }

    #[test]
    fn pred_succ_symmetry() {
        let app = Fw::new(AppConfig::new(96, 16)); // nb = 6, keep = 2
        for &k in &app.all_tasks() {
            for p in app.predecessors(k) {
                assert!(app.successors(p).contains(&k), "pred/succ: {p} -> {k}");
            }
            for su in app.successors(k) {
                assert!(app.predecessors(su).contains(&k), "succ/pred: {k} -> {su}");
            }
        }
    }

    #[test]
    fn pred_succ_symmetry_single_version() {
        let app = Fw::with_single_version(AppConfig::new(80, 16)); // nb = 5
        for &k in &app.all_tasks() {
            for p in app.predecessors(k) {
                assert!(app.successors(p).contains(&k), "pred/succ: {p} -> {k}");
            }
            for su in app.successors(k) {
                assert!(app.predecessors(su).contains(&k), "succ/pred: {k} -> {su}");
            }
        }
    }

    #[test]
    fn no_duplicate_predecessors() {
        let app = Fw::new(AppConfig::new(96, 16));
        for &k in &app.all_tasks() {
            let p = app.predecessors(k);
            let mut q = p.clone();
            q.sort_unstable();
            q.dedup();
            assert_eq!(p.len(), q.len(), "duplicate preds for {k}: {p:?}");
        }
    }

    #[test]
    fn paper_table1_task_count_at_paper_scale() {
        // Table I: N=5K, B=128 → nb=40 (their rounding), T = 64000 = nb³.
        assert_eq!(40usize * 40 * 40, 64000);
    }

    #[test]
    fn parallel_baseline_matches_reference() {
        let app = Arc::new(Fw::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_without_faults_matches_reference() {
        let app = Arc::new(Fw::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.re_executions, 0);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_last_round_faults_chains_and_verifies() {
        let app = Arc::new(Fw::new(AppConfig::new(64, 16)));
        let last = app.tasks_of_class(VersionClass::Last);
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&last, 2, Phase::AfterCompute, 31));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed, "sink must complete despite chains");
        assert!(report.re_executions >= 2);
        app.verify().unwrap();
    }

    #[test]
    fn ft_single_version_ablation_verifies_under_faults() {
        let app = Arc::new(Fw::with_single_version(AppConfig::new(64, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 4, Phase::AfterCompute, 37));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_random_faults_all_phases_verify() {
        for (phase, seed) in [
            (Phase::BeforeCompute, 41),
            (Phase::AfterCompute, 43),
            (Phase::AfterNotify, 47),
        ] {
            let app = Arc::new(Fw::new(AppConfig::new(64, 16)));
            let keys = app.tasks_of_class(VersionClass::Rand);
            let pool = Pool::new(PoolConfig::with_threads(4));
            let plan = Arc::new(FaultPlan::sample(&keys, 6, phase, seed));
            let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
            assert!(report.sink_completed, "phase {phase:?}");
            // After-notify faults may legitimately leave never-revisited
            // blocks poisoned; everything checked must match.
            let o = app
                .verify_detailed()
                .unwrap_or_else(|e| panic!("phase {phase:?}: {e}"));
            assert!(
                o.skipped_poisoned as u64 <= report.injected,
                "phase {phase:?}: skipped {} > injected {}",
                o.skipped_poisoned,
                report.injected
            );
        }
    }

    #[test]
    fn evictions_happen_under_reuse() {
        let app = Arc::new(Fw::new(AppConfig::new(96, 16))); // nb=6 > keep
        seq::run(app.as_ref()).unwrap();
        assert!(app.store.evictions() > 0, "two-version reuse must evict");
        app.verify().unwrap();
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::FtScheduler;

    /// Run rounds 0..=r-1, snapshot, resume a fresh instance from round r,
    /// and compare against an uninterrupted full run.
    #[test]
    fn checkpoint_resume_matches_full_run() {
        let cfg = AppConfig::new(96, 16); // nb = 6
        let split = 3;
        let pool = Pool::new(PoolConfig::with_threads(4));

        // Uninterrupted full run (the oracle).
        let full = Arc::new(Fw::new(cfg));
        assert!(
            FtScheduler::new(Arc::clone(&full) as _)
                .run(&pool)
                .sink_completed
        );
        full.verify().unwrap();

        // Phase 1: rounds 0..=split-1, then checkpoint the state entering
        // round `split`.
        let prefix = Arc::new(Fw::prefix(cfg, split - 1));
        assert!(
            FtScheduler::new(Arc::clone(&prefix) as _)
                .run(&pool)
                .sink_completed
        );
        let snapshot = prefix
            .snapshot_tiles(split)
            .expect("version `split` resident after prefix run");

        // Phase 2: resume from the checkpoint ("increase the time between
        // checkpoints" — recovery handles faults inside the segment).
        let resumed = Arc::new(Fw::resumed(cfg, split, snapshot));
        let keys = resumed.tasks_of_class(VersionClass::Rand);
        let plan = Arc::new(FaultPlan::sample(&keys, 6, Phase::AfterCompute, 77));
        let report = FtScheduler::with_plan(Arc::clone(&resumed) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(
            report.injected, 6,
            "faults inside the segment are recovered"
        );

        // Final tiles of the resumed run match the uninterrupted run.
        let nb = cfg.nb();
        for ti in 0..nb {
            for tj in 0..nb {
                let a = full.final_tile(ti, tj).expect("full tile");
                let b = resumed.final_tile(ti, tj).expect("resumed tile");
                let diff = crate::common::max_abs_diff(&a, &b);
                assert!(diff <= 1e-12, "tile ({ti},{tj}) differs by {diff}");
            }
        }
    }

    #[test]
    fn prefix_run_produces_resident_snapshot() {
        let cfg = AppConfig::new(64, 16); // nb = 4
        let pool = Pool::new(PoolConfig::with_threads(2));
        let prefix = Arc::new(Fw::prefix(cfg, 1)); // rounds 0..=1
        assert!(
            FtScheduler::new(Arc::clone(&prefix) as _)
                .run(&pool)
                .sink_completed
        );
        // Versions 2 (and 1) are within the retention window.
        assert!(prefix.snapshot_tiles(2).is_some());
        // Version 0 is pinned input, always available.
        assert!(prefix.snapshot_tiles(0).is_some());
    }

    #[test]
    fn resumed_graph_shape_is_consistent() {
        let cfg = AppConfig::new(96, 16); // nb = 6
        let tiles = vec![vec![0.0; 16 * 16]; 36];
        let fw = Fw::resumed(cfg, 2, tiles);
        // Symmetry of pred/succ still holds on the truncated graph.
        for &k in &fw.all_tasks() {
            for p in fw.predecessors(k) {
                assert!(fw.successors(p).contains(&k), "pred/succ: {p} -> {k}");
            }
            for su in fw.successors(k) {
                assert!(fw.predecessors(su).contains(&k), "succ/pred: {k} -> {su}");
            }
        }
        // Round-2 tasks have no round-1 predecessors.
        let t = Fw::key(2, 3, 4);
        assert!(fw.predecessors(t).iter().all(|&p| keys::decode(p).1 >= 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn resume_rejects_bad_round() {
        let cfg = AppConfig::new(64, 16);
        let tiles = vec![vec![0.0; 256]; 16];
        let _ = Fw::resumed(cfg, 99, tiles);
    }
}
