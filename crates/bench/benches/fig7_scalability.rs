//! Criterion version of Figure 7: recovery overhead as the thread count
//! grows. Serial producer-chain re-execution limits recovery concurrency,
//! so the *relative* cost of a 5% loss grows with P while a small constant
//! loss stays flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_apps::{AppConfig, VersionClass};
use ft_bench::{make_app, run_ft, AppKind};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn fig7(c: &mut Criterion) {
    let kind = AppKind::Fw;
    let cfg = AppConfig::new(384, 48);
    let probe = make_app(kind, cfg);
    let candidates = probe.tasks_of_class(VersionClass::Rand);
    let total = probe.all_tasks().len();
    drop(probe);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut group = c.benchmark_group("fig7_scalability");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    let mut p_values = vec![1usize, 2, 4, cores.min(16)];
    p_values.sort_unstable();
    p_values.dedup();
    for p in p_values {
        let pool = Pool::new(PoolConfig::with_threads(p));
        for (label, count) in [("no-fault", 0usize), ("5pct", total / 20)] {
            let seed = AtomicU64::new(p as u64 * 100);
            group.bench_with_input(
                BenchmarkId::new(label, format!("P{p}")),
                &count,
                |b, &count| {
                    b.iter(|| {
                        let app = make_app(kind, cfg);
                        let plan = FaultPlan::sample(
                            &candidates,
                            count,
                            Phase::AfterCompute,
                            seed.fetch_add(1, Ordering::Relaxed),
                        );
                        assert!(run_ft(&pool, app, plan).sink_completed);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
