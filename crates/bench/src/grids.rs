//! Synthetic scheduler-bound graphs shared by the `bench_pr*` snapshot
//! binaries.

use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};

/// A wavefront grid with trivial compute: throughput on it is pure
/// traversal-engine overhead (descriptor creation, notification, join
/// counters) — the path hot-path changes must not regress.
pub struct EmptyGrid {
    /// Side length; the graph has `n * n` tasks.
    pub n: i64,
}

impl TaskGraph for EmptyGrid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edges_are_consistent() {
        let g = EmptyGrid { n: 4 };
        assert_eq!(g.sink(), 15);
        assert_eq!(g.predecessors(0), Vec::<Key>::new());
        assert_eq!(g.predecessors(5), vec![1, 4]);
        assert_eq!(g.successors(5), vec![9, 6]);
        // Symmetry: k is a successor of each of its predecessors.
        for k in 0..16 {
            for p in g.predecessors(k) {
                assert!(g.successors(p).contains(&k));
            }
        }
    }
}
