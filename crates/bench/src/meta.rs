//! Run metadata shared by the `bench_pr*` snapshot binaries: environment
//! overrides and the git revision, recorded into every emitted JSON so a
//! checked-in reference file says exactly how it was produced.

/// Whether the `bench_pr*` snapshot binaries construct **one resident
/// worker pool** and reuse it across every rep and workload (as opposed to
/// spinning a pool up per measurement). All snapshot binaries have worked
/// this way since PR 2 — the pool outlives every timed region, so thread
/// spawn/join never pollutes a sample — and each binary records the fact in
/// its emitted JSON so checked-in references are explicit about it.
/// `bench_pr7` additionally *measures* the spin-up-per-graph alternative as
/// its baseline.
pub const POOL_REUSE: bool = true;

/// Read a `usize` override from the environment, falling back to
/// `default`. CLI flags take precedence over the environment, so callers
/// resolve `default → env → flag` in that order.
pub fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

/// Parsed command line shared by every `bench_pr*` snapshot binary:
/// `default → FT_BENCH_REPS / FT_BENCH_THREADS → flag` resolution for the
/// rep/thread knobs, the output path, and the `--check --ref PATH` gate
/// switches. Binaries without a gate simply never read `check`/`reference`.
pub struct SnapshotCli {
    pub reps: usize,
    pub threads: usize,
    pub out: String,
    pub check: bool,
    pub reference: Option<String>,
}

/// Parse the standard snapshot flags (`--reps --threads --out --check
/// --ref`); any other flag prints `usage` and exits 2.
pub fn parse_args(usage: &str, default_threads: usize, default_out: &str) -> SnapshotCli {
    parse_args_with(usage, default_threads, default_out, |_, _| false)
}

/// [`parse_args`] with binary-specific flags: `extra` is offered every
/// unrecognized flag together with the argument iterator (to consume a
/// value) and returns whether it handled it.
pub fn parse_args_with(
    usage: &str,
    default_threads: usize,
    default_out: &str,
    mut extra: impl FnMut(&str, &mut dyn Iterator<Item = String>) -> bool,
) -> SnapshotCli {
    let mut cli = SnapshotCli {
        reps: env_usize("FT_BENCH_REPS", 5),
        threads: env_usize("FT_BENCH_THREADS", default_threads),
        out: default_out.to_string(),
        check: false,
        reference: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => cli.reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--threads" => {
                cli.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads T")
            }
            "--out" => cli.out = args.next().expect("--out PATH"),
            "--check" => cli.check = true,
            "--ref" => cli.reference = Some(args.next().expect("--ref PATH")),
            other => {
                if !extra(other, &mut args) {
                    eprintln!("unknown arg {other}; usage: {usage}");
                    std::process::exit(2);
                }
            }
        }
    }
    cli
}

/// The JSON header fields every snapshot schema shares, pre-indented for
/// splicing as the first lines of the emitted object.
pub fn json_header(schema: &str, threads: usize, reps: usize) -> String {
    format!(
        "  \"schema\": \"{schema}\",\n  \"git_rev\": \"{}\",\n  \
         \"threads\": {threads},\n  \"reps\": {reps},\n  \"pool_reuse\": {}",
        git_rev(),
        POOL_REUSE
    )
}

/// Write the snapshot JSON and announce the path (the line CI greps for).
pub fn write_snapshot(out: &str, json: &str) {
    std::fs::write(out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}

/// Finish a `--check` gate: report every failure and exit 1, or confirm
/// the all-clear.
pub fn exit_gate(failures: &[String]) {
    if !failures.is_empty() {
        for f in failures {
            eprintln!("CHECK FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("all checks passed");
}

/// Short git revision of the working tree, or `"unknown"` outside a repo
/// (e.g. a source tarball). Appends `-dirty` when the tree has
/// uncommitted changes so a reference JSON can't silently come from
/// unreviewed code.
pub fn git_rev() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string());
    let Some(rev) = rev else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain", "-uno"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_some_and(|o| !o.stdout.is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_usize_default_and_override() {
        std::env::remove_var("FT_BENCH_TEST_KNOB");
        assert_eq!(env_usize("FT_BENCH_TEST_KNOB", 7), 7);
        std::env::set_var("FT_BENCH_TEST_KNOB", "12");
        assert_eq!(env_usize("FT_BENCH_TEST_KNOB", 7), 12);
        std::env::remove_var("FT_BENCH_TEST_KNOB");
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
