//! The recovery routines of Figure 3, as inherent methods on
//! [`Engine<FtRecovery>`] — the catch blocks of the generic traversal
//! dispatch here through [`FtPolicy`](super::engine::FtPolicy)'s
//! `on_guard_fault` / `on_compute_fault` hooks.
//!
//! * `RecoverTaskOnce` / `IsRecovering` — Guarantee 1: each failure is
//!   recovered at most once, arbitrated through the recovery table `R`
//!   (key → most recent life whose recovery has been initiated).
//! * `RecoverTask` — Guarantee 2: rather than restoring status from a
//!   backup, the failed task is **replaced** by a fresh incarnation
//!   (life + 1) and processed as a newly created task; Guarantee 4: the
//!   notify array is reconstructed by traversing successors
//!   (`ReinitNotifyEntry`); Guarantee 6: failures during recovery restart
//!   the recovery loop with yet another incarnation.
//! * `ResetNode` — Guarantee 5 support: a task whose *input* failed resets
//!   its join counter and bit vector and re-traverses its predecessors.

use super::engine::{with_pred_scratch, Engine, FtPolicy};
use super::ft::FtRecovery;
use crate::fault::Fault;
use crate::graph::Key;
use crate::task::{FtDesc, Status};
use crate::trace::Event;
use ft_steal::arena::ArenaRef;
use ft_steal::pool::Scope;
use ft_sync::atomic::Ordering;
use std::sync::Arc;

impl Engine<FtRecovery> {
    /// `RecoverTaskOnce(key, life)`.
    pub(super) fn recover_task_once(self: &Arc<Self>, s: &Scope<'_>, key: Key, life: u64) {
        if !self.is_recovering(key, life) {
            self.recover_task(s, key);
        } else {
            // ord: Relaxed — statistics counter read at quiescence.
            self.metrics
                .recoveries_suppressed
                .fetch_add(1, Ordering::Relaxed);
            self.policy
                .emit(s.worker_index(), Event::RecoverySuppressed { key, life });
        }
    }

    /// `IsRecovering(key, life)`: returns `false` exactly once per
    /// incarnation — for the thread that claims the recovery.
    ///
    /// Paper: insert `(key, life)` into `R` if absent (first failure ever on
    /// this task → caller recovers); otherwise CAS the stored life from
    /// `life − 1` to `life` (first observer of *this* incarnation's failure
    /// → caller recovers). Both arms are one atomic read-modify-write here.
    pub(super) fn is_recovering(&self, key: Key, life: u64) -> bool {
        self.policy.rtable.update_cas(key, |cur| match cur {
            None => (Some(life), false),
            Some(&stored) if stored + 1 == life => (Some(life), false),
            Some(_) => (None, true),
        })
    }

    /// `ReplaceTask(key)`: atomically swap in a fresh incarnation with
    /// life + 1; returns it with its life number.
    ///
    /// The replacement descriptor lives in the same epoch arena as the one
    /// it supersedes; superseded incarnations stay allocated (handles to
    /// them may still be in flight) and are reclaimed with the epoch.
    pub(super) fn replace_task(&self, key: Key) -> (ArenaRef<FtDesc>, u64) {
        self.map.update_cas(key, |cur| {
            let life = cur.map(|d: &ArenaRef<FtDesc>| d.life).unwrap_or(0) + 1;
            let d = with_pred_scratch(|scratch| {
                self.graph.predecessors_into(key, scratch);
                let out = self.graph.out_degree(key);
                self.arena.alloc(FtDesc::new(key, life, scratch, out))
            });
            (Some(d), (d, life))
        })
    }

    /// `RecoverTask(key)`: replace the incarnation, rebuild the notify
    /// array from successors, and re-execute as if newly created. Errors
    /// during recovery restart the loop with the next incarnation
    /// (Guarantee 6), unless another thread already claimed that new
    /// failure.
    pub(super) fn recover_task(self: &Arc<Self>, s: &Scope<'_>, key: Key) {
        loop {
            // ord: Relaxed — statistics counter read at quiescence.
            self.metrics.recoveries.fetch_add(1, Ordering::Relaxed);
            let (t, life) = self.replace_task(key);
            // ord: Release — the recovery mark must be visible to whoever
            // acquires the replacement descriptor via the block table.
            t.is_recovery.store(true, Ordering::Release);
            self.policy.emit(
                s.worker_index(),
                Event::RecoveryStarted {
                    key,
                    new_life: life,
                },
            );

            let attempt: Result<(), Fault> = (|| {
                // "traverse successors to recreate notify arr."
                for skey in self.graph.successors(key) {
                    if let Some((sd, slife)) = self.get_task(skey) {
                        self.reinit_notify_entry(s, t, key, sd, skey, slife)?;
                    }
                    // A successor not yet in the map registers itself when
                    // its own traversal reaches the new incarnation.
                }
                Ok(())
            })();

            match attempt {
                Ok(()) => {
                    let this = Arc::clone(self);
                    // Recovered incarnations keep their key's priority, so
                    // a hard task's recovery also jumps the queue.
                    s.spawn_with(self.prio_of(key), move |s| {
                        this.init_and_compute(s, t, key, life)
                    });
                    return;
                }
                Err(f) => {
                    // "if (!IsRecovering(key, life)) success = false":
                    // we claim the new incarnation's failure and retry;
                    // otherwise someone else owns it and we are done.
                    self.policy.emit(
                        s.worker_index(),
                        Event::FaultObserved {
                            source: f.source,
                            kind: f.kind,
                        },
                    );
                    if self.is_recovering(key, life) {
                        // ord: Relaxed — statistics counter read at quiescence.
                        self.metrics
                            .recoveries_suppressed
                            .fetch_add(1, Ordering::Relaxed);
                        self.policy
                            .emit(s.worker_index(), Event::RecoverySuppressed { key, life });
                        return;
                    }
                }
            }
        }
    }

    /// `ReinitNotifyEntry(T, key, S, skey, slife)`: if successor `S` is
    /// still Visited and has not consumed `T`'s notification (its bit for
    /// `key` is set), register it in the new incarnation's notify cells.
    ///
    /// The fresh incarnation **is** the generation tag: `ReplaceTask`
    /// allocated `t` with empty cells, so stale registrations on the
    /// superseded descriptor are never cleared in place — they are simply
    /// left behind, and any late delivery from the old incarnation's drain
    /// is absorbed by `S`'s notification bits (Guarantee 3). Registration
    /// goes through the same lock-free claim/publish protocol as the hot
    /// path (claims past the out-degree capacity land in the overflow
    /// chain); `t` cannot be draining yet — its `InitAndCompute` is
    /// spawned only after this traversal finishes and its join counter
    /// still holds the self-notification.
    ///
    /// An error *in S* triggers S's own recovery and does not abort the
    /// traversal; an error *in T* propagates ("else throw") so
    /// `RecoverTask` restarts with a fresh incarnation.
    pub(super) fn reinit_notify_entry(
        self: &Arc<Self>,
        s: &Scope<'_>,
        t: ArenaRef<FtDesc>,
        key: Key,
        sd: ArenaRef<FtDesc>,
        skey: Key,
        slife: u64,
    ) -> Result<(), Fault> {
        let attempt: Result<(), Fault> = (|| {
            sd.check()?;
            // "ignore Computed and Completed tasks" — a corrupt status
            // byte in S counts as an error in S.
            if sd.try_status()? != Status::Visited {
                return Ok(());
            }
            let ind = sd
                .pred_index(key)
                .ok_or_else(|| Fault::descriptor(skey, slife))?;
            if sd.bits.get(ind) {
                t.check()?;
                // A corrupt status byte in T surfaces here and propagates
                // (error in T). Self-delivery cannot trigger — T is
                // Visited until its InitAndCompute runs — but if it ever
                // did, delivering to S here is the correct action.
                if self.register_notify(&t, skey)? {
                    self.notify_once(s, sd, skey, key, slife);
                }
            }
            Ok(())
        })();

        match attempt {
            Err(f) if f.source == skey => {
                self.policy.emit(
                    s.worker_index(),
                    Event::FaultObserved {
                        source: f.source,
                        kind: f.kind,
                    },
                );
                self.recover_task_once(s, skey, slife);
                Ok(())
            }
            other => other,
        }
    }

    /// `ResetNode(A, key, life)`: restore the join counter and bit vector,
    /// then re-explore predecessors via `InitAndCompute`. The join counter
    /// is restored *before* the bits so a racing notification cannot be
    /// lost (a decrement can only happen after its bit is re-set).
    pub(super) fn reset_node(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: ArenaRef<FtDesc>,
        key: Key,
        life: u64,
    ) {
        // ord: Relaxed — statistics counter read at quiescence.
        self.metrics.resets.fetch_add(1, Ordering::Relaxed);
        self.policy
            .emit(s.worker_index(), Event::Reset { key, life });
        let attempt: Result<(), Fault> = (|| {
            a.check()?;
            a.reset_for_reexploration();
            Ok(())
        })();
        match attempt {
            Ok(()) => self.init_and_compute(s, a, key, life),
            Err(f) => {
                self.policy.emit(
                    s.worker_index(),
                    Event::FaultObserved {
                        source: f.source,
                        kind: f.kind,
                    },
                );
                self.recover_task_once(s, key, life);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ComputeCtx, TaskGraph};
    use crate::inject::FaultPlan;
    use crate::scheduler::FtScheduler;

    struct Tiny;
    impl TaskGraph for Tiny {
        fn sink(&self) -> Key {
            1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            if k == 1 {
                vec![0]
            } else {
                vec![]
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            if k == 0 {
                vec![1]
            } else {
                vec![]
            }
        }
        fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    fn scheduler() -> Arc<FtScheduler> {
        FtScheduler::with_plan(Arc::new(Tiny), Arc::new(FaultPlan::none()))
    }

    #[test]
    fn is_recovering_claims_each_incarnation_once() {
        let sch = scheduler();
        // First failure on life 1: first caller claims.
        assert!(!sch.is_recovering(5, 1));
        assert!(sch.is_recovering(5, 1), "second observer suppressed");
        // Failure on the recovered incarnation (life 2).
        assert!(!sch.is_recovering(5, 2));
        assert!(sch.is_recovering(5, 2));
        // Stale observer of life 1 after the world moved on.
        assert!(sch.is_recovering(5, 1));
    }

    #[test]
    fn is_recovering_rejects_skipped_life() {
        let sch = scheduler();
        assert!(!sch.is_recovering(9, 1));
        // Life 3 arrives while R holds 1 (life 2 never failed): stored+1 != 3,
        // so the caller must not recover — some other path owns the chain.
        assert!(sch.is_recovering(9, 3));
    }

    #[test]
    fn replace_task_bumps_life() {
        let sch = scheduler();
        sch.insert_if_absent(0, None);
        let (d1, l1) = sch.get_task(0).unwrap();
        assert_eq!(l1, 1);
        d1.poisoned.store(true, Ordering::Release);
        let (d2, l2) = sch.replace_task(0);
        assert_eq!(l2, 2);
        assert!(d2.check().is_ok(), "fresh incarnation is clean");
        assert_eq!(d2.try_status().unwrap(), Status::Visited);
        let (cur, l) = sch.get_task(0).unwrap();
        assert_eq!(l, 2);
        assert!(ArenaRef::ptr_eq(cur, d2));
        assert!(sch.owns_desc(d2), "incarnations live in the epoch arena");
    }

    #[test]
    fn replace_task_on_missing_key_creates_life_one() {
        let sch = scheduler();
        let (_, life) = sch.replace_task(42);
        assert_eq!(life, 1);
    }

    #[test]
    fn concurrent_is_recovering_single_claimant() {
        use ft_sync::atomic::AtomicUsize;
        let sch = scheduler();
        for life in 1..=10u64 {
            let claims = AtomicUsize::new(0);
            std::thread::scope(|ts| {
                for _ in 0..8 {
                    ts.spawn(|| {
                        if !sch.is_recovering(3, life) {
                            claims.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(
                claims.load(Ordering::Relaxed),
                1,
                "exactly one claimant for life {life}"
            );
        }
    }
}
