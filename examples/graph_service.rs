//! Graph service walkthrough: one resident worker pool serving a stream of
//! concurrent graph instances (epochs), one of them fault-planned.
//!
//! Each submission is its own engine — its own task-map namespace, metrics,
//! recovery table and completion latch — so the faulted tenant's localized
//! recovery never leaks into its co-resident neighbors, and every ticket
//! yields an independent per-instance report.
//!
//! Run with: `cargo run --example graph_service`

use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::{FtScheduler, GraphService, ServiceConfig};
use std::sync::Arc;

/// n×n wavefront grid; every compute does a little real work.
struct Grid {
    n: i64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let mut acc = 1u64;
        for i in 1..500u64 {
            acc = acc.wrapping_mul(i) ^ (acc >> 7);
        }
        std::hint::black_box(acc);
        Ok(())
    }
}

fn main() {
    // One resident pool for the whole program: no per-graph spin-up.
    let pool = Pool::new(PoolConfig::with_threads(4));
    let service = GraphService::with_config(
        &pool,
        ServiceConfig {
            max_in_flight: 8,
            ..ServiceConfig::default()
        },
    );

    println!("== one resident pool, six concurrent graph instances ==\n");

    // Six tenants of varying size; tenant 3 gets a fault plan that fails
    // three of its tasks (one of them on two consecutive incarnations).
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            let n = 6 + 2 * (i % 3);
            let graph = Arc::new(Grid { n }) as Arc<dyn TaskGraph>;
            let sched = if i == 3 {
                FtScheduler::with_plan(
                    graph,
                    Arc::new(FaultPlan::new([
                        FaultSite::once(0, Phase::BeforeCompute),
                        FaultSite::once(n + 1, Phase::AfterCompute),
                        FaultSite {
                            key: 2 * n,
                            phase: Phase::AfterNotify,
                            fires: 2,
                        },
                    ])),
                )
            } else {
                FtScheduler::new(graph)
            };
            let ticket = service.submit(&sched).expect("within in-flight budget");
            println!(
                "submitted instance {} ({n}x{n} wavefront{})",
                ticket.id(),
                if i == 3 { ", fault-planned" } else { "" }
            );
            ticket
        })
        .collect();

    println!(
        "\n{} instances in flight; waiting...\n",
        service.in_flight()
    );

    for ticket in tickets {
        let done = ticket.wait();
        let r = &done.report;
        assert!(r.sink_completed, "Lemma 3: every sink completes");
        println!(
            "instance {}: computes={} injected={} recoveries={} re-executed={} \
             jobs={} elapsed={:?}",
            done.id,
            r.computes,
            r.injected,
            r.recoveries,
            r.re_executions,
            done.jobs.jobs_executed,
            r.elapsed,
        );
        if r.injected == 0 {
            assert_eq!(r.recoveries, 0, "clean epochs never observe recovery");
        }
    }

    let stats = service.stats();
    println!(
        "\nservice totals: submitted={} completed={} rejected={} in-flight={}",
        stats.submitted, stats.completed, stats.rejected, stats.in_flight
    );
    assert_eq!(stats.in_flight, 0);
    println!("all instances completed on the shared pool; faults stayed in their epoch");
}
