//! Stress tests: dense fault load, recursive failures, deep recovery
//! chains, and scheduler-infrastructure churn. These exist to shake out
//! races the unit tests' small configurations cannot reach. Every run is
//! recorded and validated by the trace oracle (Concurrent mode); an
//! oracle violation dumps the trace + fault plan as JSON under
//! `target/oracle-failures/`.

use ft_apps::fw::Fw;
use ft_apps::lu::Lu;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_bench::dag_gen::{DagGenConfig, RandDag};
use ft_integration::graphs::Chain;
use ft_integration::{assert_oracle_clean, traced_run_on, traced_run_on_opts};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::SchedOpts;
use nabbit_ft::trace::oracle::OracleMode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("stress run hung");
}

/// Traced run + oracle validation, returning the report for extra asserts.
fn checked_run(
    label: &str,
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    threads: usize,
) -> nabbit_ft::metrics::RunReport {
    checked_run_opts(label, graph, plan, threads, SchedOpts::default())
}

/// [`checked_run`] under explicit scheduler options (priority pop order);
/// random-DAG failures dump to `target/oracle-failures/` exactly like the
/// regular-kernel stress runs.
fn checked_run_opts(
    label: &str,
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    threads: usize,
    opts: SchedOpts,
) -> nabbit_ft::metrics::RunReport {
    let pool = Pool::new(PoolConfig::with_threads(threads));
    let (_, trace, report) = traced_run_on_opts(Arc::clone(&graph), Arc::clone(&plan), &pool, opts);
    assert_oracle_clean(
        label,
        0,
        &plan,
        graph.as_ref(),
        &trace,
        &report,
        OracleMode::Concurrent,
        Vec::new(),
    );
    report
}

#[test]
fn every_task_fails_three_times_sw() {
    watchdog(240, || {
        let app = Arc::new(Sw::new(AppConfig::new(64, 16)));
        let sites: Vec<FaultSite> = app
            .all_tasks()
            .into_iter()
            .map(|k| FaultSite {
                key: k,
                phase: Phase::AfterCompute,
                fires: 3,
            })
            .collect();
        let plan = Arc::new(FaultPlan::new(sites));
        let report = checked_run("stress-sw-all-fail-3x", Arc::clone(&app) as _, plan, 8);
        assert!(report.sink_completed);
        app.verify().unwrap();
    });
}

#[test]
fn mixed_phase_dense_faults_lu() {
    watchdog(240, || {
        let app = Arc::new(Lu::new(AppConfig::new(96, 16)));
        let keys = app.all_tasks();
        let sink = app.sink();
        let sites: Vec<FaultSite> = keys
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k != sink)
            .map(|(i, &k)| FaultSite {
                key: k,
                phase: match i % 3 {
                    0 => Phase::BeforeCompute,
                    1 => Phase::AfterCompute,
                    _ => Phase::AfterNotify,
                },
                fires: 1,
            })
            .collect();
        let plan = Arc::new(FaultPlan::new(sites));
        let report = checked_run("stress-lu-mixed-phase", Arc::clone(&app) as _, plan, 8);
        assert!(report.sink_completed);
        let o = app.verify_detailed().unwrap();
        assert!(o.checked > 0);
        assert!(o.skipped_poisoned as u64 <= report.injected);
    });
}

#[test]
fn deep_chain_recovery_fw_single_version() {
    // KeepLast(1) + failing the last round's tasks: recovery must rebuild
    // long version chains, sequentially (the paper's worst case).
    watchdog(300, || {
        let app = Arc::new(Fw::with_single_version(AppConfig::new(96, 16))); // nb=6
        let last = app.tasks_of_class(VersionClass::Last);
        let plan = Arc::new(FaultPlan::sample(&last, 3, Phase::AfterCompute, 1234));
        let report = checked_run("stress-fw-deep-chain", Arc::clone(&app) as _, plan, 4);
        assert!(report.sink_completed);
        assert!(
            report.re_executions >= 3,
            "chains imply >= planned re-executions, got {}",
            report.re_executions
        );
        app.verify().unwrap();
    });
}

#[test]
fn long_narrow_chain_graph_with_faults() {
    // A pure chain maximizes the critical path and serial recovery.
    watchdog(180, || {
        let g = Arc::new(Chain { len: 2000 });
        let keys: Vec<Key> = (0..2000).collect();
        let plan = Arc::new(FaultPlan::sample(&keys, 200, Phase::AfterCompute, 5));
        let report = checked_run("stress-chain2000", g as _, plan, 4);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 200);
        assert_eq!(report.re_executions, 200);
    });
}

#[test]
fn wide_star_graph_with_faulty_center() {
    // Sink with 2000 predecessors, all notifying concurrently, center
    // failing repeatedly: contention on one notify array + bit vector.
    struct Star {
        width: i64,
    }
    impl TaskGraph for Star {
        fn sink(&self) -> Key {
            self.width
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            if k == self.width {
                (0..self.width).collect()
            } else {
                vec![]
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            if k == self.width {
                vec![]
            } else {
                vec![self.width]
            }
        }
        fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }
    watchdog(180, || {
        let g = Arc::new(Star { width: 2000 });
        let mut sites: Vec<FaultSite> = (0..2000)
            .step_by(17)
            .map(|k| FaultSite::once(k, Phase::AfterCompute))
            .collect();
        sites.push(FaultSite {
            key: 2000,
            phase: Phase::AfterCompute,
            fires: 4,
        });
        let plan = Arc::new(FaultPlan::new(sites));
        let report = checked_run("stress-star2000", g as _, plan, 8);
        assert!(report.sink_completed);
    });
}

#[test]
fn large_random_dag_dense_faults_both_pop_orders() {
    // A big irregular member of the dag_gen family under dense multi-fire
    // faults, on a real pool under both pop orders. Unlike the regular
    // kernels there is no lattice structure for bugs to hide behind —
    // fan-in/fan-out, long-range edges, and the priority hot lane all
    // churn at once, and any oracle violation dumps like the rest.
    watchdog(240, || {
        let mut cfg = DagGenConfig::new(30, 12, 0.25, 0x57E5);
        cfg.critical_ratio = 0.4;
        for use_priority in [false, true] {
            let dag = Arc::new(RandDag::generate(cfg.clone()));
            let keys = dag.all_keys();
            let mut sites: Vec<FaultSite> = keys
                .iter()
                .step_by(3)
                .map(|&k| FaultSite::once(k, Phase::AfterCompute))
                .collect();
            // Every 10th site fires three times: recursive recovery under
            // load.
            for site in sites.iter_mut().step_by(10) {
                site.fires = 3;
            }
            let plan = Arc::new(FaultPlan::new(sites));
            let opts = SchedOpts {
                priority: use_priority.then(|| dag.priority_fn()),
                deadline: None,
            };
            let mode = if use_priority { "prio" } else { "fifo" };
            let report = checked_run_opts(
                &format!("stress-randdag-dense-{mode}"),
                Arc::clone(&dag) as _,
                plan,
                8,
                opts,
            );
            assert!(report.sink_completed, "{mode}");
            assert!(report.injected > 0, "{mode}");
            // Fresh instance + seq reference: values must match despite
            // the fault storm.
            let reference = RandDag::generate(cfg.clone());
            nabbit_ft::seq::run(&reference).unwrap();
            for k in dag.all_keys() {
                assert_eq!(dag.value_of(k), reference.value_of(k), "{mode} task {k}");
            }
        }
    });
}

#[test]
fn repeated_runs_do_not_leak_state() {
    // The pool is reused across many faulted runs; per-run scheduler state
    // (maps, recovery table, traces) must be independent.
    watchdog(300, || {
        let pool = Pool::new(PoolConfig::with_threads(4));
        for round in 0..10 {
            let app = Arc::new(Sw::new(AppConfig::new(64, 16)));
            let keys = app.all_tasks();
            let plan = Arc::new(FaultPlan::sample(&keys, 4, Phase::AfterCompute, round));
            let (sched, trace, report) =
                traced_run_on(Arc::clone(&app) as _, Arc::clone(&plan), &pool);
            assert!(report.sink_completed, "round {round}");
            assert_oracle_clean(
                &format!("stress-repeated-round{round}"),
                0,
                &plan,
                app.as_ref(),
                &trace,
                &report,
                OracleMode::Concurrent,
                Vec::new(),
            );
            app.verify()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            assert_eq!(sched.recovery_table_len(), 4, "round {round}");
        }
    });
}
