//! Good fixture for L3: atomics come through the loom-switched facade.

use ft_sync::atomic::{AtomicBool, Ordering};

pub fn set(ready: &AtomicBool) {
    ready.store(true, Ordering::SeqCst);
}
