//! Experiment reports: aligned console tables plus JSON persistence, so
//! EXPERIMENTS.md can record paper-vs-measured for every table and figure.

use crate::measure::Stats;
use std::io::Write;
use std::path::Path;

/// One row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (benchmark, scenario, …).
    pub label: String,
    /// Column values, formatted by the producer.
    pub values: Vec<String>,
}

/// A complete experiment: identifies the paper artifact it regenerates.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Paper artifact id, e.g. "fig4", "table2".
    pub id: String,
    /// Human description.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
    /// Free-form notes (scaling caveats, paper-expected shape).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// New empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ExperimentReport {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, v) in row.values.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(v.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:>width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            let mut cells = vec![format!("{:>width$}", row.label, width = widths[0])];
            for (i, v) in row.values.iter().enumerate() {
                let w = widths.get(i + 1).copied().unwrap_or(v.len());
                cells.push(format!("{:>width$}", v, width = w));
            }
            out.push_str(&cells.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Persist as pretty JSON under `dir/<id>.json` (hand-rolled writer;
    /// the workspace builds offline without serde).
    pub fn save_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json_pretty().as_bytes())
    }

    /// Pretty-printed JSON rendering of the report.
    pub fn to_json_pretty(&self) -> String {
        let str_array = |items: &[String], indent: &str| -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let body: Vec<String> = items
                .iter()
                .map(|s| format!("{indent}  {}", json_escape(s)))
                .collect();
            format!("[\n{}\n{indent}]", body.join(",\n"))
        };
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_escape(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_escape(&self.title)));
        out.push_str(&format!(
            "  \"headers\": {},\n",
            str_array(&self.headers, "  ")
        ));
        if self.rows.is_empty() {
            out.push_str("  \"rows\": [],\n");
        } else {
            out.push_str("  \"rows\": [\n");
            let rows: Vec<String> = self
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "    {{\n      \"label\": {},\n      \"values\": {}\n    }}",
                        json_escape(&r.label),
                        str_array(&r.values, "      ")
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ],\n");
        }
        out.push_str(&format!("  \"notes\": {}\n", str_array(&self.notes, "  ")));
        out.push('}');
        out
    }

    /// Persist as CSV under `dir/<id>.csv` (plot-friendly: gnuplot,
    /// pandas, spreadsheets).
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut f = std::fs::File::create(path)?;
        let quote = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            let mut cells = vec![quote(&row.label)];
            cells.extend(row.values.iter().map(|v| quote(v)));
            writeln!(f, "{}", cells.join(","))?;
        }
        Ok(())
    }
}

/// Quote and escape a string as a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format seconds with ± std.
pub fn fmt_time(s: &Stats) -> String {
    format!("{:.3}s±{:.3}", s.mean, s.std)
}

/// Format a percentage.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:+.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment_and_content() {
        let mut r = ExperimentReport::new("figX", "demo", &["bench", "a", "b"]);
        r.push_row("LCS", vec!["1.0".into(), "2.00".into()]);
        r.push_row("Cholesky", vec!["3".into(), "4".into()]);
        r.note("scaled run");
        let s = r.render();
        assert!(s.contains("figX"));
        assert!(s.contains("Cholesky"));
        assert!(s.contains("note: scaled run"));
        // Alignment: every data line has the same width up to the last col.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("ft-bench-test-report");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = ExperimentReport::new("t1", "x", &["a"]);
        r.push_row("row", vec![]);
        r.save_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t1.json")).unwrap();
        assert!(content.contains("\"id\": \"t1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_csv_quotes_and_writes() {
        let dir = std::env::temp_dir().join("ft-bench-test-csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = ExperimentReport::new("c1", "x", &["bench", "val,with,commas"]);
        r.push_row("LU", vec!["1.5".into()]);
        r.push_row("a\"b", vec!["2".into()]);
        r.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("c1.csv")).unwrap();
        assert!(content.starts_with("bench,\"val,with,commas\""));
        assert!(content.contains("LU,1.5"));
        assert!(content.contains("\"a\"\"b\",2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        let s = crate::measure::Stats::from_samples(&[1.0, 1.5]);
        assert!(fmt_time(&s).contains("1.250s"));
        assert_eq!(fmt_pct(5.25), "+5.25%");
        assert_eq!(fmt_pct(-1.0), "-1.00%");
    }
}
