//! `ft-cmap` — a sharded concurrent hash map built for the NABBIT
//! fault-tolerant task-graph scheduler.
//!
//! The SC14 paper's runtime keeps two concurrent maps:
//!
//! * the **task map**: key (`i64`) → pointer to the current incarnation of a
//!   task descriptor, accessed with `InsertTaskIfAbsent` / `GetTask` /
//!   `ReplaceTask` (Figures 2–3);
//! * the **recovery table `R`**: key → most recent *life number* for which a
//!   recovery has been initiated, accessed with `InsertRecord` / `GetRecord`
//!   plus an atomic compare-and-swap on the stored life (Figure 3,
//!   `IsRecovering`).
//!
//! [`ShardedMap`] provides exactly those operations. It is a classic
//! lock-striped hash map: `S` shards (power of two), each a
//! `parking_lot::RwLock` over an open-addressing table. Reads take a shard
//! read lock; the scheduler's hot path (`get`) is read-mostly and scales
//! with shard count. The map stores values by value; the scheduler stores
//! `Arc<TaskDesc>`, matching the paper's "the hash map stores the pointers
//! to the tasks and not the tasks themselves".
//!
//! A dedicated [`ShardedMap::update_cas`] implements the recovery table's
//! compare-and-swap on the stored value without the caller holding any lock
//! across the comparison.

#![warn(missing_docs)]

pub mod map;

pub use map::{MapStats, ShardedMap};
