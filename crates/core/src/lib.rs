//! `nabbit-ft` — fault-tolerant dynamic task graph scheduling.
//!
//! A from-scratch Rust reproduction of *"Fault-Tolerant Dynamic Task Graph
//! Scheduling"* (Kurt, Krishnamoorthy, Agrawal & Agrawal, SC 2014,
//! DOI 10.1109/SC.2014.64). The paper augments the NABBIT work-stealing
//! task-graph scheduler (Agrawal, Leiserson & Sukha, IPDPS 2010) with
//! **selective, localized recovery from detected soft errors**: corruption
//! of task descriptors or of the data blocks tasks produce.
//!
//! # Architecture
//!
//! * [`graph::TaskGraph`] — what the user supplies: a sink key, ordered
//!   predecessor/successor functions, and a `compute` function (Section III
//!   of the paper).
//! * [`scheduler::engine`] — the single copy of the Figure-2 traversal,
//!   generic over a [`scheduler::FtPolicy`]: join counters, notify arrays,
//!   work stealing.
//! * [`scheduler::baseline`] — the plain NABBIT scheduler
//!   ([`scheduler::BaselineScheduler`] = `Engine<NoFt>`): the non-shaded
//!   pseudocode of Figure 2, with every fault guard compiled away
//!   (`Err = Infallible`, zero-sized policy).
//! * [`scheduler::ft`] + [`scheduler::recovery`] — the paper's contribution
//!   ([`scheduler::FtScheduler`] = `Engine<FtRecovery>`; shaded portions of
//!   Figure 2, all of Figure 3): life numbers, the recovery table `R`,
//!   per-predecessor notification bit vectors, notify array reconstruction,
//!   and cascading recovery of overwritten data-block versions.
//! * [`blocks::BlockStore`] — versioned data blocks with a memory-reuse
//!   retention policy; reading an evicted version reports the producer so
//!   the scheduler can re-execute the producing chain (Section IV,
//!   "reuse of data buffers could result in additional re-execution").
//! * [`fault`] / [`inject`] — the detected-soft-error model and the fault
//!   injection campaigns of Section VI (phase × task-type × amount).
//! * [`analysis`] — the graph statistics of Table I and the work/span
//!   bounds of Section V.
//! * [`seq`] — a sequential reference executor (measures `T1`, verifies
//!   results).
//!
//! Execution runs on the [`ft_steal`] work-stealing pool; task descriptors
//! live in an [`ft_cmap`] sharded concurrent hash map, exactly mirroring the
//! paper's runtime structure.
//!
//! # Quickstart
//!
//! ```
//! use nabbit_ft::graph::{Key, TaskGraph, ComputeCtx};
//! use nabbit_ft::fault::Fault;
//! use nabbit_ft::scheduler::FtScheduler;
//! use ft_steal::pool::{Pool, PoolConfig};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A diamond: 0 -> {1, 2} -> 3 (sink is 3).
//! struct Diamond {
//!     sum: AtomicU64,
//! }
//! impl TaskGraph for Diamond {
//!     fn sink(&self) -> Key { 3 }
//!     fn predecessors(&self, k: Key) -> Vec<Key> {
//!         match k { 0 => vec![], 1 | 2 => vec![0], 3 => vec![1, 2], _ => unreachable!() }
//!     }
//!     fn successors(&self, k: Key) -> Vec<Key> {
//!         match k { 0 => vec![1, 2], 1 | 2 => vec![3], 3 => vec![], _ => unreachable!() }
//!     }
//!     fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
//!         self.sum.fetch_add(1 << k, Ordering::Relaxed);
//!         Ok(())
//!     }
//! }
//!
//! let pool = Pool::new(PoolConfig::with_threads(2));
//! let graph = std::sync::Arc::new(Diamond { sum: AtomicU64::new(0) });
//! let sched = FtScheduler::new(std::sync::Arc::clone(&graph) as _);
//! let report = sched.run(&pool);
//! assert!(report.sink_completed);
//! assert_eq!(graph.sum.load(Ordering::Relaxed), 0b1111);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bitvec;
pub mod blocks;
pub mod builder;
pub mod deadline;
pub mod fault;
pub mod graph;
pub mod inject;
pub mod metrics;
pub mod scheduler;
pub mod seq;
pub mod task;
pub mod theory;
pub mod trace;

pub use fault::{Fault, FaultKind};
pub use graph::{ComputeCtx, Key, TaskGraph};
pub use metrics::RunReport;
