//! Versioned data blocks and cascading recovery: the Floyd-Warshall
//! benchmark with the paper's two-version retention vs the single-version
//! ablation. Demonstrates why the paper "adapted the implementation to
//! retain two versions per data block" — single-version reuse makes every
//! recovery cascade to the bottom of the version chain.
//!
//! Run with: `cargo run --release --example versioned_blocks`

use ft_apps::fw::Fw;
use ft_apps::{AppConfig, BenchApp, VersionClass};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::FtScheduler;
use std::sync::Arc;

fn run(label: &str, app: Arc<Fw>, faults: usize, pool: &Pool) {
    let last = app.tasks_of_class(VersionClass::Last);
    let plan = FaultPlan::sample(&last, faults, Phase::AfterCompute, 99);
    let report = FtScheduler::with_plan(Arc::clone(&app) as _, Arc::new(plan)).run(pool);
    assert!(report.sink_completed);
    app.verify().expect("shortest paths match the reference");
    println!(
        "{label}: {} faults on v=last tasks -> {} task re-executions \
         ({} overwritten-version reads, {} recoveries)",
        report.injected, report.re_executions, report.overwrite_faults, report.recoveries
    );
}

fn main() {
    let pool = Pool::new(PoolConfig::with_threads(4));
    let cfg = AppConfig::new(384, 48); // nb = 8 rounds

    println!(
        "blocked Floyd-Warshall, {}x{} in {}x{} tiles, 8 rounds\n",
        cfg.n, cfg.n, cfg.b, cfg.b
    );

    // Paper configuration: two retained versions per block. Recovering a
    // last-round task needs the previous round's version, which is usually
    // still resident -> short chains.
    run("two versions (paper)", Arc::new(Fw::new(cfg)), 3, &pool);

    // Ablation: one retained version. The needed input version is always
    // already overwritten -> every recovery rebuilds the whole chain of
    // producers for that block (and, transitively, their inputs).
    run(
        "one version (ablation)",
        Arc::new(Fw::with_single_version(cfg)),
        3,
        &pool,
    );

    println!(
        "\nthe single-version configuration re-executes far more tasks per \
         fault;\nthe paper doubled FW's memory (two versions) exactly to cut \
         these chains."
    );
}
