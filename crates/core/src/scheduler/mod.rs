//! The two task-graph schedulers of Figure 2.
//!
//! * [`baseline`] — plain NABBIT (the non-shaded pseudocode): the paper's
//!   `baseline` configuration with "no additional data structures or
//!   statements introduced for fault tolerance".
//! * [`ft`] — the fault-tolerant scheduler (shaded additions of Figure 2);
//!   its recovery routines (Figure 3) live in [`recovery`].
//!
//! Both drive the same [`ft_steal::Pool`] and accept the same
//! [`crate::graph::TaskGraph`], so the Figure 4 overhead comparison is
//! apples-to-apples.

pub mod baseline;
pub mod ft;
pub mod recovery;

pub use baseline::BaselineScheduler;
pub use ft::FtScheduler;
