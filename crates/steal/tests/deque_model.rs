//! Property tests for the Chase–Lev deque (invariant P5 of DESIGN.md):
//! under any operation sequence, no element is lost or duplicated, and
//! owner-side semantics match a sequential deque model.

use ft_steal::deque::{deque, Steal};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

/// Operations the owner and a (sequentialized) thief can perform.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        2 => Just(Op::Steal),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Sequential model equivalence: running the ops single-threaded, the
    /// deque must behave exactly like a VecDeque (push/pop at the back,
    /// steal from the front).
    #[test]
    fn matches_sequential_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let (w, s) = deque::<u64>();
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), model.pop_back());
                }
                Op::Steal => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => None, // cannot happen single-threaded
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }

    /// Exactly-once delivery under a concurrent thief: every pushed element
    /// is obtained by exactly one of {owner pop, thief steal}.
    #[test]
    fn concurrent_no_loss_no_dup(
        n in 1usize..2000,
        pop_every in 1usize..7,
    ) {
        let (w, s) = deque::<usize>();
        let seen_thief = std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match s.steal() {
                        Steal::Success(v) => seen.push(v),
                        Steal::Empty => {
                            if s.is_empty() && seen.len() >= n {
                                break;
                            }
                            // Termination: thief gives up after the owner
                            // stops producing; detected via a sentinel.
                            if seen.last() == Some(&usize::MAX) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => {}
                    }
                    if seen.last() == Some(&usize::MAX) {
                        break;
                    }
                }
                seen
            });
            let mut seen_owner = Vec::new();
            for i in 0..n {
                w.push(i);
                if i % pop_every == 0 {
                    if let Some(v) = w.pop() {
                        seen_owner.push(v);
                    }
                }
            }
            while let Some(v) = w.pop() {
                seen_owner.push(v);
            }
            // Sentinel so the thief can terminate even if it saw nothing.
            w.push(usize::MAX);
            let mut thief = loop {
                // The sentinel might be popped by... nobody: owner is done.
                // Thief will pick it up.
                if handle.is_finished() {
                    break handle.join().unwrap();
                }
                std::hint::spin_loop();
            };
            // Remove the sentinel wherever it landed.
            thief.retain(|&v| v != usize::MAX);
            (seen_owner, thief)
        });
        let (owner, thief) = seen_thief;
        let mut all: Vec<usize> = owner;
        all.extend(thief);
        prop_assert_eq!(all.len(), n, "every element delivered exactly once");
        let set: HashSet<usize> = all.iter().copied().collect();
        prop_assert_eq!(set.len(), n, "no duplicates");
    }
}

#[test]
fn owner_sees_lifo_thief_sees_fifo() {
    let (w, s) = deque::<u32>();
    for i in 0..100 {
        w.push(i);
    }
    assert_eq!(s.steal(), Steal::Success(0), "thief takes the oldest");
    assert_eq!(w.pop(), Some(99), "owner takes the newest");
    assert_eq!(s.steal(), Steal::Success(1));
    assert_eq!(w.pop(), Some(98));
}
