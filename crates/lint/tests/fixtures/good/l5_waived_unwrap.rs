//! Good fixture for L5: a waiver with a reason suppresses the finding
//! (and is reported as a waiver, keeping it auditable).

pub fn hot(map: &Map) -> Task {
    // ft-lint: allow(L5) the key was inserted two lines above under the
    // same lock; absence is a programming error worth aborting on.
    map.get(7).unwrap()
}
