//! Allocation regression test for the hot traversal path.
//!
//! The engine must not allocate per *traversal step* beyond what task
//! creation inherently needs (descriptor, predecessor list, spawn
//! closures, notify array). The old schedulers cloned `a.preds` on every
//! `InitAndCompute` — one extra heap allocation per task — which this
//! test exists to keep out.
//!
//! Method: run the baseline and FT schedulers on wavefront grids of two
//! sizes under the deterministic single-threaded `ft-det` executor and a
//! counting global allocator. The *marginal* allocations per task between
//! the two sizes cancel all fixed setup costs (shard tables sized by
//! `available_parallelism`, pool state, …), and determinism makes the
//! count exactly reproducible, so a pinned per-task budget is a stable
//! assertion rather than a flaky one.

use ft_det::DetPool;
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Wavefront grid with an allocation-free compute, so every counted
/// allocation belongs to the traversal itself.
struct Grid {
    n: i64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

/// Serializes the tests in this binary: the counting allocator is global,
/// so a concurrently running test would pollute a counting window.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed) - before
}

fn run_baseline(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = BaselineScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

fn run_ft(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = FtScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

/// Marginal allocations per task between a 16×16 and a 32×32 grid.
fn marginal_per_task(run: fn(i64) -> u64) -> f64 {
    let small = run(16);
    let large = run(32);
    assert!(large > small);
    (large - small) as f64 / (32.0 * 32.0 - 16.0 * 16.0)
}

#[test]
fn traversal_allocations_are_deterministic_and_bounded() {
    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm-up runs at *every measured size* so one-time lazy init (TLS,
    // parker state, allocator size-class setup, …) is paid before anything
    // is counted. A single small warm-up is not enough: the very first run
    // at a given size occasionally pays a couple of extra process-global
    // allocations, which tripped the determinism assertion below.
    for n in [16, 32] {
        run_baseline(n);
        run_ft(n);
    }

    // Determinism: identical (graph, seed) ⇒ identical allocation counts.
    assert_eq!(
        run_baseline(16),
        run_baseline(16),
        "baseline not deterministic"
    );
    assert_eq!(run_ft(16), run_ft(16), "ft not deterministic");

    // Per-task budget. Measured on the seqlock task map: baseline ≈ 10.94
    // allocs/task, FT ≈ 11.94 (descriptor Arc, pred Vec + boxing, notify
    // array, bit vector, per-step spawn boxes, det queue growth, plus one
    // value box per task-map insert — the price of lock-free reads, since
    // values must live behind stable pointers). A per-traversal clone or a
    // copy-on-write counter update costs ≈ +1.0 alloc/task, so a budget of
    // measured + 0.5 catches those regressions while tolerating
    // allocator-library drift.
    let base = marginal_per_task(run_baseline);
    let ft = marginal_per_task(run_ft);
    assert!(
        base < 11.4,
        "baseline traversal allocates {base:.2}/task — hot-path allocation crept in"
    );
    assert!(
        ft < 12.4,
        "ft traversal allocates {ft:.2}/task — hot-path allocation crept in"
    );
}

/// The segmented injector must not allocate per push in steady state:
/// fully consumed blocks are reset and recycled through the one-slot block
/// cache, so sustained push/steal traffic reuses the same segments.
#[test]
fn injector_steady_state_allocates_nothing() {
    use ft_steal::injector::Injector;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let q: Injector<u64> = Injector::new();
    // Warm-up: enough laps that the block chain and recycle cache exist.
    for round in 0..10u64 {
        for i in 0..40 {
            q.push(round * 40 + i);
        }
        for i in 0..40 {
            assert_eq!(q.steal(), Some(round * 40 + i));
        }
    }
    // Steady state: thousands of pushes/steals crossing many block
    // boundaries — zero allocations.
    let allocs = count_allocs(|| {
        for round in 0..100u64 {
            for i in 0..40 {
                q.push(round * 40 + i);
            }
            for i in 0..40 {
                assert_eq!(q.steal(), Some(round * 40 + i));
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "injector allocated {allocs} times in steady state — block recycling broke"
    );
}
