//! Seeded random layered DAG workload family (ROADMAP item 5).
//!
//! The five regular kernels exercise only lattice-shaped dependency
//! structure. [`RandDag`] generates *irregular* fan-in/fan-out: a layered
//! Erdős–Rényi DAG with per-node WCET ranges, Hard/Soft task typing, and
//! critical-path marking — the graphs where the paper's selective-recovery
//! guarantees (notify bit vector, recovery table, seqlock map) are hardest
//! to uphold, and the substrate for the PR-6 priority-scheduling
//! experiments.
//!
//! Everything is a pure function of [`DagGenConfig`]: the same config
//! reproduces the identical structure, WCETs, and Hard/Soft marking, so a
//! failing `(config, fault plan, schedule seed)` triple replays exactly.
//!
//! # Structure
//!
//! * `layers` layers; layer widths drawn uniformly from `1..=max_width`.
//! * Each node draws an edge from every node of the previous layer with
//!   probability `edge_prob` (classic layered Erdős–Rényi), plus a
//!   guaranteed predecessor when the draw leaves it orphaned, plus
//!   occasional long-range edges skipping ≥ 2 layers.
//! * A synthetic sink depends on every childless node, so the whole graph
//!   is backward-reachable from the sink (NABBIT discovers the graph from
//!   the sink).
//!
//! # Hard/Soft typing and criticality
//!
//! Each node gets a WCET drawn from `wcet_min..=wcet_max`. Running the
//! longest-path decomposition of `nabbit_ft::analysis::path_analysis`
//! under that cost model, the top `critical_ratio` share of nodes by
//! heaviest-path-through weight are marked **Hard** (they carry
//! deadlines); everything else is Soft. The **critical set** — what the
//! priority pop order boosts — is the Hard set closed under ancestors: a
//! hard task cannot start before its soft predecessors finish, so those
//! predecessors must jump the queue too.
//!
//! # Data
//!
//! Like the integration suite's `ValueDag`, every task computes a
//! deterministic value (a hash of its predecessors' values) into a
//! concurrent map, and fired faults poison the output so later consumers
//! observe them; result equivalence against a sequential run is therefore
//! checkable for any member of the family. `work_unit > 0` additionally
//! spins `wcet × work_unit` iterations per compute so wall-clock runtimes
//! scale with WCET (used by `bench_pr6`'s deadline measurements).

use ft_cmap::ShardedMap;
use ft_steal::rng::XorShift64Star;
use ft_steal::Priority;
use nabbit_ft::analysis::path_analysis;
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::PriorityFn;
use std::sync::Arc;

/// Full description of one random-DAG instance. Same config ⇒ same graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DagGenConfig {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Maximum layer width; widths are drawn from `1..=max_width`.
    pub max_width: usize,
    /// Probability of an edge between adjacent-layer node pairs.
    pub edge_prob: f64,
    /// Inclusive WCET range `[wcet_min, wcet_max]` in abstract work units.
    pub wcet_min: u64,
    /// See `wcet_min`.
    pub wcet_max: u64,
    /// Share of nodes (by heaviest-path-through rank) marked Hard.
    pub critical_ratio: f64,
    /// Structure seed: drives widths, edges, and WCET draws.
    pub seed: u64,
    /// Spin iterations per WCET unit in `compute` (0 = hash only).
    pub work_unit: u64,
}

impl Default for DagGenConfig {
    fn default() -> Self {
        DagGenConfig {
            layers: 8,
            max_width: 6,
            edge_prob: 0.35,
            wcet_min: 1,
            wcet_max: 16,
            critical_ratio: 0.5,
            seed: 0x5EED_DA61,
            work_unit: 0,
        }
    }
}

impl DagGenConfig {
    /// Config with the given shape and seed, defaults elsewhere.
    pub fn new(layers: usize, max_width: usize, edge_prob: f64, seed: u64) -> Self {
        DagGenConfig {
            layers,
            max_width,
            edge_prob,
            seed,
            ..Default::default()
        }
    }
}

/// One generated random layered DAG (see module docs).
///
/// Keys are contiguous: inner nodes `0..n`, sink `n`. Node ids increase
/// with layer, so key order is a valid topological order by construction.
pub struct RandDag {
    cfg: DagGenConfig,
    /// Indexed by key; last entry is the sink.
    preds: Vec<Vec<Key>>,
    succs: Vec<Vec<Key>>,
    /// Per-node WCET (sink gets `wcet_min`).
    wcet: Vec<u64>,
    /// Heaviest root→node path weight under the WCET cost model, node
    /// inclusive — the earliest-finish lower bound used for deadlines.
    span_to: Vec<f64>,
    /// `T∞` under the WCET cost model.
    t_inf: f64,
    /// Deadline-carrying tasks (top `critical_ratio` by path-through).
    hard: Vec<bool>,
    /// Hard ∪ ancestors(Hard): the priority-boosted set.
    critical: Vec<bool>,
    values: ShardedMap<u64>,
    poisoned: ShardedMap<bool>,
}

impl std::fmt::Debug for RandDag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandDag")
            .field("cfg", &self.cfg)
            .field("tasks", &self.preds.len())
            .field("hard", &self.hard_tasks().len())
            .finish()
    }
}

impl RandDag {
    /// Generate the instance `cfg` describes.
    pub fn generate(cfg: DagGenConfig) -> RandDag {
        let layers = cfg.layers.max(1);
        let max_width = cfg.max_width.max(1);
        let mut rng = XorShift64Star::new(cfg.seed ^ 0xDA61_DA61_DA61_DA61);
        let edge_threshold = (cfg.edge_prob.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        // Long-range edges are rare on purpose: enough to break the strict
        // layer lattice, not enough to densify every node.
        let long_threshold = edge_threshold / 4;

        // Layer widths, then contiguous node ids layer by layer.
        let mut layer_nodes: Vec<Vec<Key>> = Vec::with_capacity(layers);
        let mut next_id: Key = 0;
        for _ in 0..layers {
            let w = 1 + rng.next_below(max_width);
            layer_nodes.push((next_id..next_id + w as Key).collect());
            next_id += w as Key;
        }
        let n_inner = next_id as usize;
        let sink = n_inner as Key;

        let mut preds: Vec<Vec<Key>> = vec![Vec::new(); n_inner + 1];
        for l in 1..layers {
            // Split the borrow: earlier layers are read-only here.
            let (earlier, current) = layer_nodes.split_at(l);
            let prev = &earlier[l - 1];
            for &k in &current[0] {
                let p = &mut preds[k as usize];
                for &q in prev {
                    if rng.next_u64() < edge_threshold {
                        p.push(q);
                    }
                }
                if p.is_empty() {
                    // Erdős–Rényi left the node orphaned: connect it so
                    // every non-source task has a dependence to exercise.
                    p.push(prev[rng.next_below(prev.len())]);
                }
                if l >= 2 && rng.next_u64() < long_threshold {
                    let ll = rng.next_below(l - 1);
                    let q = earlier[ll][rng.next_below(earlier[ll].len())];
                    if !p.contains(&q) {
                        p.push(q);
                    }
                }
            }
        }

        let mut succs: Vec<Vec<Key>> = vec![Vec::new(); n_inner + 1];
        for (k, ps) in preds.iter().enumerate().take(n_inner) {
            for &q in ps {
                succs[q as usize].push(k as Key);
            }
        }
        // The sink collects every childless node, making the whole graph
        // backward-reachable from it.
        let sink_preds: Vec<Key> = (0..n_inner as Key)
            .filter(|&k| succs[k as usize].is_empty())
            .collect();
        for &q in &sink_preds {
            succs[q as usize].push(sink);
        }
        preds[n_inner] = sink_preds;

        let wcet_min = cfg.wcet_min.max(1);
        let wcet_max = cfg.wcet_max.max(wcet_min);
        let mut wcet: Vec<u64> = (0..n_inner)
            .map(|_| wcet_min + rng.next_below((wcet_max - wcet_min + 1) as usize) as u64)
            .collect();
        wcet.push(wcet_min); // sink

        let mut dag = RandDag {
            cfg,
            preds,
            succs,
            wcet,
            span_to: Vec::new(),
            t_inf: 0.0,
            hard: vec![false; n_inner + 1],
            critical: vec![false; n_inner + 1],
            values: ShardedMap::with_shards(16),
            poisoned: ShardedMap::with_shards(16),
        };

        // Critical-path decomposition under the WCET cost model, via the
        // shared analysis machinery. `pa.order` covers every task (all are
        // backward-reachable from the sink).
        let w = dag.wcet.clone();
        let pa = path_analysis(&dag, |k| w[k as usize] as f64);
        dag.t_inf = pa.t_inf;
        dag.span_to = vec![0.0; n_inner + 1];
        let mut ranked: Vec<(f64, Key)> = Vec::with_capacity(n_inner);
        for (i, &k) in pa.order.iter().enumerate() {
            dag.span_to[k as usize] = pa.span_to[i];
            if k != sink {
                ranked.push((pa.path_through(i), k));
            }
        }
        // Heaviest path-through first; key tie-break keeps it a pure
        // function of the config.
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let n_hard = ((dag.cfg.critical_ratio.clamp(0.0, 1.0) * n_inner as f64).ceil() as usize)
            .min(n_inner);
        for &(_, k) in &ranked[..n_hard] {
            dag.hard[k as usize] = true;
        }
        // Critical = Hard closed under ancestors: a hard task's start is
        // gated by *all* its predecessors, so they must be boosted too.
        let mut stack: Vec<Key> = dag.hard_tasks();
        for &k in &stack {
            dag.critical[k as usize] = true;
        }
        while let Some(k) = stack.pop() {
            for &p in &dag.preds[k as usize] {
                if !dag.critical[p as usize] {
                    dag.critical[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        dag
    }

    /// The config this instance was generated from.
    pub fn config(&self) -> &DagGenConfig {
        &self.cfg
    }

    /// Number of tasks, sink included.
    pub fn task_count(&self) -> usize {
        self.preds.len()
    }

    /// All task keys in ascending (= topological) order, sink last.
    pub fn all_keys(&self) -> Vec<Key> {
        (0..self.preds.len() as Key).collect()
    }

    /// Keys of the Hard (deadline-carrying) tasks, ascending.
    pub fn hard_tasks(&self) -> Vec<Key> {
        (0..self.preds.len() as Key)
            .filter(|&k| self.hard[k as usize])
            .collect()
    }

    /// Keys of the priority-boosted set (Hard ∪ ancestors), ascending.
    pub fn critical_tasks(&self) -> Vec<Key> {
        (0..self.preds.len() as Key)
            .filter(|&k| self.critical[k as usize])
            .collect()
    }

    /// Is `k` a Hard task?
    pub fn is_hard(&self, k: Key) -> bool {
        self.hard.get(k as usize).copied().unwrap_or(false)
    }

    /// WCET of `k` in abstract work units.
    pub fn wcet_of(&self, k: Key) -> u64 {
        self.wcet[k as usize]
    }

    /// Sum of all WCETs (the `T1` of the WCET cost model, notify costs
    /// excluded).
    pub fn total_wcet(&self) -> u64 {
        self.wcet.iter().sum()
    }

    /// Heaviest root→`k` path weight (earliest-finish lower bound for `k`
    /// under the WCET model).
    pub fn span_to_wcet(&self, k: Key) -> f64 {
        self.span_to[k as usize]
    }

    /// `T∞` under the WCET cost model.
    pub fn t_inf_wcet(&self) -> f64 {
        self.t_inf
    }

    /// Mean inner-layer width (parallelism proxy for deadline stretch).
    pub fn avg_width(&self) -> f64 {
        (self.task_count() - 1) as f64 / self.cfg.layers.max(1) as f64
    }

    /// The priority function for this DAG: critical tasks spawn High.
    /// Hand it to the scheduler via `SchedOpts { priority: Some(..), .. }`.
    pub fn priority_fn(&self) -> PriorityFn {
        let critical = self.critical.clone();
        Arc::new(move |k: Key| {
            if critical.get(k as usize).copied().unwrap_or(false) {
                Priority::High
            } else {
                Priority::Normal
            }
        })
    }

    /// The computed value of `k`, if it has been computed.
    pub fn value_of(&self, k: Key) -> Option<u64> {
        self.values.get(k)
    }
}

impl TaskGraph for RandDag {
    fn sink(&self) -> Key {
        (self.preds.len() - 1) as Key
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        self.preds.get(key as usize).cloned().unwrap_or_default()
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        self.succs.get(key as usize).cloned().unwrap_or_default()
    }

    fn predecessors_into(&self, key: Key, out: &mut Vec<Key>) {
        out.clear();
        if let Some(p) = self.preds.get(key as usize) {
            out.extend_from_slice(p);
        }
    }

    fn out_degree(&self, key: Key) -> usize {
        self.succs.get(key as usize).map_or(0, Vec::len)
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.cfg.seed;
        for &p in &self.preds[key as usize] {
            // A poisoned input is a detected data fault in `p`.
            if self.poisoned.get(p).unwrap_or(false) {
                return Err(Fault::data(p));
            }
            let pv = self
                .values
                .get(p)
                .expect("predecessor value present (dependences guarantee it)");
            h = h.rotate_left(13) ^ pv.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        }
        let spin = self.wcet[key as usize] * self.cfg.work_unit;
        if spin > 0 {
            let mut acc = h;
            for i in 0..spin {
                acc = acc.wrapping_add(i).rotate_left(7) ^ 0x9E37_79B9;
            }
            std::hint::black_box(acc);
        }
        self.values.replace(key, h);
        // A fresh (re-)execution produces clean data.
        self.poisoned.replace(key, false);
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        self.poisoned.replace(key, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler, SchedOpts};
    use nabbit_ft::seq;

    fn cfg(seed: u64) -> DagGenConfig {
        DagGenConfig::new(8, 6, 0.35, seed)
    }

    #[test]
    fn same_config_same_graph() {
        let a = RandDag::generate(cfg(42));
        let b = RandDag::generate(cfg(42));
        assert_eq!(a.task_count(), b.task_count());
        for k in a.all_keys() {
            assert_eq!(a.predecessors(k), b.predecessors(k));
            assert_eq!(a.wcet_of(k), b.wcet_of(k));
            assert_eq!(a.is_hard(k), b.is_hard(k));
        }
        assert_eq!(a.hard_tasks(), b.hard_tasks());
        assert_eq!(a.critical_tasks(), b.critical_tasks());
    }

    #[test]
    fn hot_path_overrides_match_defaults() {
        let d = RandDag::generate(cfg(42));
        let mut buf = Vec::new();
        for k in d.all_keys() {
            d.predecessors_into(k, &mut buf);
            assert_eq!(buf, d.predecessors(k));
            assert_eq!(d.out_degree(k), d.successors(k).len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandDag::generate(cfg(1));
        let b = RandDag::generate(cfg(2));
        let differs = a.task_count() != b.task_count()
            || a.all_keys()
                .iter()
                .any(|&k| a.predecessors(k) != b.predecessors(k));
        assert!(differs, "two seeds produced the identical graph");
    }

    #[test]
    fn structure_is_a_layered_dag() {
        for seed in 0..20 {
            let d = RandDag::generate(cfg(seed));
            let sink = d.sink();
            for k in d.all_keys() {
                for p in d.predecessors(k) {
                    assert!(p < k, "edges point forward: {p} -> {k}");
                    assert!(d.successors(p).contains(&k), "succ list of {p} missing {k}");
                }
                if k != sink && d.successors(k).is_empty() {
                    panic!("childless inner node {k} not wired to the sink");
                }
            }
            // Every non-source inner node has at least one predecessor.
            let sources: usize = d
                .all_keys()
                .iter()
                .filter(|&&k| k != sink && d.predecessors(k).is_empty())
                .count();
            assert!(sources >= 1, "at least layer 0 is source-only");
        }
    }

    #[test]
    fn every_task_backward_reachable_from_sink() {
        let d = RandDag::generate(cfg(7));
        let mut seen = vec![false; d.task_count()];
        let mut stack = vec![d.sink()];
        seen[d.sink() as usize] = true;
        while let Some(k) = stack.pop() {
            for p in d.predecessors(k) {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "unreachable tasks exist");
    }

    #[test]
    fn hard_count_follows_ratio_and_critical_is_ancestor_closed() {
        for ratio in [0.0, 0.3, 0.5, 0.7, 1.0] {
            let mut c = cfg(9);
            c.critical_ratio = ratio;
            let d = RandDag::generate(c);
            let n_inner = d.task_count() - 1;
            let expect = ((ratio * n_inner as f64).ceil() as usize).min(n_inner);
            assert_eq!(d.hard_tasks().len(), expect, "ratio {ratio}");
            // Critical ⊇ Hard and closed under predecessors.
            for &k in &d.hard_tasks() {
                assert!(d.critical_tasks().contains(&k));
            }
            for &k in &d.critical_tasks() {
                for p in d.predecessors(k) {
                    assert!(
                        d.critical_tasks().contains(&p),
                        "ratio {ratio}: critical {k} has non-critical pred {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn hard_tasks_rank_by_path_through() {
        // With ratio 0.5 the hard set's *minimum* path-through weight must
        // be >= the soft set's maximum (modulo exact ties, excluded by the
        // deterministic tie-break on key).
        let d = RandDag::generate(cfg(11));
        let w: Vec<u64> = d.all_keys().iter().map(|&k| d.wcet_of(k)).collect();
        let pa = path_analysis(&d, |k| w[k as usize] as f64);
        let through: std::collections::HashMap<Key, f64> = pa
            .order
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, pa.path_through(i)))
            .collect();
        let sink = d.sink();
        let hard_min = d
            .hard_tasks()
            .iter()
            .map(|k| through[k])
            .fold(f64::INFINITY, f64::min);
        let soft_max = d
            .all_keys()
            .iter()
            .filter(|&&k| k != sink && !d.is_hard(k))
            .map(|k| through[k])
            .fold(0.0f64, f64::max);
        assert!(
            hard_min >= soft_max,
            "hard min {hard_min} < soft max {soft_max}"
        );
    }

    #[test]
    fn sequential_run_produces_values() {
        let d = RandDag::generate(cfg(3));
        seq::run(&d).unwrap();
        for k in d.all_keys() {
            assert!(d.value_of(k).is_some(), "task {k} has no value");
        }
    }

    #[test]
    fn both_engines_run_it_and_values_match_seq() {
        let reference = {
            let d = RandDag::generate(cfg(5));
            seq::run(&d).unwrap();
            d.all_keys()
                .iter()
                .map(|&k| (k, d.value_of(k).unwrap()))
                .collect::<std::collections::HashMap<_, _>>()
        };
        let pool = Pool::new(PoolConfig::with_threads(4));

        let d = Arc::new(RandDag::generate(cfg(5)));
        let r = BaselineScheduler::new(Arc::clone(&d) as _).run(&pool);
        assert!(r.sink_completed);
        for k in d.all_keys() {
            assert_eq!(d.value_of(k), reference.get(&k).copied(), "baseline {k}");
        }

        let d = Arc::new(RandDag::generate(cfg(5)));
        let keys = d.all_keys();
        let plan = Arc::new(FaultPlan::sample(&keys, 5, Phase::AfterCompute, 77));
        let r = FtScheduler::with_plan(Arc::clone(&d) as _, plan).run(&pool);
        assert!(r.sink_completed);
        assert_eq!(r.injected, 5);
        for k in d.all_keys() {
            assert_eq!(d.value_of(k), reference.get(&k).copied(), "ft {k}");
        }
    }

    #[test]
    fn priority_mode_runs_clean_with_faults() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        let d = Arc::new(RandDag::generate(cfg(13)));
        let keys = d.all_keys();
        let plan = Arc::new(FaultPlan::sample(&keys, 8, Phase::AfterCompute, 5));
        let opts = SchedOpts {
            priority: Some(d.priority_fn()),
            deadline: Some(Arc::new(nabbit_ft::deadline::DeadlineMonitor::new())),
        };
        let dl = opts.deadline.clone().unwrap();
        let r = FtScheduler::with_opts(Arc::clone(&d) as _, plan, None, opts).run(&pool);
        assert!(r.sink_completed);
        assert_eq!(dl.len(), d.task_count(), "every task completed once");
    }

    #[test]
    fn priority_fn_boosts_exactly_the_critical_set() {
        let d = RandDag::generate(cfg(17));
        let f = d.priority_fn();
        for k in d.all_keys() {
            let expect = if d.critical_tasks().contains(&k) {
                Priority::High
            } else {
                Priority::Normal
            };
            assert_eq!(f(k), expect, "task {k}");
        }
    }

    #[test]
    fn work_unit_spins_do_not_change_values() {
        let quick = RandDag::generate(cfg(19));
        seq::run(&quick).unwrap();
        let mut slow_cfg = cfg(19);
        slow_cfg.work_unit = 50;
        let slow = RandDag::generate(slow_cfg);
        seq::run(&slow).unwrap();
        for k in quick.all_keys() {
            assert_eq!(quick.value_of(k), slow.value_of(k));
        }
    }
}
