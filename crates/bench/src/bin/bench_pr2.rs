//! `bench_pr2` — machine-readable perf trajectory snapshot.
//!
//! Emits `BENCH_PR2.json` (repo root by default): baseline-vs-FT wall
//! clock and task throughput on a scheduler-bound synthetic grid plus two
//! compute-bound paper apps, and the paper's headline number — the
//! **no-fault FT overhead %** (Figure 4's left edge). CI runs it as a
//! release-build smoke test; the JSON gives successive PRs a fixed format
//! to compare against.
//!
//! Usage: `bench_pr2 [--reps N] [--threads T] [--out PATH]`
//!
//! `FT_BENCH_REPS` / `FT_BENCH_THREADS` override the defaults (CLI flags
//! override both); the resolved values and the git revision are recorded
//! in the emitted JSON.

use ft_apps::AppConfig;
use ft_bench::report::fmt_pct;
use ft_bench::snapshot::{bench_app, bench_grid};
use ft_bench::AppKind;
use ft_steal::pool::{Pool, PoolConfig};
use std::io::Write;

fn main() {
    let mut reps = ft_bench::meta::env_usize("FT_BENCH_REPS", 5);
    let mut threads = ft_bench::meta::env_usize("FT_BENCH_THREADS", 2);
    let mut out = String::from("BENCH_PR2.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads T")
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: bench_pr2 [--reps N] [--threads T] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let pool = Pool::new(PoolConfig::with_threads(threads));
    let results = vec![
        bench_grid(&pool, 96, reps),
        bench_app(&pool, AppKind::Lcs, AppConfig::new(2048, 64), reps),
        bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps),
    ];

    for r in &results {
        println!(
            "{:<18} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  overhead {}",
            r.name,
            r.tasks,
            r.baseline.mean,
            r.baseline.std,
            r.ft.mean,
            r.ft.std,
            fmt_pct(r.overhead_pct()),
        );
    }

    let rows: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n  \"schema\": \"bench_pr2/v1\",\n  \"git_rev\": \"{}\",\n  \
         \"threads\": {},\n  \"reps\": {},\n  \"pool_reuse\": {},\n  \
         \"benches\": [\n{}\n  ]\n}}\n",
        ft_bench::meta::git_rev(),
        threads,
        reps,
        ft_bench::meta::POOL_REUSE,
        rows.join(",\n")
    );
    let mut f = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
