//! Manifest handling: `docs/LOOM_COVERAGE.toml` (rules L4/L8) and
//! `docs/PROTOCOLS.toml` (rules L6/L7), plus the protocol-content
//! fingerprints behind `ft-lint --restamp`.
//!
//! Both files are parsed with the same hand-rolled TOML subset PR 5 used
//! for the coverage manifest (the workspace builds offline, so no `toml`
//! crate): `[[table]]` arrays whose entries hold string keys and
//! (possibly multiline) string arrays. Everything the linter does not
//! understand is preserved verbatim by the restamp rewriter.

use crate::lexer::{has_word, lex, test_region_start, Line};
use crate::parser::ATOMIC_TYPES;
use std::fmt::Write as _;
use std::path::Path;

/// One `[[entry]]` of `docs/LOOM_COVERAGE.toml`.
#[derive(Debug, Clone, Default)]
pub struct LoomEntry {
    /// Claimed file, repo-relative.
    pub path: String,
    /// 1-based line of the `[[entry]]` header.
    pub line: usize,
    /// Loom model files exercising the claimed protocol.
    pub models: Vec<String>,
    /// Freshness stamp: FNV-1a 64 over the file's protocol lines, or
    /// `None` for a not-yet-stamped entry (rule L8 flags it).
    pub fingerprint: Option<String>,
    /// 1-based line of the `fingerprint` key (for diagnostics/rewrites).
    pub fingerprint_line: Option<usize>,
}

/// Parsed loom-coverage manifest.
#[derive(Debug, Clone, Default)]
pub struct LoomManifest {
    /// Entries in file order.
    pub entries: Vec<LoomEntry>,
}

impl LoomManifest {
    /// Parse the manifest source. Unknown keys are ignored.
    pub fn parse(src: &str) -> Self {
        let mut m = LoomManifest::default();
        let mut array_key: Option<String> = None;
        for (idx, raw) in src.lines().enumerate() {
            let t = strip_toml_comment(raw);
            if let Some(key) = continue_array(&mut array_key, t, &mut m.entries, idx) {
                array_key = key;
                continue;
            }
            if t == "[[entry]]" {
                m.entries.push(LoomEntry {
                    line: idx + 1,
                    ..LoomEntry::default()
                });
                continue;
            }
            let Some(last) = m.entries.last_mut() else {
                continue;
            };
            if let Some(v) = string_value(t, "path") {
                last.path = v;
            } else if let Some(v) = string_value(t, "fingerprint") {
                last.fingerprint = Some(v);
                last.fingerprint_line = Some(idx + 1);
            } else if let Some(rest) = array_start(t, "models") {
                last.models.extend(string_items(rest));
                if !rest.trim_end().ends_with(']') {
                    array_key = Some("models".to_string());
                }
            }
        }
        m
    }

    /// The entry claiming `rel`, if any.
    pub fn entry_for(&self, rel: &str) -> Option<&LoomEntry> {
        self.entries.iter().find(|e| e.path == rel)
    }
}

/// One `[[protocol]]` of `docs/PROTOCOLS.toml`.
#[derive(Debug, Clone, Default)]
pub struct Protocol {
    /// Protocol name, referenced by `// sc:` fence tags.
    pub name: String,
    /// 1-based line of the `[[protocol]]` header.
    pub line: usize,
    /// Explicit heading anchor in `docs/ALGORITHM.md` (`<a id="...">`).
    pub anchor: String,
    /// Loom suites exercising the protocol (empty needs `notes`).
    pub loom: Vec<String>,
    /// Claimed atomic fields: `(key, manifest_line)` with keys shaped
    /// `<file>::<Struct>::<field>`.
    pub fields: Vec<(String, usize)>,
    /// Why no loom suite, when `loom` is empty.
    pub notes: String,
}

/// Parsed protocol manifest.
#[derive(Debug, Clone, Default)]
pub struct Protocols {
    /// Protocols in file order.
    pub protocols: Vec<Protocol>,
}

impl Protocols {
    /// Parse the manifest source. Unknown keys are ignored.
    pub fn parse(src: &str) -> Self {
        let mut m = Protocols::default();
        let mut array_key: Option<String> = None;
        for (idx, raw) in src.lines().enumerate() {
            let t = strip_toml_comment(raw);
            if let Some(last) = m.protocols.last_mut() {
                if let Some(key) = &array_key {
                    let items = string_items(t);
                    match key.as_str() {
                        "loom" => last.loom.extend(items),
                        _ => last.fields.extend(items.into_iter().map(|s| (s, idx + 1))),
                    }
                    if t.contains(']') {
                        array_key = None;
                    }
                    continue;
                }
            }
            if t == "[[protocol]]" {
                m.protocols.push(Protocol {
                    line: idx + 1,
                    ..Protocol::default()
                });
                continue;
            }
            let Some(last) = m.protocols.last_mut() else {
                continue;
            };
            if let Some(v) = string_value(t, "name") {
                last.name = v;
            } else if let Some(v) = string_value(t, "anchor") {
                last.anchor = v;
            } else if let Some(v) = string_value(t, "notes") {
                last.notes = v;
            } else if let Some(rest) = array_start(t, "loom") {
                last.loom.extend(string_items(rest));
                if !rest.trim_end().ends_with(']') {
                    array_key = Some("loom".to_string());
                }
            } else if let Some(rest) = array_start(t, "fields") {
                last.fields
                    .extend(string_items(rest).into_iter().map(|s| (s, idx + 1)));
                if !rest.trim_end().ends_with(']') {
                    array_key = Some("fields".to_string());
                }
            }
        }
        m
    }

    /// The protocol named `name`, if declared.
    pub fn by_name(&self, name: &str) -> Option<&Protocol> {
        self.protocols.iter().find(|p| p.name == name)
    }

    /// The protocol claiming field `key`, if any.
    pub fn claimant(&self, key: &str) -> Option<&Protocol> {
        self.protocols
            .iter()
            .find(|p| p.fields.iter().any(|(f, _)| f == key))
    }
}

/// `LoomManifest::parse` helper: consume one line of an open multiline
/// `models = [` array. Returns `Some(next_state)` when the line belonged
/// to the array.
fn continue_array(
    array_key: &mut Option<String>,
    t: &str,
    entries: &mut [LoomEntry],
    _idx: usize,
) -> Option<Option<String>> {
    if array_key.is_none() {
        return None;
    }
    if let Some(last) = entries.last_mut() {
        last.models.extend(string_items(t));
    }
    Some(if t.contains(']') {
        None
    } else {
        array_key.take()
    })
}

/// Strip a trailing `#` TOML comment (quote-aware) and trim.
fn strip_toml_comment(raw: &str) -> &str {
    let mut in_str = false;
    for (i, c) in raw.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return raw[..i].trim(),
            _ => {}
        }
    }
    raw.trim()
}

/// `key = "value"` → `value`.
fn string_value(t: &str, key: &str) -> Option<String> {
    let rest = t.strip_prefix(key)?.trim_start().strip_prefix('=')?.trim();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// `key = [rest` → `rest` (the array may close on the same line).
fn array_start<'a>(t: &'a str, key: &str) -> Option<&'a str> {
    t.strip_prefix(key)?
        .trim_start()
        .strip_prefix('=')?
        .trim()
        .strip_prefix('[')
}

/// All `"..."` string literals on a (partial) TOML array line.
fn string_items(t: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = t;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { break };
        out.push(tail[..close].to_string());
        rest = &tail[close + 1..];
    }
    out
}

/// FNV-1a 64 of the file's **protocol lines**: every non-test code line
/// that mentions an atomic type, an `Ordering::`, a `fence` call or
/// `unsafe`. Comment edits (tags, docs) never disturb the stamp; touching
/// the atomics/unsafe themselves always does.
pub fn protocol_fingerprint(src: &str) -> String {
    let lines = lex(src);
    let test_start = test_region_start(&lines).unwrap_or(lines.len());
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |s: &str| {
        for b in s.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for line in &lines[..test_start] {
        if is_protocol_line(line) {
            feed(line.code.trim());
            feed("\n");
        }
    }
    format!("{hash:016x}")
}

/// Does this line carry protocol-relevant code (see
/// [`protocol_fingerprint`])?
fn is_protocol_line(line: &Line) -> bool {
    let code = &line.code;
    if code.contains("Ordering::") || has_word(code, "unsafe") || has_word(code, "fence") {
        return true;
    }
    ATOMIC_TYPES.iter().any(|t| has_word(code, t))
}

/// Rewrite `docs/LOOM_COVERAGE.toml` in place with fresh fingerprints for
/// every entry whose claimed file exists under `root`. Returns the number
/// of entries whose stamp changed (added or updated). Everything except
/// `fingerprint` lines is preserved byte-for-byte.
pub fn restamp(root: &Path, manifest_rel: &Path) -> std::io::Result<usize> {
    let manifest_path = root.join(manifest_rel);
    let src = std::fs::read_to_string(&manifest_path)?;
    let mut out = String::with_capacity(src.len() + 256);
    let mut changed = 0usize;
    let mut pending_path: Option<String> = None;

    // Emit (or replace) the fingerprint line directly after `path = ...`,
    // so stamps sit next to what they stamp.
    for raw in src.lines() {
        let t = strip_toml_comment(raw);
        if string_value(t, "fingerprint").is_some() {
            continue; // old stamp: superseded below
        }
        let _ = writeln!(out, "{raw}");
        if let Some(path) = string_value(t, "path") {
            pending_path = Some(path);
        }
        if let Some(path) = pending_path.take() {
            let file = root.join(&path);
            if let Ok(claimed_src) = std::fs::read_to_string(&file) {
                let fp = protocol_fingerprint(&claimed_src);
                let old = LoomManifest::parse(&src)
                    .entry_for(&path)
                    .and_then(|e| e.fingerprint.clone());
                if old.as_deref() != Some(fp.as_str()) {
                    changed += 1;
                }
                let _ = writeln!(out, "fingerprint = \"{fp}\"");
            }
            // A claim on a missing file gets no stamp; rule L8 reports
            // the dangling entry itself.
        }
    }
    if out != src {
        std::fs::write(&manifest_path, out)?;
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOM: &str = r#"
# header comment
[[entry]]
path = "a/b.rs"
fingerprint = "00ff"
models = ["m/one.rs"]
notes = "x"

[[entry]]
path = "c/d.rs"
models = [
    "m/one.rs",
    "m/two.rs",
]
"#;

    #[test]
    fn parses_loom_entries_with_multiline_models() {
        let m = LoomManifest::parse(LOOM);
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.entries[0].path, "a/b.rs");
        assert_eq!(m.entries[0].fingerprint.as_deref(), Some("00ff"));
        assert_eq!(m.entries[1].fingerprint, None);
        assert_eq!(m.entries[1].models, vec!["m/one.rs", "m/two.rs"]);
        assert!(m.entry_for("c/d.rs").is_some());
    }

    const PROTO: &str = r#"
[[protocol]]
name = "seqlock"
anchor = "seqlock-read-path"
loom = ["crates/cmap/tests/loom_seqlock.rs"]
fields = [
    "crates/cmap/src/map.rs::Shard::seq",
    "crates/cmap/src/map.rs::Shard::table", # trailing comment
]
notes = "writer windows vs optimistic readers"

[[protocol]]
name = "stats"
anchor = "metrics"
loom = []
fields = ["crates/core/src/metrics.rs::ShardedCounter::lanes"]
notes = "relaxed counters, read at quiescence"
"#;

    #[test]
    fn parses_protocols() {
        let p = Protocols::parse(PROTO);
        assert_eq!(p.protocols.len(), 2);
        let s = p.by_name("seqlock").expect("seqlock declared");
        assert_eq!(s.anchor, "seqlock-read-path");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].0, "crates/cmap/src/map.rs::Shard::table");
        let claimant = p
            .claimant("crates/core/src/metrics.rs::ShardedCounter::lanes")
            .expect("claimed");
        assert_eq!(claimant.name, "stats");
        assert!(p.by_name("absent").is_none());
    }

    #[test]
    fn fingerprint_tracks_code_not_comments() {
        let a = "fn f(x: &AtomicU64) {\n    x.store(1, Ordering::Release);\n}\n";
        let with_comment =
            "fn f(x: &AtomicU64) {\n    // ord: Release — publish.\n    x.store(1, Ordering::Release);\n}\n";
        let changed = "fn f(x: &AtomicU64) {\n    x.store(1, Ordering::Relaxed);\n}\n";
        assert_eq!(
            protocol_fingerprint(a),
            protocol_fingerprint(with_comment),
            "comment-only edits keep the stamp"
        );
        assert_ne!(
            protocol_fingerprint(a),
            protocol_fingerprint(changed),
            "ordering edits break the stamp"
        );
    }

    #[test]
    fn fingerprint_ignores_test_region_and_plain_code() {
        let a = "fn g() { let v = 1; }\nfn f(x: &AtomicU64) { x.store(1, Ordering::SeqCst); }\n";
        let b = "fn g() { let v = 2; }\nfn f(x: &AtomicU64) { x.store(1, Ordering::SeqCst); }\n#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicU64) { x.store(9, Ordering::SeqCst); }\n}\n";
        assert_eq!(protocol_fingerprint(a), protocol_fingerprint(b));
    }

    #[test]
    fn restamp_rewrites_in_place() {
        let dir = std::env::temp_dir().join(format!("ftlint-restamp-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).unwrap();
        std::fs::write(
            dir.join("src/a.rs"),
            "fn f(x: &AtomicU64) { x.store(1, Ordering::SeqCst); }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("cov.toml"),
            "[[entry]]\npath = \"src/a.rs\"\nmodels = []\nnotes = \"n\"\n",
        )
        .unwrap();
        let changed = restamp(&dir, Path::new("cov.toml")).unwrap();
        assert_eq!(changed, 1);
        let rewritten = std::fs::read_to_string(dir.join("cov.toml")).unwrap();
        assert!(rewritten.contains("fingerprint = \""), "{rewritten}");
        assert!(rewritten.contains("notes = \"n\""), "other keys preserved");
        // Second run: stamp already fresh.
        assert_eq!(restamp(&dir, Path::new("cov.toml")).unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
