//! An irregular analytics pipeline assembled with [`GraphBuilder`]: ingest
//! shards, per-shard transforms, two aggregation stages, and a final
//! report — the kind of glue DAG a downstream user writes in ten minutes —
//! run with soft-error injection on the aggregators.
//!
//! Run with: `cargo run --release --example pipeline -p nabbit-ft`

use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::builder::GraphBuilder;
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::FtScheduler;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

// Key layout: 100+i = ingest shard i; 200+i = transform shard i;
// 300 = aggregate even shards; 301 = aggregate odd shards; 400 = report.
const SHARDS: i64 = 8;

fn main() {
    // Shared, resilient intermediate state (a real pipeline would use the
    // BlockStore; plain maps keep the example focused on the graph).
    let store: Arc<Mutex<HashMap<i64, Vec<u64>>>> = Arc::new(Mutex::new(HashMap::new()));

    let mut b = GraphBuilder::new();
    for i in 0..SHARDS {
        let st = Arc::clone(&store);
        b = b.task(100 + i, move |key, _| {
            // Ingest: deterministic synthetic records for shard i.
            let shard = key - 100;
            let records: Vec<u64> = (0..1000u64)
                .map(|r| r.wrapping_mul(31).wrapping_add(shard as u64 * 7))
                .collect();
            st.lock().insert(key, records);
            Ok(())
        });
        let st = Arc::clone(&store);
        b = b.task(200 + i, move |key, _| {
            // Transform: filter + square.
            let src = st.lock().get(&(key - 100)).expect("ingested").clone();
            let out: Vec<u64> = src
                .into_iter()
                .filter(|r| r % 3 != 0)
                .map(|r| r.wrapping_mul(r))
                .collect();
            st.lock().insert(key, out);
            Ok(())
        });
        b = b.edge(100 + i, 200 + i);
    }
    for agg in [300i64, 301] {
        let st = Arc::clone(&store);
        b = b.task(agg, move |key, _| {
            let parity = key - 300;
            let mut sum = 0u64;
            let guard = st.lock();
            for i in 0..SHARDS {
                if i % 2 == parity {
                    sum = sum.wrapping_add(
                        guard
                            .get(&(200 + i))
                            .expect("transformed")
                            .iter()
                            .sum::<u64>(),
                    );
                }
            }
            drop(guard);
            st.lock().insert(key, vec![sum]);
            Ok(())
        });
        for i in 0..SHARDS {
            if i % 2 == agg - 300 {
                b = b.edge(200 + i, agg);
            }
        }
    }
    let st = Arc::clone(&store);
    b = b.task(400, move |_, _| {
        let g = st.lock();
        let total = g[&300][0].wrapping_add(g[&301][0]);
        println!("  report: combined checksum = {total:#018x}");
        Ok(())
    });
    b = b.edge(300, 400).edge(301, 400);

    let graph = Arc::new(b.build().expect("valid DAG"));
    println!(
        "pipeline: {} tasks ({} shards x ingest+transform, 2 aggregators, 1 report)",
        graph.len(),
        SHARDS
    );

    let pool = Pool::new(PoolConfig::with_threads(4));

    // Run once cleanly.
    println!("\nfault-free run:");
    let report = FtScheduler::new(Arc::clone(&graph) as _).run(&pool);
    assert!(report.sink_completed);
    println!("  {}", report.summary());

    // Run again with both aggregators failing after compute — twice each.
    println!("\nrun with both aggregators failing twice after compute:");
    let plan = FaultPlan::new([
        FaultSite {
            key: 300,
            phase: Phase::AfterCompute,
            fires: 2,
        },
        FaultSite {
            key: 301,
            phase: Phase::AfterCompute,
            fires: 2,
        },
    ]);
    let report = FtScheduler::with_plan(Arc::clone(&graph) as _, Arc::new(plan)).run(&pool);
    assert!(report.sink_completed);
    println!("  {}", report.summary());
    assert_eq!(report.injected, 4);
    assert!(report.re_executions >= 4);
    println!("\nsame checksum both times: recovery is exact (Theorem 1).");
}
