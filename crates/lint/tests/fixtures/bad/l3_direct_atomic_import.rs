//! Bad fixture for L3: importing atomics directly instead of via ft-sync.

use std::sync::atomic::AtomicBool;

pub static READY: AtomicBool = AtomicBool::new(false);
