//! Bad fixture for L6: an SC fence with no `// sc:` protocol tag.

use ft_sync::atomic::{fence, Ordering};

pub fn publish_side() {
    fence(Ordering::SeqCst);
}
