//! Loom model tests for the segmented lock-free injector: concurrent
//! push/steal, block-boundary crossing, and batch stealing into a worker
//! deque.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-steal --test loom_injector
//! ```
//!
//! Under `--cfg loom` the injector compiles against `loom::sync::atomic`,
//! so every index CAS, slot-state store, and block-pointer publication is
//! a model-exploration point. `LOOM_MAX_ITERS` / `LOOM_SEED` control the
//! exploration budget and make failures replayable.
#![cfg(loom)]

use ft_steal::deque::deque;
use ft_steal::injector::Injector;
use std::collections::HashSet;
use std::sync::Arc;

/// One element, two thieves: exactly one steal succeeds, the element is
/// neither lost nor duplicated, and the queue reports empty afterwards.
#[test]
fn injector_single_element_two_thieves() {
    loom::model(|| {
        let q = Arc::new(Injector::<u64>::new());
        q.push(42);
        let q2 = Arc::clone(&q);
        let thief = loom::thread::spawn(move || q2.steal());
        let here = q.steal();
        let there = thief.join().unwrap();
        match (here, there) {
            (Some(42), None) | (None, Some(42)) => {}
            other => panic!("element lost or duplicated: {other:?}"),
        }
        assert!(q.is_empty());
    });
}

/// Two producers and two consumers racing across a block boundary
/// (36 > BLOCK_CAP = 31 items): every pushed element is stolen exactly
/// once, and each producer's elements arrive in its push order.
#[test]
fn injector_mpmc_across_block_boundary_no_loss_no_dup() {
    const PER_PRODUCER: u64 = 18;
    loom::model(|| {
        let q = Arc::new(Injector::<u64>::new());
        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let q = Arc::clone(&q);
                loom::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * 100 + i);
                    }
                })
            })
            .collect();
        let q2 = Arc::clone(&q);
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            while (got.len() as u64) < PER_PRODUCER {
                if let Some(v) = q2.steal() {
                    got.push(v);
                }
            }
            got
        });
        let mut mine = Vec::new();
        while (mine.len() as u64) < PER_PRODUCER {
            if let Some(v) = q.steal() {
                mine.push(v);
            }
        }
        for h in producers {
            h.join().unwrap();
        }
        let stolen = thief.join().unwrap();

        let mut seen = HashSet::new();
        for &v in mine.iter().chain(stolen.iter()) {
            assert!(seen.insert(v), "element {v} stolen twice");
        }
        assert_eq!(seen.len() as u64, 2 * PER_PRODUCER, "elements lost");
        assert!(q.is_empty());

        // MPMC FIFO per producer: each producer's items are consumed in
        // push order by every individual consumer.
        for side in [&mine, &stolen] {
            for p in 0..2u64 {
                let ordered: Vec<u64> = side.iter().copied().filter(|v| v / 100 == p).collect();
                assert!(
                    ordered.windows(2).all(|w| w[0] < w[1]),
                    "producer {p} items out of order: {ordered:?}"
                );
            }
        }
    });
}

/// Batch stealing races single stealing: `steal_batch_and_pop` moves a
/// prefix into the caller's deque and returns one item, while another
/// thread steals singles. Union of (returned, deque contents, singles)
/// must be exactly the pushed set.
#[test]
fn injector_batch_steal_races_single_steal() {
    const N: u64 = 40; // crosses one block boundary
    loom::model(|| {
        let q = Arc::new(Injector::<u64>::new());
        for i in 0..N {
            q.push(i);
        }
        let q2 = Arc::clone(&q);
        let batcher = loom::thread::spawn(move || {
            let (w, _s) = deque::<u64>();
            let mut got = Vec::new();
            while !q2.is_empty() {
                if let Some(first) = q2.steal_batch_and_pop(&w) {
                    got.push(first);
                }
                while let Some(v) = w.pop() {
                    got.push(v);
                }
            }
            got
        });
        let mut singles = Vec::new();
        loop {
            match q.steal() {
                Some(v) => singles.push(v),
                None if q.is_empty() => break,
                None => {}
            }
        }
        let batched = batcher.join().unwrap();

        let mut seen = HashSet::new();
        for &v in singles.iter().chain(batched.iter()) {
            assert!(seen.insert(v), "element {v} consumed twice");
        }
        assert_eq!(
            seen.len() as u64,
            N,
            "lost elements: singles {} + batched {}",
            singles.len(),
            batched.len()
        );
        assert!(q.is_empty());
    });
}

/// Producer racing a consumer right at the boundary slot: the producer
/// claiming the last slot of a block must install the next block before
/// any consumer needs it, and the consumer advancing past the boundary
/// must find it. 33 items forces exactly one boundary crossing.
#[test]
fn injector_boundary_install_vs_consume() {
    const N: u64 = 33;
    loom::model(|| {
        let q = Arc::new(Injector::<u64>::new());
        let q2 = Arc::clone(&q);
        let producer = loom::thread::spawn(move || {
            for i in 0..N {
                q2.push(i);
            }
        });
        let mut got = Vec::new();
        while (got.len() as u64) < N {
            if let Some(v) = q.steal() {
                got.push(v);
            }
        }
        producer.join().unwrap();
        // Single consumer: strict FIFO.
        let expect: Vec<u64> = (0..N).collect();
        assert_eq!(got, expect);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    });
}
