//! The fault-tolerant scheduler — Figure 2 with the shaded additions.
//!
//! Differences from [`super::baseline`], exactly as the paper introduces
//! them:
//!
//! * every descriptor/data access inside a traversal phase is guarded
//!   (Cilk++ try/catch becomes `Result` + `match`);
//! * task keys and **life numbers** are threaded through the call stack
//!   rather than read from (possibly corrupt) descriptors;
//! * `NotifyOnce` consults the per-predecessor **bit vector** before
//!   decrementing the join counter (Guarantee 3);
//! * catch blocks invoke the recovery routines of Figure 3 (implemented in
//!   [`super::recovery`]).
//!
//! Fault injection happens at the three lifecycle points of Section VI
//! (before compute / after compute / after notify) by consulting the run's
//! [`FaultPlan`].

use crate::fault::{Fault, FaultKind};
use crate::graph::{ComputeCtx, Key, TaskGraph};
use crate::inject::{FaultPlan, Phase};
use crate::metrics::{RunMetrics, RunReport};
use crate::task::{FtDesc, Status};
use crate::trace::{Event, Trace};
use ft_cmap::ShardedMap;
use ft_steal::pool::{Executor, Scope};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The fault-tolerant NABBIT scheduler.
pub struct FtScheduler {
    pub(super) graph: Arc<dyn TaskGraph>,
    /// The task map: key → current incarnation.
    pub(super) map: ShardedMap<Arc<FtDesc>>,
    /// The recovery table `R`: key → most recent life whose recovery has
    /// been initiated.
    pub(super) rtable: ShardedMap<u64>,
    pub(super) plan: Arc<FaultPlan>,
    pub(super) metrics: RunMetrics,
    pub(super) trace: Option<Arc<Trace>>,
    /// Mutation-testing switch: when set, `notify_once` ignores the bit
    /// vector and decrements the join counter on every notification —
    /// reintroducing exactly the duplicate-decrement bug Guarantee 3's bit
    /// vector exists to prevent. Tests flip it to prove the trace oracle
    /// catches a broken implementation. Never set in production paths.
    pub(super) sabotage_notify: AtomicBool,
}

impl FtScheduler {
    /// Scheduler with no planned faults.
    pub fn new(graph: Arc<dyn TaskGraph>) -> Arc<Self> {
        Self::with_plan(graph, Arc::new(FaultPlan::none()))
    }

    /// Scheduler with a fault-injection plan. One scheduler = one run.
    pub fn with_plan(graph: Arc<dyn TaskGraph>, plan: Arc<FaultPlan>) -> Arc<Self> {
        Arc::new(FtScheduler {
            graph,
            map: ShardedMap::new(),
            rtable: ShardedMap::with_shards(64),
            plan,
            metrics: RunMetrics::new(),
            trace: None,
            sabotage_notify: AtomicBool::new(false),
        })
    }

    /// Scheduler with a fault plan and an execution trace recorder.
    pub fn with_plan_traced(
        graph: Arc<dyn TaskGraph>,
        plan: Arc<FaultPlan>,
        trace: Arc<Trace>,
    ) -> Arc<Self> {
        Arc::new(FtScheduler {
            graph,
            map: ShardedMap::new(),
            rtable: ShardedMap::with_shards(64),
            plan,
            metrics: RunMetrics::new(),
            trace: Some(trace),
            sabotage_notify: AtomicBool::new(false),
        })
    }

    /// Disable the Guarantee-3 bit-vector check (mutation testing only).
    ///
    /// With this set, duplicate notifications decrement the join counter
    /// instead of being absorbed, so a task can become ready before all its
    /// predecessors computed. The trace oracle must flag such a run as a
    /// G3 violation; see `tests/det_campaigns.rs`.
    #[doc(hidden)]
    pub fn sabotage_notify_bitvec(&self) {
        self.sabotage_notify.store(true, Ordering::Relaxed);
    }

    /// Record a trace event if tracing is enabled.
    #[inline]
    pub(super) fn emit(&self, event: Event) {
        if let Some(t) = &self.trace {
            t.record(event);
        }
    }

    /// Execute the task graph to completion on `exec` despite any faults
    /// the plan injects; returns run statistics.
    ///
    /// Any [`Executor`] works: the multithreaded [`ft_steal::pool::Pool`]
    /// (call sites pass `&pool` unchanged) or the deterministic
    /// single-threaded `ft-det` pool for replayable schedule exploration.
    pub fn run(self: &Arc<Self>, exec: &dyn Executor) -> RunReport {
        let start = Instant::now();
        let sink = self.graph.sink();
        self.insert_if_absent(sink);
        let (sd, life) = self.get_task(sink).expect("sink just inserted");
        let this = Arc::clone(self);
        exec.execute_job(Box::new(move |scope: &Scope<'_>| {
            scope.spawn(move |s| this.init_and_compute(s, sd, sink, life));
        }));
        let mut report = self.metrics.snapshot();
        report.sink_completed = self
            .map
            .get(sink)
            .map(|d| d.status() == Status::Completed)
            .unwrap_or(false);
        report.elapsed = start.elapsed();
        report
    }

    /// Number of distinct task keys ever inserted (diagnostics).
    pub fn tasks_created(&self) -> usize {
        self.map.len()
    }

    /// Number of entries in the recovery table (≥1 failure observed).
    pub fn recovery_table_len(&self) -> usize {
        self.rtable.len()
    }

    /// Per-task execution counts N(A) after a run (Section V's `N`
    /// function) — used by the Theorem 2 bound evaluation.
    pub fn exec_counts(&self) -> Vec<(Key, u64)> {
        self.metrics.exec_counts.entries()
    }

    /// Borrow the task graph this scheduler runs.
    pub fn graph_ref(&self) -> &dyn TaskGraph {
        self.graph.as_ref()
    }

    /// `InsertTaskIfAbsent`.
    pub(super) fn insert_if_absent(&self, key: Key) -> bool {
        let inserted = self.map.insert_if_absent(key, || {
            Arc::new(FtDesc::new(key, 1, self.graph.predecessors(key)))
        });
        if inserted {
            self.emit(Event::Inserted { key });
        }
        inserted
    }

    /// `GetTask`: current incarnation and its life number.
    pub(super) fn get_task(&self, key: Key) -> Option<(Arc<FtDesc>, u64)> {
        self.map.get(key).map(|d| {
            let life = d.life;
            (d, life)
        })
    }

    /// Poison a task: descriptor flag plus every output block version ("a
    /// fault affects both a task and the data blocks it has computed").
    pub(super) fn poison_task(&self, desc: &FtDesc, phase: Phase) {
        desc.poisoned.store(true, Ordering::Release);
        self.graph.poison_outputs(desc.key);
        self.metrics.injected.fetch_add(1, Ordering::Relaxed);
        self.emit(Event::Injected {
            key: desc.key,
            phase,
        });
    }

    /// `InitAndCompute(A, key, life)`.
    pub(super) fn init_and_compute(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: Arc<FtDesc>,
        key: Key,
        life: u64,
    ) {
        for pkey in a.preds.clone() {
            let this = Arc::clone(self);
            let a2 = Arc::clone(&a);
            s.spawn(move |s| this.try_init_compute(s, a2, key, life, pkey));
        }
        // Section VI "before compute" injection point: the task "has
        // traversed its predecessors and is waiting for one or more
        // notifications to be scheduled for execution".
        if self.plan.fire(key, Phase::BeforeCompute) {
            self.poison_task(&a, Phase::BeforeCompute);
        }
        self.notify_once(s, a, key, key, life);
    }

    /// `TryInitCompute(A, key, life, pkey)`.
    pub(super) fn try_init_compute(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: Arc<FtDesc>,
        key: Key,
        life: u64,
        pkey: Key,
    ) {
        let inserted = self.insert_if_absent(pkey);
        let Some((b, blife)) = self.get_task(pkey) else {
            return;
        };
        if inserted {
            let this = Arc::clone(self);
            let b2 = Arc::clone(&b);
            s.spawn(move |s| this.init_and_compute(s, b2, pkey, blife));
        }

        // try { check B; register or observe completion }
        let attempt: Result<bool, Fault> = (|| {
            b.check()?;
            if b.overwritten.load(Ordering::Acquire) {
                // "if (B.overwritten) throw"
                return Err(Fault {
                    source: pkey,
                    kind: FaultKind::Overwritten,
                    life: blife,
                });
            }
            let finished = {
                // Status read under B's notify lock (pairs with the locked
                // re-check in compute_and_notify).
                let mut g = b.notify.lock();
                if b.status() < Status::Computed {
                    g.push(key);
                    false
                } else {
                    true
                }
            };
            Ok(finished)
        })();

        match attempt {
            Ok(true) => self.notify_once(s, a, key, pkey, life),
            Ok(false) => {}
            Err(f) => {
                // catch { RecoverTaskOnce(pkey, blife) }. A is *not*
                // registered with B; B's recovery re-enqueues A via
                // ReinitNotifyEntry (A's bit for B is still set).
                self.emit(Event::FaultObserved {
                    source: f.source,
                    kind: f.kind,
                });
                self.recover_task_once(s, pkey, blife);
            }
        }
    }

    /// `NotifyOnce(A, key, pkey, life)`: unset the bit for `pkey`; decrement
    /// the join counter only if the bit was set; execute A at zero.
    pub(super) fn notify_once(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: Arc<FtDesc>,
        key: Key,
        pkey: Key,
        life: u64,
    ) {
        let attempt: Result<bool, Fault> = (|| {
            a.check()?;
            let ind = a
                .pred_index(pkey)
                .ok_or_else(|| Fault::descriptor(key, life))?;
            let sabotaged = self.sabotage_notify.load(Ordering::Relaxed);
            if a.bits.unset(ind) || sabotaged {
                self.metrics.notifications.fetch_add(1, Ordering::Relaxed);
                self.emit(Event::Notified {
                    key,
                    life,
                    pred: pkey,
                });
                let val = a.join.fetch_sub(1, Ordering::AcqRel) - 1;
                debug_assert!(
                    val >= 0 || sabotaged,
                    "join underflow on task {key} life {life}"
                );
                Ok(val == 0)
            } else {
                // Duplicate notification absorbed (Guarantee 3).
                self.metrics
                    .duplicate_notifications
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(Event::DuplicateNotify {
                    key,
                    life,
                    pred: pkey,
                });
                Ok(false)
            }
        })();

        match attempt {
            Ok(true) => self.compute_and_notify(s, a, key, life),
            Ok(false) => {}
            Err(f) => {
                self.emit(Event::FaultObserved {
                    source: f.source,
                    kind: f.kind,
                });
                self.recover_task_once(s, key, life);
            }
        }
    }

    /// `NotifySuccessor(key, skey)`.
    pub(super) fn notify_successor(self: &Arc<Self>, s: &Scope<'_>, key: Key, skey: Key) {
        let Some((sd, slife)) = self.get_task(skey) else {
            return;
        };
        self.notify_once(s, sd, skey, key, slife);
    }

    /// `ComputeAndNotify(A, key, life)`.
    pub(super) fn compute_and_notify(
        self: &Arc<Self>,
        s: &Scope<'_>,
        a: Arc<FtDesc>,
        key: Key,
        life: u64,
    ) {
        let attempt: Result<(), Fault> = (|| {
            a.check()?;
            let ctx = ComputeCtx::new(
                life,
                a.is_recovery.load(Ordering::Relaxed),
                s.worker_index(),
            );
            if let Err(f) = self.graph.compute(key, &ctx) {
                self.metrics.compute_faults.fetch_add(1, Ordering::Relaxed);
                if f.kind == FaultKind::Overwritten {
                    self.metrics
                        .overwrite_faults
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Err(f);
            }
            // The compute ran to completion: count the work (even if the
            // injection right below discards it — that is exactly the
            // "work lost" the experiments measure).
            self.metrics.record_compute(key);
            self.emit(Event::Computed { key, life });
            // Section VI "after compute" injection point: computed, about
            // to notify successors. The guard right below observes it.
            if self.plan.fire(key, Phase::AfterCompute) {
                self.poison_task(&a, Phase::AfterCompute);
            }
            a.check()?;
            a.set_status(Status::Computed);

            let mut notified = 0usize;
            loop {
                a.check()?;
                let batch: Vec<Key> = {
                    let g = a.notify.lock();
                    g[notified..].to_vec()
                };
                for &skey in &batch {
                    let this = Arc::clone(self);
                    s.spawn(move |s| this.notify_successor(s, key, skey));
                }
                notified += batch.len();
                let g = a.notify.lock();
                if g.len() == notified {
                    a.set_status(Status::Completed);
                    drop(g);
                    self.emit(Event::Completed { key, life });
                    break;
                }
            }
            // Section VI "after notify" injection point: only observed if a
            // later consumer still touches this task or its data.
            if self.plan.fire(key, Phase::AfterNotify) {
                self.poison_task(&a, Phase::AfterNotify);
            }
            Ok(())
        })();

        match attempt {
            Ok(()) => {}
            Err(f) if f.source == key => {
                // "if (error in A) RecoverTaskOnce(key, life)"
                self.emit(Event::FaultObserved {
                    source: f.source,
                    kind: f.kind,
                });
                self.recover_task_once(s, key, life);
            }
            Err(f) => {
                self.emit(Event::FaultObserved {
                    source: f.source,
                    kind: f.kind,
                });
                // Error in an input. Mark the source so other traversals
                // observe the detected error ("once an error is detected,
                // all subsequent accesses to that object will observe the
                // error"), initiate its recovery, then process A anew.
                let src_life = match self.get_task(f.source) {
                    Some((src, sl)) => {
                        match f.kind {
                            FaultKind::Overwritten => {
                                src.overwritten.store(true, Ordering::Release)
                            }
                            _ => src.poisoned.store(true, Ordering::Release),
                        }
                        sl
                    }
                    None => f.life.max(1),
                };
                self.recover_task_once(s, f.source, src_life);
                self.reset_node(s, a, key, life);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use parking_lot::Mutex;
    use std::collections::HashSet;

    /// Same wavefront grid as the baseline tests.
    struct Grid {
        n: i64,
        computed: Mutex<Vec<Key>>,
    }

    impl Grid {
        fn new(n: i64) -> Self {
            Grid {
                n,
                computed: Mutex::new(Vec::new()),
            }
        }
    }

    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut su = Vec::new();
            if i + 1 < self.n {
                su.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                su.push(i * self.n + (j + 1));
            }
            su
        }
        fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            self.computed.lock().push(k);
            Ok(())
        }
    }

    #[test]
    fn fault_free_run_matches_baseline_behaviour() {
        let g = Arc::new(Grid::new(16));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 256);
        assert_eq!(report.re_executions, 0);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.injected, 0);
        let order = g.computed.lock();
        let unique: HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 256);
    }

    #[test]
    fn fault_free_respects_dependence_order() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        let order = g.computed.lock();
        let pos: std::collections::HashMap<Key, usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for &k in order.iter() {
            for p in g.predecessors(k) {
                assert!(pos[&p] < pos[&k], "pred {p} must precede {k}");
            }
        }
    }

    #[test]
    fn before_compute_fault_recovers_without_reexecution() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(27, Phase::BeforeCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        assert_eq!(report.recoveries, 1);
        // Before-compute: no computed work lost, so every task computes
        // exactly once ("does not result in task re-execution overhead").
        assert_eq!(report.re_executions, 0);
        assert_eq!(report.computes, 64);
    }

    #[test]
    fn after_compute_fault_reexecutes_exactly_one_task() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(27, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        assert_eq!(report.recoveries, 1);
        assert_eq!(report.re_executions, 1, "the failed task recomputes");
        assert_eq!(report.computes, 65);
        assert_eq!(report.distinct_tasks_executed, 64);
    }

    #[test]
    fn sink_fault_is_recovered() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let sink = g.sink();
        let plan = Arc::new(FaultPlan::single(sink, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed, "sink recovered and completed");
        assert_eq!(report.re_executions, 1);
    }

    #[test]
    fn source_fault_is_recovered() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(0, Phase::AfterCompute));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.recoveries, 1);
    }

    #[test]
    fn many_faults_all_recovered() {
        let g = Arc::new(Grid::new(16));
        let pool = Pool::new(PoolConfig::with_threads(8));
        let keys: Vec<Key> = (0..256).collect();
        let plan = Arc::new(FaultPlan::sample(&keys, 64, Phase::AfterCompute, 7));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 256);
        // Every injected fault implies at least the failed task recomputing
        // (observed counts can exceed 64 if a recovery raced a traversal).
        assert!(
            report.re_executions >= 64,
            "re-exec {}",
            report.re_executions
        );
    }

    #[test]
    fn repeated_faults_on_same_task_recursively_recovered() {
        // Guarantee 6: failures during recovery are recovered. Fire 5 times
        // on the same task across incarnations.
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::new([crate::inject::FaultSite {
            key: 27,
            phase: Phase::AfterCompute,
            fires: 5,
        }]));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 5);
        assert!(report.recoveries >= 5);
        assert_eq!(report.re_executions, 5);
    }

    #[test]
    fn all_tasks_fail_once_still_completes() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::new(
            (0..64).map(|k| crate::inject::FaultSite::once(k, Phase::AfterCompute)),
        ));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 64);
        assert!(report.re_executions >= 64);
    }

    #[test]
    fn single_thread_recovery_works() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(1));
        let keys: Vec<Key> = (0..64).collect();
        let plan = Arc::new(FaultPlan::sample(&keys, 16, Phase::AfterCompute, 3));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 16);
    }

    #[test]
    fn after_notify_faults_may_go_unobserved() {
        // "a failed task whose successors already have been computed is not
        // recovered, because no other task attempts to access such a task".
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let plan = Arc::new(FaultPlan::single(0, Phase::AfterNotify));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 1);
        // The grid graph has no data blocks, so nothing revisits task 0
        // unless a traversal races; recovery count is 0 or small.
        assert!(report.re_executions <= 1);
    }

    #[test]
    fn before_compute_faults_everywhere() {
        let g = Arc::new(Grid::new(8));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan =
            Arc::new(FaultPlan::new((0..64).map(|k| {
                crate::inject::FaultSite::once(k, Phase::BeforeCompute)
            })));
        let sched = FtScheduler::with_plan(Arc::clone(&g) as _, plan);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 64);
        assert_eq!(report.distinct_tasks_executed, 64);
        assert_eq!(report.re_executions, 0, "no computed work was lost");
    }
}
