//! Benchmark registry: construct fresh application instances by kind.
//!
//! Every experiment run needs a *fresh* instance (block stores and task
//! maps are single-run state), so the registry hands out factories rather
//! than shared instances.

use crate::dag_gen::{DagGenConfig, RandDag};
use ft_apps::cholesky::Cholesky;
use ft_apps::fw::Fw;
use ft_apps::lcs::Lcs;
use ft_apps::lu::Lu;
use ft_apps::sw::Sw;
use ft_apps::{AppConfig, BenchApp};
use std::sync::Arc;

/// The five paper benchmarks (plus the FW single-version ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// Longest common subsequence (single-assignment).
    Lcs,
    /// Smith-Waterman (memory reuse, column blocks).
    Sw,
    /// Floyd-Warshall, two versions per block (paper configuration).
    Fw,
    /// Floyd-Warshall, one version per block (ablation).
    FwSingleVersion,
    /// LU decomposition.
    Lu,
    /// Cholesky factorization.
    Cholesky,
}

/// The paper's five benchmarks, in Table I order.
pub const APP_KINDS: &[AppKind] = &[
    AppKind::Lcs,
    AppKind::Lu,
    AppKind::Cholesky,
    AppKind::Fw,
    AppKind::Sw,
];

impl AppKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Lcs => "LCS",
            AppKind::Sw => "SW",
            AppKind::Fw => "FW",
            AppKind::FwSingleVersion => "FW(1v)",
            AppKind::Lu => "LU",
            AppKind::Cholesky => "Cholesky",
        }
    }

    /// Scaled default configuration: same graph shape as Table I, sized so
    /// a full experiment sweep finishes in seconds on a laptop-class box.
    pub fn default_config(&self) -> AppConfig {
        match self {
            // Wavefront DP: 24x24 tiles of 512x512 cells.
            AppKind::Lcs | AppKind::Sw => AppConfig::new(12288, 512),
            // nb = 12 rounds of 48x48 tiles.
            AppKind::Fw | AppKind::FwSingleVersion => AppConfig::new(576, 48),
            // nb = 20 tiles of 48x48.
            AppKind::Lu | AppKind::Cholesky => AppConfig::new(960, 48),
        }
    }

    /// Parse from a CLI name (case-insensitive).
    pub fn parse(s: &str) -> Option<AppKind> {
        match s.to_ascii_lowercase().as_str() {
            "lcs" => Some(AppKind::Lcs),
            "sw" => Some(AppKind::Sw),
            "fw" => Some(AppKind::Fw),
            "fw1v" | "fw-1v" => Some(AppKind::FwSingleVersion),
            "lu" => Some(AppKind::Lu),
            "cholesky" | "chol" => Some(AppKind::Cholesky),
            _ => None,
        }
    }
}

/// Fan-out-heavy random-DAG specs for the PR-9 notification-contention
/// sweep (`bench_pr9`): few wide layers, so most of the run is
/// registration/drain traffic on high-out-degree descriptors. Two edge
/// densities — at `p=0.3` most cell arrays stay within the inline
/// capacity, at `p=0.6` spills dominate — so the sweep exercises both
/// halves of the notify-cell layout.
pub const FANOUT_RANDDAG_SPECS: &[&str] = &[
    "randdag:layers=4,width=48,p=0.3,wcet=1-4,ratio=0.25,seed=42,work=0",
    "randdag:layers=4,width=48,p=0.6,wcet=1-4,ratio=0.25,seed=42,work=0",
];

/// Build a fresh random-DAG instance (the irregular workload family; see
/// [`crate::dag_gen`]). `RandDag` is not a [`BenchApp`] — its shape is
/// described by a [`DagGenConfig`], not an `AppConfig` — so it gets its own
/// factory alongside the regular kernels.
pub fn make_randdag(cfg: &DagGenConfig) -> Arc<RandDag> {
    Arc::new(RandDag::generate(cfg.clone()))
}

/// Parse a random-DAG spec of the form
/// `randdag:layers=8,width=6,p=0.35,wcet=1-16,ratio=0.5,seed=42,work=0`
/// (the `randdag:` prefix and every field are optional; omitted fields keep
/// [`DagGenConfig::default`] values). Returns `None` on any malformed field.
pub fn parse_randdag(spec: &str) -> Option<DagGenConfig> {
    let body = spec.strip_prefix("randdag:").unwrap_or(spec);
    let mut cfg = DagGenConfig::default();
    if body.trim().is_empty() {
        return Some(cfg);
    }
    for field in body.split(',') {
        let (k, v) = field.split_once('=')?;
        match k.trim() {
            "layers" => cfg.layers = v.trim().parse().ok()?,
            "width" => cfg.max_width = v.trim().parse().ok()?,
            "p" => cfg.edge_prob = v.trim().parse().ok()?,
            "wcet" => {
                let (lo, hi) = v.trim().split_once('-')?;
                cfg.wcet_min = lo.parse().ok()?;
                cfg.wcet_max = hi.parse().ok()?;
            }
            "ratio" => cfg.critical_ratio = v.trim().parse().ok()?,
            "seed" => cfg.seed = v.trim().parse().ok()?,
            "work" => cfg.work_unit = v.trim().parse().ok()?,
            _ => return None,
        }
    }
    Some(cfg)
}

/// Build a fresh instance of the given benchmark.
pub fn make_app(kind: AppKind, cfg: AppConfig) -> Arc<dyn BenchApp> {
    match kind {
        AppKind::Lcs => Arc::new(Lcs::new(cfg)),
        AppKind::Sw => Arc::new(Sw::new(cfg)),
        AppKind::Fw => Arc::new(Fw::new(cfg)),
        AppKind::FwSingleVersion => Arc::new(Fw::with_single_version(cfg)),
        AppKind::Lu => Arc::new(Lu::new(cfg)),
        AppKind::Cholesky => Arc::new(Cholesky::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in APP_KINDS {
            assert_eq!(AppKind::parse(kind.name()), Some(*kind));
        }
        assert_eq!(AppKind::parse("nope"), None);
        assert_eq!(AppKind::parse("fw1v"), Some(AppKind::FwSingleVersion));
    }

    #[test]
    fn default_configs_are_valid() {
        for kind in APP_KINDS {
            let cfg = kind.default_config();
            assert!(cfg.nb() >= 4, "{kind:?} needs enough tiles for experiments");
        }
    }

    #[test]
    fn parse_randdag_fields_and_defaults() {
        let d = DagGenConfig::default();
        assert_eq!(parse_randdag("randdag:"), Some(d.clone()));
        let cfg =
            parse_randdag("randdag:layers=4,width=3,p=0.5,wcet=2-9,ratio=0.25,seed=7,work=10")
                .unwrap();
        assert_eq!(cfg.layers, 4);
        assert_eq!(cfg.max_width, 3);
        assert_eq!(cfg.edge_prob, 0.5);
        assert_eq!((cfg.wcet_min, cfg.wcet_max), (2, 9));
        assert_eq!(cfg.critical_ratio, 0.25);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.work_unit, 10);
        // Partial specs keep defaults elsewhere; prefix optional.
        let cfg = parse_randdag("seed=3").unwrap();
        assert_eq!(cfg.seed, 3);
        assert_eq!(cfg.layers, d.layers);
        // Malformed fields are rejected, not silently defaulted.
        assert_eq!(parse_randdag("randdag:bogus=1"), None);
        assert_eq!(parse_randdag("randdag:layers=x"), None);
        assert_eq!(parse_randdag("randdag:wcet=5"), None);
    }

    #[test]
    fn fanout_specs_parse_and_generate() {
        for spec in FANOUT_RANDDAG_SPECS {
            let cfg = parse_randdag(spec).unwrap_or_else(|| panic!("bad spec {spec}"));
            assert_eq!(cfg.layers, 4);
            assert_eq!(cfg.max_width, 48);
            assert_eq!(cfg.work_unit, 0, "contention specs are scheduler-bound");
            let dag = make_randdag(&cfg);
            assert!(
                dag.task_count() > 4 * 24,
                "spec {spec} generated a thin DAG"
            );
        }
    }

    #[test]
    fn make_randdag_matches_direct_generation() {
        let cfg = parse_randdag("randdag:layers=5,width=4,seed=11").unwrap();
        let a = make_randdag(&cfg);
        let b = RandDag::generate(cfg);
        assert_eq!(a.task_count(), b.task_count());
        assert_eq!(a.hard_tasks(), b.hard_tasks());
    }

    #[test]
    fn make_app_constructs_every_kind() {
        for kind in [
            AppKind::Lcs,
            AppKind::Sw,
            AppKind::Fw,
            AppKind::FwSingleVersion,
            AppKind::Lu,
            AppKind::Cholesky,
        ] {
            let app = make_app(kind, AppConfig::new(64, 16));
            assert!(!app.all_tasks().is_empty());
        }
    }
}
