//! Deterministic schedule exploration, replay, and the guarantee oracle.
//!
//! ```text
//! cargo run -p ft-integration --example det_replay [schedule_seed]
//! ```
//!
//! Runs the FT scheduler over a random layered DAG on the seeded
//! single-threaded `DetPool`, shows that the same `(graph, fault plan,
//! seed)` triple replays the identical trace while a different seed
//! explores a different interleaving, and demonstrates the trace oracle
//! catching a deliberately broken notify bit vector (with the JSON
//! failure report a failing campaign would dump).

use ft_det::DetPool;
use ft_integration::graphs::{Grid, ValueDag};
use ft_integration::{det_traced_run, failure_dump_dir, oracle_violations};
use nabbit_ft::graph::TaskGraph;
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::FtScheduler;
use nabbit_ft::trace::oracle::{FailureReport, OracleMode};
use nabbit_ft::trace::Trace;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);

    println!("== deterministic exploration of a random layered DAG ==\n");
    let shape = [2usize, 3, 2];
    let events_of = |schedule_seed: u64| {
        let dag = Arc::new(ValueDag::generate(&shape, 42));
        let keys = dag.all_keys();
        let plan = Arc::new(FaultPlan::sample(&keys, 2, Phase::AfterCompute, 5));
        let (_, trace, report) = det_traced_run(dag as Arc<dyn TaskGraph>, plan, schedule_seed);
        assert!(report.sink_completed);
        (trace.events(), report)
    };

    let (run_a, report) = events_of(seed);
    let (run_b, _) = events_of(seed);
    let (run_c, _) = events_of(seed + 1);
    let same = run_a
        .iter()
        .map(|e| e.event)
        .eq(run_b.iter().map(|e| e.event));
    let differs = !run_a
        .iter()
        .map(|e| e.event)
        .eq(run_c.iter().map(|e| e.event));
    println!(
        "seed {seed}: {} events, {} recoveries; replay identical: {same}; \
         seed {} schedules differently: {differs}",
        run_a.len(),
        report.recoveries,
        seed + 1
    );
    println!("first events: {:?}\n", &run_a[..4.min(run_a.len())]);

    println!("== the oracle catches a broken notify bit vector ==\n");
    let g = Arc::new(Grid { n: 3 });
    let plan = Arc::new(FaultPlan::new(
        [4, 5, 7, 8].map(|k| FaultSite::once(k, Phase::BeforeCompute)),
    ));
    let mut caught = 0usize;
    let mut dumped = None;
    for s in 0..32u64 {
        let trace = Arc::new(Trace::new());
        let sched = FtScheduler::with_plan_traced(
            Arc::clone(&g) as Arc<dyn TaskGraph>,
            Arc::clone(&plan),
            Arc::clone(&trace),
        );
        sched.sabotage_notify_bitvec();
        let report = sched.run(&DetPool::new(s));
        let violations = oracle_violations(g.as_ref(), &trace, &report, OracleMode::Strict);
        if !violations.is_empty() {
            caught += 1;
            if dumped.is_none() {
                let sites = plan.sites();
                let events = trace.events();
                let failure = FailureReport {
                    label: "det-replay-sabotage-demo".to_string(),
                    seed: s,
                    sites: &sites,
                    violations: &violations,
                    events: &events,
                };
                let path = failure.write_to(&failure_dump_dir()).expect("dump");
                println!(
                    "seed {s}: {} violation(s), e.g. {}",
                    violations.len(),
                    violations[0]
                );
                dumped = Some(path);
            }
        }
    }
    println!("sabotaged runs flagged: {caught}/32");
    if let Some(path) = dumped {
        println!("replayable JSON report: {}", path.display());
    }
}
