//! Lock-striped concurrent hash map.
//!
//! Keys are `i64` task keys (the paper fixes `int64_t` keys); values are any
//! `Clone` type — the scheduler stores `Arc`s. Each shard is an open
//! hash table (robin-hood-free linear probing with tombstone-less rebuild on
//! growth) guarded by a `RwLock`. The shard for a key is selected by a
//! Fibonacci-hash of the key, which also serves as the in-shard probe start;
//! shard selection uses the high bits and probing the low bits so the two
//! are decorrelated.

use parking_lot::RwLock;

/// Multiplicative (Fibonacci) hash constant, 2^64 / φ.
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn hash_key(key: i64) -> u64 {
    (key as u64).wrapping_mul(HASH_K)
}

/// One entry slot in a shard table.
#[derive(Clone)]
enum Slot<V> {
    Empty,
    Full(i64, V),
}

/// A single shard: linear-probing open hash table.
struct Shard<V> {
    slots: Vec<Slot<V>>,
    len: usize,
}

impl<V: Clone> Shard<V> {
    fn new(cap: usize) -> Self {
        Shard {
            slots: vec![Slot::Empty; cap],
            len: 0,
        }
    }

    fn probe(&self, key: i64) -> Option<usize> {
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(k, _) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn grow_if_needed(&mut self) {
        // Keep load factor below 0.7.
        if self.len * 10 < self.slots.len() * 7 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = (hash_key(k) as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }

    /// Insert only if `key` is absent. Returns true if inserted.
    fn insert_if_absent(&mut self, key: i64, make: impl FnOnce() -> V) -> bool {
        if self.probe(key).is_some() {
            return false;
        }
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        while matches!(self.slots[i], Slot::Full(..)) {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot::Full(key, make());
        self.len += 1;
        true
    }

    /// Insert or overwrite; returns the previous value if any.
    fn replace(&mut self, key: i64, value: V) -> Option<V> {
        if let Some(i) = self.probe(key) {
            if let Slot::Full(_, v) = std::mem::replace(&mut self.slots[i], Slot::Full(key, value))
            {
                return Some(v);
            }
            unreachable!("probe returned a full slot");
        }
        self.grow_if_needed();
        let mask = self.slots.len() - 1;
        let mut i = (hash_key(key) as usize) & mask;
        while matches!(self.slots[i], Slot::Full(..)) {
            i = (i + 1) & mask;
        }
        self.slots[i] = Slot::Full(key, value);
        self.len += 1;
        None
    }
}

/// A sharded concurrent hash map from `i64` task keys to `V`.
pub struct ShardedMap<V> {
    shards: Vec<RwLock<Shard<V>>>,
    shift: u32,
}

/// Occupancy statistics, for the shard-count ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapStats {
    /// Total entries across shards.
    pub len: usize,
    /// Number of shards.
    pub shards: usize,
    /// Maximum entries in any one shard (imbalance indicator).
    pub max_shard_len: usize,
}

impl<V: Clone> Default for ShardedMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone> ShardedMap<V> {
    /// Map with a default shard count (4× available cores, rounded up to a
    /// power of two) — enough striping that the scheduler's task map is not
    /// a bottleneck at full core count.
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self::with_shards((cores * 4).next_power_of_two())
    }

    /// Map with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        ShardedMap {
            shards: (0..shards).map(|_| RwLock::new(Shard::new(64))).collect(),
            shift: 64 - shards.trailing_zeros(),
        }
    }

    #[inline]
    fn shard_for(&self, key: i64) -> &RwLock<Shard<V>> {
        // High bits pick the shard; low bits drive in-shard probing.
        let idx = if self.shards.len() == 1 {
            0
        } else {
            (hash_key(key) >> self.shift) as usize
        };
        &self.shards[idx]
    }

    /// `InsertTaskIfAbsent`: atomically insert `make()` under `key` if no
    /// entry exists. Returns `true` if this call inserted. `make` runs
    /// under the shard lock only when an insert actually happens.
    pub fn insert_if_absent(&self, key: i64, make: impl FnOnce() -> V) -> bool {
        self.shard_for(key).write().insert_if_absent(key, make)
    }

    /// `GetTask`: clone out the current value for `key`.
    pub fn get(&self, key: i64) -> Option<V> {
        let shard = self.shard_for(key).read();
        shard.probe(key).map(|i| match &shard.slots[i] {
            Slot::Full(_, v) => v.clone(),
            Slot::Empty => unreachable!(),
        })
    }

    /// True if the map has an entry for `key`.
    pub fn contains(&self, key: i64) -> bool {
        self.shard_for(key).read().probe(key).is_some()
    }

    /// `ReplaceTask`: insert or overwrite the value under `key`, returning
    /// the previous value if any.
    pub fn replace(&self, key: i64, value: V) -> Option<V> {
        self.shard_for(key).write().replace(key, value)
    }

    /// Atomically read-modify-write the entry for `key`.
    ///
    /// `f` receives the current value (if any) and returns `Some(new)` to
    /// store or `None` to leave the entry untouched. Returns the value the
    /// closure decided on, i.e. `f`'s output. This is the primitive behind
    /// the recovery table's `AtomicCompAndSwap(stored, life-1, life)`.
    pub fn update_cas<R>(&self, key: i64, f: impl FnOnce(Option<&V>) -> (Option<V>, R)) -> R {
        let mut shard = self.shard_for(key).write();
        let current = shard.probe(key);
        let (new, ret) = match current {
            Some(i) => match &shard.slots[i] {
                Slot::Full(_, v) => f(Some(v)),
                Slot::Empty => unreachable!(),
            },
            None => f(None),
        };
        if let Some(v) = new {
            shard.replace(key, v);
        }
        ret
    }

    /// Total number of entries (takes each shard read lock once).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len).sum()
    }

    /// True if no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy statistics for diagnostics/ablation.
    pub fn stats(&self) -> MapStats {
        let lens: Vec<usize> = self.shards.iter().map(|s| s.read().len).collect();
        MapStats {
            len: lens.iter().sum(),
            shards: self.shards.len(),
            max_shard_len: lens.into_iter().max().unwrap_or(0),
        }
    }

    /// Remove all entries, retaining shard capacity.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut g = s.write();
            for slot in g.slots.iter_mut() {
                *slot = Slot::Empty;
            }
            g.len = 0;
        }
    }

    /// Snapshot of all `(key, value)` pairs. Not atomic across shards; used
    /// only after quiescence (metrics, verification).
    pub fn entries(&self) -> Vec<(i64, V)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let g = s.read();
            for slot in g.slots.iter() {
                if let Slot::Full(k, v) = slot {
                    out.push((*k, v.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn insert_get_replace() {
        let m = ShardedMap::with_shards(4);
        assert!(m.insert_if_absent(1, || "a"));
        assert!(!m.insert_if_absent(1, || "b"));
        assert_eq!(m.get(1), Some("a"));
        assert_eq!(m.replace(1, "c"), Some("a"));
        assert_eq!(m.get(1), Some("c"));
        assert_eq!(m.replace(2, "d"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn get_missing_is_none() {
        let m: ShardedMap<u32> = ShardedMap::with_shards(2);
        assert_eq!(m.get(42), None);
        assert!(!m.contains(42));
        assert!(m.is_empty());
    }

    #[test]
    fn negative_and_extreme_keys() {
        let m = ShardedMap::with_shards(8);
        for k in [i64::MIN, -1, 0, 1, i64::MAX] {
            assert!(m.insert_if_absent(k, || k));
            assert_eq!(m.get(k), Some(k));
        }
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn growth_preserves_entries() {
        let m = ShardedMap::with_shards(1);
        for k in 0..10_000i64 {
            assert!(m.insert_if_absent(k, || k * 2));
        }
        for k in 0..10_000i64 {
            assert_eq!(m.get(k), Some(k * 2), "key {k}");
        }
        let stats = m.stats();
        assert_eq!(stats.len, 10_000);
        assert_eq!(stats.shards, 1);
    }

    #[test]
    fn make_not_called_when_present() {
        let m = ShardedMap::with_shards(2);
        let calls = AtomicUsize::new(0);
        m.insert_if_absent(5, || {
            calls.fetch_add(1, Ordering::Relaxed);
            1
        });
        m.insert_if_absent(5, || {
            calls.fetch_add(1, Ordering::Relaxed);
            2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn update_cas_models_recovery_table() {
        // IsRecovering semantics: insert life if absent (first observer
        // recovers); else CAS stored == life-1 -> life.
        let m: ShardedMap<u64> = ShardedMap::with_shards(4);
        let key = 9;
        let is_recovering = |life: u64| -> bool {
            m.update_cas(key, |cur| match cur {
                None => (Some(life), false),
                Some(&stored) if stored == life - 1 => (Some(life), false),
                Some(_) => (None, true),
            })
        };
        assert!(!is_recovering(1), "first observer recovers life 1");
        assert!(is_recovering(1), "second observer of life 1 does not");
        assert!(!is_recovering(2), "first observer of life 2 recovers");
        assert!(is_recovering(2));
        assert!(is_recovering(2));
    }

    #[test]
    fn clear_empties_map() {
        let m = ShardedMap::with_shards(4);
        for k in 0..100 {
            m.insert_if_absent(k, || k);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        // Reusable after clear.
        assert!(m.insert_if_absent(5, || 50));
        assert_eq!(m.get(5), Some(50));
    }

    #[test]
    fn entries_snapshot() {
        let m = ShardedMap::with_shards(4);
        for k in 0..50 {
            m.insert_if_absent(k, || k * 3);
        }
        let mut entries = m.entries();
        entries.sort();
        assert_eq!(entries.len(), 50);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(*k, i as i64);
            assert_eq!(*v, *k * 3);
        }
    }

    #[test]
    fn concurrent_insert_if_absent_exactly_one_winner() {
        let m: Arc<ShardedMap<usize>> = Arc::new(ShardedMap::with_shards(16));
        let winners = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            for tid in 0..8 {
                let m = Arc::clone(&m);
                let winners = Arc::clone(&winners);
                s.spawn(move || {
                    for k in 0..1000i64 {
                        if m.insert_if_absent(k, || tid) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1000);
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let m: Arc<ShardedMap<i64>> = Arc::new(ShardedMap::with_shards(8));
        thread::scope(|s| {
            for t in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for k in 0..5000i64 {
                        match (k + t) % 3 {
                            0 => {
                                m.insert_if_absent(k, || k);
                            }
                            1 => {
                                if let Some(v) = m.get(k) {
                                    assert!(v == k || v == -k);
                                }
                            }
                            _ => {
                                m.update_cas(k, |cur| match cur {
                                    Some(&v) => (Some(v), ()),
                                    None => (None, ()),
                                });
                            }
                        }
                    }
                });
            }
        });
        // All inserted values are self-consistent.
        for (k, v) in m.entries() {
            assert_eq!(k, v);
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let m: ShardedMap<u8> = ShardedMap::with_shards(5);
        assert_eq!(m.stats().shards, 8);
        let m: ShardedMap<u8> = ShardedMap::with_shards(0);
        assert_eq!(m.stats().shards, 1);
    }
}
