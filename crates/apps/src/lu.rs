//! LU decomposition (no pivoting) — blocked right-looking factorization.
//!
//! Tasks per round `k`: `GETRF(k)` factors the diagonal tile; `TRSM_L(k,i)`
//! computes the L-panel tile `(i,k)`; `TRSM_U(k,j)` the U-panel tile
//! `(k,j)`; `GEMM(k,i,j)` applies the rank-`B` update to the trailing tile
//! `(i,j)`. Task counts reproduce Table I exactly:
//! `T = Σ_{m=1}^{nb} m² = nb(nb+1)(2nb+1)/6` → 173,880 at `nb = 80`, and
//! `E = 508,760` with no anti-dependence edges needed — every version of a
//! block has its single reader as a direct graph descendant, so
//! `KeepLast(2)` reuse is naturally safe.
//!
//! Recovery chains: re-executing `GEMM(k,i,j)` needs block `(i,j)` at
//! version `k` — long since evicted for large `k` — so a `v=last` failure
//! re-executes the whole update chain of that block (the paper's Table II
//! shows LU `v=last` averaging ~3,600 re-executions for 512 intended).

use crate::common::{keys, AppConfig, BenchApp, VerifyOutcome, VersionClass};
use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use std::sync::Arc;

const GETRF: u8 = 1;
const TRSML: u8 = 2; // computes L tile (i,k), i > k
const TRSMU: u8 = 3; // computes U tile (k,j), j > k
const GEMM: u8 = 4; // updates trailing tile (i,j), i,j > k

/// Blocked LU benchmark instance.
pub struct Lu {
    cfg: AppConfig,
    store: BlockStore<f64>,
    /// The input matrix (resilient; used only by `reference`).
    input: Vec<f64>,
}

impl Lu {
    /// Create an instance over a random diagonally-dominant matrix
    /// (memory reuse: two retained versions, the paper's configuration).
    pub fn new(cfg: AppConfig) -> Self {
        Self::with_retention(cfg, Retention::KeepLast(2))
    }

    /// Single-assignment variant: every block version stays resident, so
    /// recovery never needs to rebuild evicted inputs ("we expect the
    /// overheads [...] for the single-assignment implementations to be
    /// lower").
    pub fn single_assignment(cfg: AppConfig) -> Self {
        Self::with_retention(cfg, Retention::KeepAll)
    }

    /// Explicit retention policy.
    pub fn with_retention(cfg: AppConfig, retention: Retention) -> Self {
        let n = cfg.n;
        let mut input = crate::common::random_matrix(n, 0.1, 1.0, cfg.seed);
        for d in 0..n {
            input[d * n + d] += n as f64;
        }
        let nb = cfg.nb();
        let store = BlockStore::new(nb * nb, retention);
        for ti in 0..nb {
            for tj in 0..nb {
                let tile = crate::common::extract_tile(&input, n, cfg.b, ti, tj);
                store.publish_pinned(ti * nb + tj, 0, tile);
            }
        }
        Lu { cfg, store, input }
    }

    fn nb(&self) -> usize {
        self.cfg.nb()
    }

    fn bid(&self, i: usize, j: usize) -> usize {
        i * self.nb() + j
    }

    /// Final version of block `(i,j)`: `min(i,j) + 1`.
    fn final_version(i: usize, j: usize) -> u64 {
        (i.min(j) + 1) as u64
    }

    /// Read the factored tile `(i,j)` after a completed run.
    pub fn factored_tile(&self, i: usize, j: usize) -> Option<Arc<Vec<f64>>> {
        self.store
            .read(self.bid(i, j), Self::final_version(i, j))
            .ok()
    }

    /// Independent reference: unblocked in-place LU without pivoting.
    pub fn reference(&self) -> Vec<f64> {
        let n = self.cfg.n;
        let mut a = self.input.clone();
        for t in 0..n {
            let piv = a[t * n + t];
            for u in t + 1..n {
                a[u * n + t] /= piv;
                let l = a[u * n + t];
                for v in t + 1..n {
                    a[u * n + v] -= l * a[t * n + v];
                }
            }
        }
        a
    }
}

/// In-place unpivoted LU of a `b×b` tile.
fn kernel_getrf(a: &mut [f64], b: usize) {
    for t in 0..b {
        let piv = a[t * b + t];
        for u in t + 1..b {
            a[u * b + t] /= piv;
            let l = a[u * b + t];
            for v in t + 1..b {
                a[u * b + v] -= l * a[t * b + v];
            }
        }
    }
}

/// L-panel solve: replay the elimination of the diagonal tile's U on a
/// sub-diagonal tile — column `t` divides by `U[t][t]` then updates the
/// trailing columns, matching the unblocked elimination order exactly.
fn kernel_trsm_l(a: &mut [f64], diag: &[f64], b: usize) {
    for t in 0..b {
        let piv = diag[t * b + t];
        for u in 0..b {
            a[u * b + t] /= piv;
            let l = a[u * b + t];
            for v in t + 1..b {
                a[u * b + v] -= l * diag[t * b + v];
            }
        }
    }
}

/// U-panel solve: apply the diagonal tile's unit-L elimination to a
/// right-of-diagonal tile.
fn kernel_trsm_u(a: &mut [f64], diag: &[f64], b: usize) {
    for t in 0..b {
        for u in t + 1..b {
            let l = diag[u * b + t];
            for v in 0..b {
                a[u * b + v] -= l * a[t * b + v];
            }
        }
    }
}

/// Trailing update `C -= L · U`, accumulating per elimination step `t` in
/// order (bit-compatible with the unblocked elimination).
fn kernel_gemm(c: &mut [f64], l: &[f64], u: &[f64], b: usize) {
    for t in 0..b {
        for row in 0..b {
            let lv = l[row * b + t];
            for col in 0..b {
                c[row * b + col] -= lv * u[t * b + col];
            }
        }
    }
}

impl TaskGraph for Lu {
    fn sink(&self) -> Key {
        keys::encode(GETRF, self.nb() - 1, 0, 0)
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let mut p = Vec::with_capacity(3);
        match tag {
            GETRF => {
                if k > 0 {
                    p.push(keys::encode(GEMM, k - 1, k, k));
                }
            }
            TRSML => {
                p.push(keys::encode(GETRF, k, 0, 0));
                if k > 0 {
                    p.push(keys::encode(GEMM, k - 1, i, k));
                }
            }
            TRSMU => {
                p.push(keys::encode(GETRF, k, 0, 0));
                if k > 0 {
                    p.push(keys::encode(GEMM, k - 1, k, j));
                }
            }
            GEMM => {
                p.push(keys::encode(TRSML, k, i, 0));
                p.push(keys::encode(TRSMU, k, 0, j));
                if k > 0 {
                    p.push(keys::encode(GEMM, k - 1, i, j));
                }
            }
            _ => unreachable!("bad LU task tag"),
        }
        p
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let nb = self.nb();
        let mut s = Vec::new();
        match tag {
            GETRF => {
                for i2 in k + 1..nb {
                    s.push(keys::encode(TRSML, k, i2, 0));
                }
                for j2 in k + 1..nb {
                    s.push(keys::encode(TRSMU, k, 0, j2));
                }
            }
            TRSML => {
                for j2 in k + 1..nb {
                    s.push(keys::encode(GEMM, k, i, j2));
                }
            }
            TRSMU => {
                for i2 in k + 1..nb {
                    s.push(keys::encode(GEMM, k, i2, j));
                }
            }
            GEMM => {
                // Round k+1 task on block (i,j).
                s.push(if i == k + 1 && j == k + 1 {
                    keys::encode(GETRF, k + 1, 0, 0)
                } else if j == k + 1 {
                    keys::encode(TRSML, k + 1, i, 0)
                } else if i == k + 1 {
                    keys::encode(TRSMU, k + 1, 0, j)
                } else {
                    keys::encode(GEMM, k + 1, i, j)
                });
            }
            _ => unreachable!("bad LU task tag"),
        }
        s
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let (tag, k, i, j) = keys::decode(key);
        let b = self.cfg.b;
        let v = k as u64;
        let read = |bi: usize, bj: usize, ver: u64| {
            self.store
                .read(self.bid(bi, bj), ver)
                .map_err(|e| e.into_fault())
        };
        match tag {
            GETRF => {
                let mut a = read(k, k, v)?.as_ref().clone();
                kernel_getrf(&mut a, b);
                self.store.publish(self.bid(k, k), v + 1, key, a);
            }
            TRSML => {
                let mut a = read(i, k, v)?.as_ref().clone();
                let d = read(k, k, v + 1)?;
                kernel_trsm_l(&mut a, &d, b);
                self.store.publish(self.bid(i, k), v + 1, key, a);
            }
            TRSMU => {
                let mut a = read(k, j, v)?.as_ref().clone();
                let d = read(k, k, v + 1)?;
                kernel_trsm_u(&mut a, &d, b);
                self.store.publish(self.bid(k, j), v + 1, key, a);
            }
            GEMM => {
                let mut c = read(i, j, v)?.as_ref().clone();
                let l = read(i, k, v + 1)?;
                let u = read(k, j, v + 1)?;
                kernel_gemm(&mut c, &l, &u, b);
                self.store.publish(self.bid(i, j), v + 1, key, c);
            }
            _ => unreachable!("bad LU task tag"),
        }
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        let (tag, k, i, j) = keys::decode(key);
        let (bi, bj) = match tag {
            GETRF => (k, k),
            TRSML => (i, k),
            TRSMU => (k, j),
            GEMM => (i, j),
            _ => return,
        };
        self.store.poison(self.bid(bi, bj), (k + 1) as u64);
    }
}

impl BenchApp for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn config(&self) -> AppConfig {
        self.cfg
    }

    fn all_tasks(&self) -> Vec<Key> {
        let nb = self.nb();
        let mut v = Vec::new();
        for k in 0..nb {
            v.push(keys::encode(GETRF, k, 0, 0));
            for i in k + 1..nb {
                v.push(keys::encode(TRSML, k, i, 0));
            }
            for j in k + 1..nb {
                v.push(keys::encode(TRSMU, k, 0, j));
            }
            for i in k + 1..nb {
                for j in k + 1..nb {
                    v.push(keys::encode(GEMM, k, i, j));
                }
            }
        }
        v
    }

    fn tasks_of_class(&self, class: VersionClass) -> Vec<Key> {
        match class {
            // v=0: producers of the first computed version of any block —
            // the round-0 tasks.
            VersionClass::First => self
                .all_tasks()
                .into_iter()
                .filter(|&t| keys::decode(t).1 == 0)
                .collect(),
            // v=last: producers of the final version of any block — all
            // GETRF and TRSM tasks.
            VersionClass::Last => self
                .all_tasks()
                .into_iter()
                .filter(|&t| keys::decode(t).0 != GEMM)
                .collect(),
            VersionClass::Rand => self.all_tasks(),
        }
    }

    fn verify_detailed(&self) -> Result<VerifyOutcome, String> {
        let reference = self.reference();
        let nb = self.nb();
        let b = self.cfg.b;
        // Tolerance scaled to the matrix magnitude (diagonally dominant,
        // entries up to n + 1).
        let tol = 1e-9 * self.cfg.n as f64;
        let mut checked = 0;
        let mut skipped = 0;
        for ti in 0..nb {
            for tj in 0..nb {
                match self
                    .store
                    .read(self.bid(ti, tj), Self::final_version(ti, tj))
                {
                    Ok(got) => {
                        let want = crate::common::extract_tile(&reference, self.cfg.n, b, ti, tj);
                        let diff = crate::common::max_abs_diff(&got, &want);
                        if diff > tol {
                            return Err(format!("LU tile ({ti},{tj}) differs by {diff}"));
                        }
                        checked += 1;
                    }
                    Err(BlockError::Poisoned { .. }) => skipped += 1,
                    Err(e) => return Err(format!("factored tile ({ti},{tj}): {e:?}")),
                }
            }
        }
        Ok(VerifyOutcome {
            checked,
            skipped_poisoned: skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
    use nabbit_ft::seq;

    #[test]
    fn task_count_formula_matches_paper() {
        // T = nb(nb+1)(2nb+1)/6; Table I: nb=80 → 173,880.
        let t = |nb: usize| nb * (nb + 1) * (2 * nb + 1) / 6;
        assert_eq!(t(80), 173_880);
        let app = Lu::new(AppConfig::new(64, 16)); // nb = 4
        assert_eq!(app.all_tasks().len(), t(4));
    }

    #[test]
    fn edge_count_formula_matches_paper() {
        // Computed from our predecessor lists at nb=4, then the closed form
        // checked against the paper's 508,760 at nb=80.
        let app = Lu::new(AppConfig::new(64, 16));
        let s = nabbit_ft::analysis::graph_stats(&app);
        let e_formula = |nb: i64| -> i64 {
            // Σ_{m=0}^{nb-1} (3m² + 4m + 1) − (1 + 2(nb−1) + (nb−1)²)
            let mut total = 0;
            for m in 0..nb {
                total += 3 * m * m + 4 * m + 1;
            }
            total - (1 + 2 * (nb - 1) + (nb - 1) * (nb - 1))
        };
        assert_eq!(s.edges as i64, e_formula(4));
        assert_eq!(e_formula(80), 508_760);
    }

    #[test]
    fn critical_path_matches_paper() {
        // S = 3·nb − 2 (getrf → trsm → gemm per round); Table I: 238 at 80.
        let app = Lu::new(AppConfig::new(64, 16));
        let s = nabbit_ft::analysis::graph_stats(&app);
        assert_eq!(s.critical_path, 3 * 4 - 2);
        assert_eq!(3 * 80 - 2, 238);
    }

    #[test]
    fn pred_succ_symmetry() {
        let app = Lu::new(AppConfig::new(80, 16)); // nb = 5
        for &k in &app.all_tasks() {
            for p in app.predecessors(k) {
                assert!(app.successors(p).contains(&k), "pred/succ: {p} -> {k}");
            }
            for su in app.successors(k) {
                assert!(app.predecessors(su).contains(&k), "succ/pred: {k} -> {su}");
            }
        }
    }

    #[test]
    fn sequential_matches_reference() {
        let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
        seq::run(app.as_ref()).unwrap();
        app.verify().unwrap();
    }

    #[test]
    fn parallel_baseline_matches_reference() {
        let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_without_faults_matches_reference() {
        let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.re_executions, 0);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_gemm_faults_matches_reference() {
        let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 10, Phase::AfterCompute, 53));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 10);
        app.verify().unwrap();
    }

    #[test]
    fn ft_vlast_fault_triggers_chain() {
        // Failing the producer of a block's final version forces the chain
        // of earlier versions (evicted under KeepLast(2)) to be recomputed.
        let app = Arc::new(Lu::new(AppConfig::new(96, 16))); // nb = 6
        let nb = 6;
        // TRSM_L(nb-2, nb-1): block (5,4) final version = 5; versions 1..4
        // evicted by then.
        let victim = keys::encode(TRSML, nb - 2, nb - 1, 0);
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(victim, Phase::AfterCompute));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert!(
            report.re_executions >= 1,
            "victim must re-execute: {}",
            report.re_executions
        );
        app.verify().unwrap();
    }

    #[test]
    fn ft_after_notify_on_vlast_verifies() {
        let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
        let last = app.tasks_of_class(VersionClass::Last);
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&last, 4, Phase::AfterNotify, 59));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        let o = app.verify_detailed().unwrap();
        assert!(o.skipped_poisoned as u64 <= report.injected);
        assert!(o.checked > 0);
    }

    #[test]
    fn class_partitions() {
        let app = Lu::new(AppConfig::new(64, 16)); // nb = 4
        let first = app.tasks_of_class(VersionClass::First);
        let last = app.tasks_of_class(VersionClass::Last);
        // Round 0: 1 getrf + 3 trsml + 3 trsmu + 9 gemm = 16.
        assert_eq!(first.len(), 16);
        // All getrf (4) + trsml (3+2+1) + trsmu (6) = 16.
        assert_eq!(last.len(), 16);
        assert_eq!(app.tasks_of_class(VersionClass::Rand).len(), 30);
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    /// 2×2 LU by hand: A = [[4,2],[6,5]] → L = [[1,0],[1.5,1]],
    /// U = [[4,2],[0,2]] packed as [[4,2],[1.5,2]].
    #[test]
    fn getrf_2x2_hand_computed() {
        let mut a = vec![4.0, 2.0, 6.0, 5.0];
        kernel_getrf(&mut a, 2);
        assert_eq!(a, vec![4.0, 2.0, 1.5, 2.0]);
    }

    /// L-panel: X·U = A with U from the tile above.
    #[test]
    fn trsm_l_inverts_u() {
        // diag tile factored: U = [[2,1],[0,3]] (L part irrelevant here).
        let diag = vec![2.0, 1.0, 0.5, 3.0];
        // A = X·U with X = [[1,2],[3,4]] → A = [[2, 7],[6, 15]].
        let mut a = vec![2.0, 7.0, 6.0, 15.0];
        kernel_trsm_l(&mut a, &diag, 2);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!((a[1] - 2.0).abs() < 1e-12);
        assert!((a[2] - 3.0).abs() < 1e-12);
        assert!((a[3] - 4.0).abs() < 1e-12);
    }

    /// U-panel: L·X = A with unit-L from the tile to the left.
    #[test]
    fn trsm_u_inverts_unit_l() {
        // L = [[1,0],[0.5,1]] packed below the diagonal of the diag tile.
        let diag = vec![9.0, 9.0, 0.5, 9.0];
        // A = L·X with X = [[2,4],[6,8]] → A = [[2,4],[7,10]].
        let mut a = vec![2.0, 4.0, 7.0, 10.0];
        kernel_trsm_u(&mut a, &diag, 2);
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert!((a[1] - 4.0).abs() < 1e-12);
        assert!((a[2] - 6.0).abs() < 1e-12);
        assert!((a[3] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gemm_subtracts_product() {
        // C -= L·U with L = I → C -= U.
        let l = vec![1.0, 0.0, 0.0, 1.0];
        let u = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        kernel_gemm(&mut c, &l, &u, 2);
        assert_eq!(c, vec![9.0, 8.0, 7.0, 6.0]);
    }

    /// The tile kernels composed over a 2×2-of-2×2 blocked matrix must
    /// equal the unblocked factorization exactly (same elimination order).
    #[test]
    fn blocked_kernels_equal_unblocked_bitwise() {
        let app = Lu::new(AppConfig::new(64, 16));
        nabbit_ft::seq::run(&app).unwrap();
        let reference = app.reference();
        let nb = app.nb();
        for ti in 0..nb {
            for tj in 0..nb {
                let got = app.factored_tile(ti, tj).unwrap();
                let want = crate::common::extract_tile(&reference, 64, 16, ti, tj);
                // Diagonally dominant input keeps this numerically tight.
                let diff = crate::common::max_abs_diff(&got, &want);
                assert!(diff < 1e-10, "tile ({ti},{tj}): {diff}");
            }
        }
    }
}
