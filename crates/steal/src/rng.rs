//! Tiny per-worker PRNG for victim selection.
//!
//! Work stealing only needs fast, decorrelated victim choices, not
//! cryptographic quality; an xorshift64* generator is the standard choice
//! (it is what Cilk-family runtimes and rayon use variants of). Keeping it
//! local to the worker avoids any shared state on the steal path.

/// xorshift64* generator. One instance per worker thread.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seed the generator. A zero seed is remapped (xorshift requires a
    /// non-zero state).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (`n` must be non-zero). Uses the
    /// widening-multiply trick; bias is negligible for small `n` (worker
    /// counts), which is all victim selection needs.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64Star::new(0);
        // Must not get stuck at zero.
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShift64Star::new(42);
        for _ in 0..10_000 {
            let v = r.next_below(7);
            assert!(v < 7);
        }
    }

    #[test]
    fn next_below_covers_all_values() {
        let mut r = XorShift64Star::new(7);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.next_below(8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit: {seen:?}"
        );
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
