//! Synthetic scheduler-bound graphs shared by the `bench_pr*` snapshot
//! binaries.

use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};

/// A wavefront grid with trivial compute: throughput on it is pure
/// traversal-engine overhead (descriptor creation, notification, join
/// counters) — the path hot-path changes must not regress.
pub struct EmptyGrid {
    /// Side length; the graph has `n * n` tasks.
    pub n: i64,
}

impl TaskGraph for EmptyGrid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn predecessors_into(&self, k: Key, out: &mut Vec<Key>) {
        out.clear();
        let (i, j) = (k / self.n, k % self.n);
        if i > 0 {
            out.push((i - 1) * self.n + j);
        }
        if j > 0 {
            out.push(i * self.n + (j - 1));
        }
    }

    fn out_degree(&self, k: Key) -> usize {
        let (i, j) = (k / self.n, k % self.n);
        usize::from(i + 1 < self.n) + usize::from(j + 1 < self.n)
    }

    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

/// Fan-out/fan-in star with trivial compute: one hub feeding `width`
/// middle tasks that all join into one sink. The hub's completion drain
/// delivers `width` notifications from a single notify-cell array while
/// the middle tasks race their registrations against it, and the sink's
/// cells absorb `width` racing claims — the maximum-contention shape for
/// the PR-9 lock-free notification path (a mutexed notify list serializes
/// every one of those registrations).
pub struct Star {
    /// Number of middle tasks; the graph has `width + 2` tasks.
    pub width: i64,
}

impl TaskGraph for Star {
    fn sink(&self) -> Key {
        self.width + 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        if k == 0 {
            Vec::new()
        } else if k <= self.width {
            vec![0]
        } else {
            (1..=self.width).collect()
        }
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        if k == 0 {
            (1..=self.width).collect()
        } else if k <= self.width {
            vec![self.width + 1]
        } else {
            Vec::new()
        }
    }
    fn predecessors_into(&self, k: Key, out: &mut Vec<Key>) {
        out.clear();
        if k == 0 {
        } else if k <= self.width {
            out.push(0);
        } else {
            out.extend(1..=self.width);
        }
    }
    fn out_degree(&self, k: Key) -> usize {
        if k == 0 {
            self.width as usize
        } else if k <= self.width {
            1
        } else {
            0
        }
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_edges_are_consistent() {
        let g = EmptyGrid { n: 4 };
        assert_eq!(g.sink(), 15);
        assert_eq!(g.predecessors(0), Vec::<Key>::new());
        assert_eq!(g.predecessors(5), vec![1, 4]);
        assert_eq!(g.successors(5), vec![9, 6]);
        // Symmetry: k is a successor of each of its predecessors.
        for k in 0..16 {
            for p in g.predecessors(k) {
                assert!(g.successors(p).contains(&k));
            }
        }
    }

    #[test]
    fn grid_overrides_match_defaults() {
        let g = EmptyGrid { n: 4 };
        let mut buf = Vec::new();
        for k in 0..16 {
            g.predecessors_into(k, &mut buf);
            assert_eq!(buf, g.predecessors(k));
            assert_eq!(g.out_degree(k), g.successors(k).len());
        }
    }

    #[test]
    fn star_edges_are_consistent() {
        let g = Star { width: 5 };
        assert_eq!(g.sink(), 6);
        assert_eq!(g.predecessors(0), Vec::<Key>::new());
        assert_eq!(g.predecessors(3), vec![0]);
        assert_eq!(g.predecessors(6), vec![1, 2, 3, 4, 5]);
        assert_eq!(g.successors(0), vec![1, 2, 3, 4, 5]);
        let mut buf = Vec::new();
        for k in 0..=6 {
            for p in g.predecessors(k) {
                assert!(g.successors(p).contains(&k));
            }
            g.predecessors_into(k, &mut buf);
            assert_eq!(buf, g.predecessors(k));
            assert_eq!(g.out_degree(k), g.successors(k).len());
        }
    }
}
