//! Good fixture for L9: the hot region stays pure; the one audited
//! exception carries a waiver.

use ft_sync::atomic::{AtomicU64, Ordering};

// ft-lint: hot-path begin(claim)
pub fn claim(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}

pub fn snapshot(v: &[u64]) -> Vec<u64> {
    // ft-lint: allow(L9) diagnostics-only copy, measured off the fast path.
    v.to_vec()
}
// ft-lint: hot-path end(claim)
