//! Loom models of a single `ShardedMap` shard.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p ft-cmap --test loom_shard`.
//!
//! Each model pins the map to one shard so every operation contends on the
//! same lock and table, then enumerates the full (tiny) outcome space of a
//! two-thread race: `update_cas` increments must never be lost, a
//! `replace`/`update_cas` pair must produce one of the two linearization
//! orders and nothing else, and an `insert_if_absent` race has exactly one
//! winner whose value is the one stored.

#![cfg(loom)]

use ft_cmap::ShardedMap;
use loom::sync::Arc;
use loom::thread;

#[test]
fn update_cas_increments_are_never_lost() {
    loom::model(|| {
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        m.insert_if_absent(0, || 0);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..2 {
                        m.update_cas(0, |cur| (Some(cur.copied().unwrap() + 1), ()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get(0), Some(4), "an increment was lost");
    });
}

#[test]
fn replace_and_update_cas_linearize() {
    loom::model(|| {
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        m.insert_if_absent(0, || 0);
        let m1 = Arc::clone(&m);
        let replacer = thread::spawn(move || m1.replace(0, 10).unwrap());
        let m2 = Arc::clone(&m);
        let updater = thread::spawn(move || {
            m2.update_cas(0, |cur| {
                let v = cur.copied().unwrap();
                (Some(v + 1), v)
            })
        });
        let prev = replacer.join().unwrap();
        let seen = updater.join().unwrap();
        let fin = m.get(0).unwrap();
        // Only the two linearization orders are legal:
        //   cas first:     seen = 0, prev = 1, final = 10
        //   replace first: prev = 0, seen = 10, final = 11
        assert!(
            (seen == 0 && prev == 1 && fin == 10) || (prev == 0 && seen == 10 && fin == 11),
            "non-linearizable outcome: prev={prev} seen={seen} final={fin}"
        );
    });
}

#[test]
fn insert_if_absent_race_has_one_winner() {
    loom::model(|| {
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        let m1 = Arc::clone(&m);
        let a = thread::spawn(move || m1.insert_if_absent(0, || 1));
        let m2 = Arc::clone(&m);
        let b = thread::spawn(move || m2.insert_if_absent(0, || 2));
        let (wa, wb) = (a.join().unwrap(), b.join().unwrap());
        assert!(wa ^ wb, "exactly one insert wins");
        assert_eq!(m.get(0), Some(if wa { 1 } else { 2 }));
        assert_eq!(m.len(), 1);
    });
}

#[test]
fn recovery_table_cas_claims_once_per_life() {
    loom::model(|| {
        let m: Arc<ShardedMap<u64>> = Arc::new(ShardedMap::with_shards(1));
        let claim = |m: &ShardedMap<u64>, life: u64| {
            m.update_cas(0, |cur| match cur {
                None => (Some(life), true),
                Some(&stored) if stored + 1 == life => (Some(life), true),
                Some(_) => (None, false),
            })
        };
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || claim(&m, 1))
            })
            .collect();
        let wins: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(wins, 1, "exactly one thread claims life 1");
        assert_eq!(m.get(0), Some(1));
    });
}
