//! `bench_pr2` — machine-readable perf trajectory snapshot.
//!
//! Emits `BENCH_PR2.json` (repo root by default): baseline-vs-FT wall
//! clock and task throughput on a scheduler-bound synthetic grid plus two
//! compute-bound paper apps, and the paper's headline number — the
//! **no-fault FT overhead %** (Figure 4's left edge). CI runs it as a
//! release-build smoke test; the JSON gives successive PRs a fixed format
//! to compare against.
//!
//! Usage: `bench_pr2 [--reps N] [--threads T] [--out PATH]`

use ft_apps::AppConfig;
use ft_bench::report::fmt_pct;
use ft_bench::{make_app, run_baseline, run_ft, AppKind, Stats};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::FaultPlan;
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::io::Write;
use std::sync::Arc;

/// A wavefront grid with trivial compute: throughput here is pure
/// traversal-engine overhead (descriptor creation, notification, join
/// counters), the path the Engine refactor must not regress.
struct EmptyGrid {
    n: i64,
}

impl TaskGraph for EmptyGrid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

struct BenchResult {
    name: String,
    tasks: u64,
    baseline: Stats,
    ft: Stats,
}

impl BenchResult {
    fn overhead_pct(&self) -> f64 {
        self.ft.overhead_pct(&self.baseline)
    }
    fn to_json(&self) -> String {
        let per_s = |s: &Stats| {
            if s.mean > 0.0 {
                self.tasks as f64 / s.mean
            } else {
                0.0
            }
        };
        format!(
            "    {{\n      \"name\": \"{}\",\n      \"tasks\": {},\n      \
             \"baseline_mean_s\": {:.6},\n      \"baseline_std_s\": {:.6},\n      \
             \"baseline_tasks_per_s\": {:.1},\n      \
             \"ft_mean_s\": {:.6},\n      \"ft_std_s\": {:.6},\n      \
             \"ft_tasks_per_s\": {:.1},\n      \"ft_overhead_pct\": {:.2}\n    }}",
            self.name,
            self.tasks,
            self.baseline.mean,
            self.baseline.std,
            per_s(&self.baseline),
            self.ft.mean,
            self.ft.std,
            per_s(&self.ft),
            self.overhead_pct(),
        )
    }
}

fn bench_grid(pool: &Pool, n: i64, reps: usize) -> BenchResult {
    let tasks = (n * n) as u64;
    let baseline = ft_bench::measure(reps, || {
        let g: Arc<dyn TaskGraph> = Arc::new(EmptyGrid { n });
        let r = BaselineScheduler::new(g).run(pool);
        assert!(r.sink_completed);
    });
    let ft = ft_bench::measure(reps, || {
        let g: Arc<dyn TaskGraph> = Arc::new(EmptyGrid { n });
        let r = FtScheduler::new(g).run(pool);
        assert!(r.sink_completed);
    });
    BenchResult {
        name: format!("grid-empty-{n}x{n}"),
        tasks,
        baseline,
        ft,
    }
}

fn bench_app(pool: &Pool, kind: AppKind, cfg: AppConfig, reps: usize) -> BenchResult {
    let mut tasks = 0;
    let baseline = ft_bench::measure(reps, || {
        let app = make_app(kind, cfg);
        let r = run_baseline(pool, app);
        assert!(r.sink_completed);
        tasks = r.distinct_tasks_executed;
    });
    let ft = ft_bench::measure(reps, || {
        let app = make_app(kind, cfg);
        let r = run_ft(pool, app, FaultPlan::none());
        assert!(r.sink_completed);
    });
    BenchResult {
        name: kind.name().to_string(),
        tasks,
        baseline,
        ft,
    }
}

fn main() {
    let mut reps = 5usize;
    let mut threads = 2usize;
    let mut out = String::from("BENCH_PR2.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).expect("--reps N"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads T")
            }
            "--out" => out = args.next().expect("--out PATH"),
            other => {
                eprintln!(
                    "unknown arg {other}; usage: bench_pr2 [--reps N] [--threads T] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let pool = Pool::new(PoolConfig::with_threads(threads));
    let results = vec![
        bench_grid(&pool, 96, reps),
        bench_app(&pool, AppKind::Lcs, AppConfig::new(2048, 64), reps),
        bench_app(&pool, AppKind::Lu, AppConfig::new(512, 32), reps),
    ];

    for r in &results {
        println!(
            "{:<18} tasks={:<6} baseline {:.4}s±{:.4}  ft {:.4}s±{:.4}  overhead {}",
            r.name,
            r.tasks,
            r.baseline.mean,
            r.baseline.std,
            r.ft.mean,
            r.ft.std,
            fmt_pct(r.overhead_pct()),
        );
    }

    let rows: Vec<String> = results.iter().map(|r| r.to_json()).collect();
    let json = format!(
        "{{\n  \"schema\": \"bench_pr2/v1\",\n  \"threads\": {},\n  \"reps\": {},\n  \
         \"benches\": [\n{}\n  ]\n}}\n",
        threads,
        reps,
        rows.join(",\n")
    );
    let mut f = std::fs::File::create(&out).unwrap_or_else(|e| panic!("create {out}: {e}"));
    f.write_all(json.as_bytes()).expect("write json");
    println!("wrote {out}");
}
