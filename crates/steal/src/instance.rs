//! Per-instance (epoch) completion tracking on a shared executor.
//!
//! [`Pool::run_until_complete`](crate::pool::Pool::run_until_complete)
//! detects quiescence with one pool-wide [`CountLatch`], which forces the
//! pool into batch shape: one graph run at a time, with a barrier between
//! runs. This module removes that barrier. Each *instance* (one graph
//! submission, one epoch) carries its own latch, panic slot and job
//! counters in an [`InstanceState`]; every job belonging to the instance is
//! wrapped so that
//!
//! 1. the instance latch is incremented **before** the job becomes visible
//!    to any worker (enroll-before-publish, so the latch can never trip
//!    while a job is in flight);
//! 2. the job body runs under `catch_unwind`, and the first panic payload
//!    is stored in the *instance's* slot — a panicking graph never poisons
//!    the pool or a co-resident instance;
//! 3. spawns performed by the job are themselves wrapped (the job receives
//!    a [`Scope`] whose host is an [`InstanceHost`] layered over the
//!    worker's real scope), so the entire transitive job tree of one
//!    submission is accounted to its own latch;
//! 4. after the body returns, the latch is decremented; the decrement that
//!    trips the latch fires the instance's one-shot quiesce hook (used by
//!    the service layer to release its admission slot).
//!
//! Because the wrapper only talks to the *outer* [`Scope`] it was handed,
//! it works identically on every [`SpawnHost`] — the multithreaded pool and
//! the deterministic single-threaded pool — without touching their
//! internals. The cost is one extra allocation and a latch round-trip per
//! job, which is why the one-instance fast path
//! ([`Engine::run`](../../nabbit_ft/scheduler/engine/struct.Engine.html))
//! keeps using the pool-wide latch and pays nothing.

use crate::latch::{CountLatch, Flag};
use crate::pool::{Job, Scope, SpawnHost};
use crate::priority::Priority;
use ft_sync::atomic::{AtomicU64, Ordering};
use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

/// One-shot callback fired by the latch-tripping decrement of an instance.
pub type QuiesceHook = Box<dyn FnOnce() + Send>;

/// Shared state of one graph instance: completion latch, panic slot,
/// counters, and the one-shot quiesce hook.
struct InstanceState {
    /// Jobs of this instance currently enrolled but not finished.
    latch: CountLatch,
    /// Set by the latch-tripping job *after* it ran the quiesce hook.
    /// Waiters block on this flag, not on the latch directly, so a woken
    /// waiter is guaranteed the hook (slot release, counters) already ran.
    done: Flag,
    /// First panic payload raised by a job of this instance.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Fired exactly once, by the decrement that trips the latch.
    on_quiesce: Mutex<Option<QuiesceHook>>,
    jobs_spawned: AtomicU64,
    jobs_executed: AtomicU64,
    panics: AtomicU64,
}

impl InstanceState {
    fn new(on_quiesce: Option<QuiesceHook>) -> Self {
        InstanceState {
            latch: CountLatch::new(),
            done: Flag::new(),
            panic: Mutex::new(None),
            on_quiesce: Mutex::new(on_quiesce),
            jobs_spawned: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        }
    }

    /// Register one job: must happen before the job is published to any
    /// queue, so the latch count covers every job a worker could observe.
    fn enroll(&self) {
        // ord: Relaxed — diagnostic counter only; completion accounting is
        // carried by the latch increment below.
        self.jobs_spawned.fetch_add(1, Ordering::Relaxed);
        self.latch.increment();
    }

    /// Account a finished job (panicked or not); the decrement that trips
    /// the latch fires the quiesce hook, then releases the waiters.
    fn finish_job(&self, panicked: Option<Box<dyn Any + Send>>) {
        if let Some(payload) = panicked {
            // ord: Relaxed — diagnostic counter; the payload hand-off is
            // ordered by the mutex.
            self.panics.fetch_add(1, Ordering::Relaxed);
            let mut slot = self.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // ord: Relaxed — diagnostic counter; see `enroll`.
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if self.latch.decrement() {
            // Exactly one decrement observes the 1 -> 0 transition, and no
            // increment can follow it (only live jobs enroll new jobs), so
            // the hook fires at most once per instance — strictly before
            // `done` releases any waiter.
            let hook = self.on_quiesce.lock().take();
            if let Some(hook) = hook {
                hook();
            }
            self.done.set();
        }
    }
}

impl std::fmt::Debug for InstanceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceState")
            .field("latch", &self.latch)
            // ord: Relaxed — debug snapshot of statistics counters only.
            .field("jobs_spawned", &self.jobs_spawned.load(Ordering::Relaxed))
            // ord: Relaxed — debug snapshot of statistics counters only.
            .field("jobs_executed", &self.jobs_executed.load(Ordering::Relaxed))
            .finish()
    }
}

/// Job-count statistics of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceStats {
    /// Jobs enrolled into the instance (root + transitive spawns).
    pub jobs_spawned: u64,
    /// Jobs that finished executing (panicked jobs included).
    pub jobs_executed: u64,
    /// Jobs whose body panicked.
    pub panics: u64,
}

/// Awaitable/pollable handle to one submitted instance.
///
/// Cloneable; all clones observe the same instance. `wait` blocks the
/// calling thread, so on a single-threaded executor with no autonomous
/// workers the pending jobs must be driven first (see
/// [`Executor::drive`](crate::pool::Executor::drive)).
#[derive(Clone)]
pub struct InstanceHandle {
    inst: Arc<InstanceState>,
}

impl std::fmt::Debug for InstanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceHandle")
            .field("done", &self.is_done())
            .field("stats", &self.stats())
            .finish()
    }
}

impl InstanceHandle {
    /// True once every job of the instance has finished *and* the quiesce
    /// hook has run (pollable).
    pub fn is_done(&self) -> bool {
        self.inst.done.is_set()
    }

    /// Block until the instance quiesces and its hook has run (awaitable).
    pub fn wait(&self) {
        self.inst.done.wait();
    }

    /// Take the first panic payload raised by a job of this instance, if
    /// any. The caller decides whether to re-raise it; the pool itself
    /// never sees instance panics.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.inst.panic.lock().take()
    }

    /// Job-count statistics so far.
    pub fn stats(&self) -> InstanceStats {
        InstanceStats {
            // ord: Relaxed — diagnostic counters, racy reads are fine.
            jobs_spawned: self.inst.jobs_spawned.load(Ordering::Relaxed),
            jobs_executed: self.inst.jobs_executed.load(Ordering::Relaxed),
            panics: self.inst.panics.load(Ordering::Relaxed),
        }
    }
}

/// A [`SpawnHost`] layered over the worker's real scope: spawns are wrapped
/// into the instance before being forwarded to the underlying host.
struct InstanceHost<'a> {
    outer: &'a Scope<'a>,
    inst: &'a Arc<InstanceState>,
}

impl SpawnHost for InstanceHost<'_> {
    fn spawn_job(&self, job: Job) {
        self.spawn_job_with(job, Priority::Normal);
    }

    fn spawn_job_with(&self, job: Job, prio: Priority) {
        self.outer.spawn_boxed_with(wrap_job(self.inst, job), prio);
    }

    fn num_threads(&self) -> usize {
        self.outer.num_threads()
    }

    fn worker_index(&self) -> Option<usize> {
        self.outer.worker_index()
    }
}

/// Wrap `job` for `inst`: enroll it in the latch now, and at run time
/// execute it under an instance scope with `catch_unwind` + finish-job
/// accounting. The returned job is what actually enters the executor's
/// queues.
fn wrap_job(inst: &Arc<InstanceState>, job: Job) -> Job {
    inst.enroll();
    let inst = Arc::clone(inst);
    Job::new(move |outer: &Scope<'_>| {
        let host = InstanceHost { outer, inst: &inst };
        let scope = Scope::for_host(&host);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job.run(&scope)));
        inst.finish_job(result.err());
    })
}

/// Open a new instance around `root`.
///
/// Returns the wrapped root job — ready to be pushed into any
/// [`SpawnHost`]'s queues — and the [`InstanceHandle`] tracking the
/// instance's completion. The root is already enrolled, so the handle
/// cannot observe a spurious early quiescence between this call and the
/// actual enqueue.
pub fn instance_root(root: Job, on_quiesce: Option<QuiesceHook>) -> (Job, InstanceHandle) {
    let inst = Arc::new(InstanceState::new(on_quiesce));
    let job = wrap_job(&inst, root);
    (job, InstanceHandle { inst })
}

/// Bounded admission counter for in-flight instances.
///
/// `try_acquire` atomically claims one of `limit` slots or reports the
/// current occupancy; `release` returns a slot (the service layer calls it
/// from the instance's quiesce hook). All operations are SeqCst: admission
/// is cold relative to job execution, and a single total order keeps the
/// acquire/release handshake trivially correct (modeled in
/// `tests/loom_instance.rs`).
pub struct AdmissionGate {
    in_flight: AtomicU64,
    limit: u64,
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("in_flight", &self.in_flight())
            .field("limit", &self.limit)
            .finish()
    }
}

impl AdmissionGate {
    /// Gate admitting at most `limit` concurrent holders (min 1).
    pub fn new(limit: usize) -> Self {
        AdmissionGate {
            in_flight: AtomicU64::new(0),
            limit: (limit.max(1)) as u64,
        }
    }

    /// The configured in-flight limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Current number of held slots.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Claim one slot: `Ok(held)` with the new occupancy, or `Err(held)`
    /// with the current occupancy if the gate is full.
    pub fn try_acquire(&self) -> Result<u64, u64> {
        let mut cur = self.in_flight.load(Ordering::SeqCst);
        loop {
            if cur >= self.limit {
                return Err(cur);
            }
            match self.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(cur + 1),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return one slot.
    pub fn release(&self) {
        let prev = self.in_flight.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev >= 1, "AdmissionGate release without acquire");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Pool, PoolConfig};
    use ft_sync::atomic::AtomicUsize;

    #[test]
    fn instance_quiesces_and_fires_hook_once() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        let fired = Arc::new(AtomicUsize::new(0));
        let counted = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        let c = Arc::clone(&counted);
        let (job, handle) = instance_root(
            Job::new(move |s| {
                for _ in 0..64 {
                    let c = Arc::clone(&c);
                    s.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }),
            Some(Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            })),
        );
        pool.spawn(move |s| s.spawn_boxed_with(job, Priority::Normal));
        handle.wait();
        assert!(handle.is_done());
        assert_eq!(counted.load(Ordering::Relaxed), 64);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        let stats = handle.stats();
        assert_eq!(stats.jobs_spawned, 65);
        assert_eq!(stats.jobs_executed, 65);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn instance_panic_is_isolated() {
        let pool = Pool::new(PoolConfig::with_threads(2));
        let (job, handle) = instance_root(
            Job::new(|s| {
                s.spawn(|_| panic!("instance boom"));
                s.spawn(|_| {});
            }),
            None,
        );
        pool.spawn(move |s| s.spawn_boxed_with(job, Priority::Normal));
        handle.wait();
        assert_eq!(handle.stats().panics, 1);
        assert!(handle.take_panic().is_some());
        assert!(handle.take_panic().is_none(), "payload taken once");
        // The pool itself is untouched: a plain run sees no panic.
        pool.run_until_complete(|scope| {
            scope.spawn(|_| {});
        });
    }

    #[test]
    fn admission_gate_bounds_holders() {
        let gate = AdmissionGate::new(2);
        assert_eq!(gate.try_acquire(), Ok(1));
        assert_eq!(gate.try_acquire(), Ok(2));
        assert_eq!(gate.try_acquire(), Err(2));
        gate.release();
        assert_eq!(gate.try_acquire(), Ok(2));
        gate.release();
        gate.release();
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn admission_gate_concurrent_acquires_never_exceed_limit() {
        let gate = Arc::new(AdmissionGate::new(4));
        let won = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let gate = Arc::clone(&gate);
            let won = Arc::clone(&won);
            handles.push(std::thread::spawn(move || {
                if gate.try_acquire().is_ok() {
                    won.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(won.load(Ordering::SeqCst) <= 4);
        assert_eq!(gate.in_flight(), won.load(Ordering::SeqCst) as u64);
    }
}
