//! `ft-lint` — the in-repo concurrency auditor.
//!
//! PR 4 made the scheduler's hot paths lock-free, so correctness rests on
//! hand-written `unsafe` and carefully chosen atomic orderings. This crate
//! mechanically enforces the discipline those paths depend on, with no
//! external dependencies (the workspace builds offline): a small
//! line-oriented Rust lexer ([`lexer`]), an item/region parser
//! ([`parser`]), manifest handling ([`manifest`]) and a rule engine.
//!
//! The rules — cataloged with rationale and examples in `docs/LINTS.md`:
//!
//! * **L1** — every `unsafe` block/fn/impl in runtime crates must be
//!   immediately preceded by a `// SAFETY:` comment (or carry a
//!   `# Safety` doc section).
//! * **L2** — every non-`SeqCst` `Ordering::*` in `crates/{steal,cmap,
//!   core,det}` must be covered by an `// ord:` justification tag (see
//!   the orderings section of `docs/ALGORITHM.md`).
//! * **L3** — runtime crates import atomics through the cfg(loom)-switched
//!   `ft-sync` facade, never `std::sync::atomic` directly, so loom models
//!   exercise the shipped code paths.
//! * **L4** — any runtime file containing atomics must be claimed by an
//!   entry in `docs/LOOM_COVERAGE.toml`.
//! * **L5** — no `unwrap()`/`expect()` in `crates/core/src/scheduler/`.
//! * **L6** — every `fence(...)` in runtime crates carries a
//!   `// sc: <protocol>/<side>` tag; tags must name a protocol declared in
//!   `docs/PROTOCOLS.toml` and resolve to a partner side somewhere in the
//!   workspace (fence pairing is machine-checked, not prose).
//! * **L7** — every atomic field declared by a runtime struct must be
//!   claimed by a `[[protocol]]` in `docs/PROTOCOLS.toml`; unclaimed
//!   atomics and dangling claims both fail, and each protocol's
//!   ALGORITHM.md anchor and loom suites must exist.
//! * **L8** — `docs/LOOM_COVERAGE.toml` entries carry a fingerprint of the
//!   claimed file's protocol lines (atomics/orderings/fences/unsafe);
//!   editing those lines without re-stamping via `ft-lint --restamp`
//!   fails, killing silently-stale loom claims.
//! * **L9** — inside `ft-lint: hot-path begin(..)/end(..)` regions,
//!   allocation (`Box::new`, `vec!`, `format!`, `.clone()`, ...),
//!   blocking (`Mutex`, `.lock()`, `sleep`, `println!`) and
//!   `std::sync::atomic` facade bypasses are flagged.
//!
//! Waiver syntax: `// ft-lint: allow(L5) <reason>` on the flagged line or
//! in the comment block immediately above it. The reason is mandatory and
//! waivers are reported (JSON and human output) so they stay auditable.
//! Test modules, integration tests, and benches are exempt from all rules.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lexer;
pub mod manifest;
pub mod parser;

use lexer::{has_word, lex, test_region_start, Line};
use manifest::{LoomManifest, Protocols};
use parser::ScTag;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// JSON report format version, bumped whenever field shapes change.
/// Version 2 added `schema_version` itself, sorted output, and rules
/// L6–L9.
pub const SCHEMA_VERSION: u32 = 2;

/// A rule violation at a file:line span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`L1`..`L9`).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A suppressed finding: same span as a violation plus the stated reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule identifier that was waived.
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number of the waived site.
    pub line: usize,
    /// The justification text after `ft-lint: allow(RULE)`.
    pub reason: String,
}

/// Outcome of linting a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations; [`run`] sorts them by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Waived findings; [`run`] sorts them by (file, line, rule).
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// What to lint and where. [`Config::workspace`] is the shipped policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all other paths are relative to it.
    pub root: PathBuf,
    /// Directories whose files are runtime code (rules L1, L3, L4, L6,
    /// L9).
    pub runtime_dirs: Vec<PathBuf>,
    /// Directories where non-SeqCst orderings need `// ord:` tags (L2).
    pub ordering_dirs: Vec<PathBuf>,
    /// Directories where `unwrap()`/`expect()` are forbidden (L5).
    pub hot_path_dirs: Vec<PathBuf>,
    /// Directories whose struct atomic fields must be claimed in the
    /// protocol manifest (L7). May include facade crates that are not
    /// runtime dirs — only the field scan runs on the extra files.
    pub field_dirs: Vec<PathBuf>,
    /// Loom-coverage manifest consulted by L4/L8, relative to `root`.
    pub manifest: PathBuf,
    /// Protocol manifest consulted by L6/L7, relative to `root`.
    pub protocols: PathBuf,
    /// Algorithm doc whose `<a id="...">` anchors L7 claims must hit,
    /// relative to `root`.
    pub algorithm: PathBuf,
}

impl Config {
    /// The policy for this workspace: runtime crates `steal`, `cmap`,
    /// `core`, `det`; ordering discipline everywhere atomics live; the
    /// scheduler hot path; field claims across the four concurrency
    /// crates; the two manifests under `docs/`.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Config {
            root: root.into(),
            runtime_dirs: [
                "crates/steal/src",
                "crates/cmap/src",
                "crates/core/src",
                "crates/det/src",
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
            ordering_dirs: [
                "crates/steal/src",
                "crates/cmap/src",
                "crates/core/src",
                "crates/det/src",
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
            hot_path_dirs: vec![PathBuf::from("crates/core/src/scheduler")],
            field_dirs: [
                "crates/core/src",
                "crates/steal/src",
                "crates/cmap/src",
                "crates/sync/src",
            ]
            .iter()
            .map(PathBuf::from)
            .collect(),
            manifest: PathBuf::from("docs/LOOM_COVERAGE.toml"),
            protocols: PathBuf::from("docs/PROTOCOLS.toml"),
            algorithm: PathBuf::from("docs/ALGORITHM.md"),
        }
    }
}

/// A tagged fence site awaiting cross-file pairing (rule L6).
#[derive(Debug, Clone)]
pub struct TaggedFence {
    /// 1-based line of the fence call.
    pub line: usize,
    /// The parsed `sc:` tag.
    pub tag: ScTag,
    /// An `allow(L6)` waiver reason covering the site, if present.
    pub waiver: Option<String>,
}

/// An atomic struct field awaiting a manifest claim (rule L7).
#[derive(Debug, Clone)]
pub struct ScannedField {
    /// Manifest key: `<file>::<Struct>::<field>`.
    pub key: String,
    /// 1-based declaration line.
    pub line: usize,
    /// An `allow(L7)` waiver reason covering the site, if present.
    pub waiver: Option<String>,
}

/// Per-file facts the cross-file pass consumes.
#[derive(Debug, Clone, Default)]
pub struct FileScan {
    /// Tagged fence sites (untagged ones were already reported).
    pub fences: Vec<TaggedFence>,
    /// Atomic struct fields.
    pub fields: Vec<ScannedField>,
}

/// Everything collected across the workspace for the cross-file rules.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceScan {
    /// `(file, fence)` for every tagged fence site.
    pub fences: Vec<(String, TaggedFence)>,
    /// `(file, field)` for every atomic struct field in the field dirs.
    pub fields: Vec<(String, ScannedField)>,
}

impl WorkspaceScan {
    /// Fold one file's scan into the workspace totals.
    pub fn add(&mut self, rel: &str, scan: FileScan) {
        self.fences
            .extend(scan.fences.into_iter().map(|f| (rel.to_string(), f)));
        self.fields
            .extend(scan.fields.into_iter().map(|f| (rel.to_string(), f)));
    }
}

/// Cross-file inputs for [`global_pass`], separated from the scan so
/// fixture tests can synthesize them without a workspace on disk.
pub struct GlobalInputs<'a> {
    /// Parsed protocol manifest (L6/L7).
    pub protocols: &'a Protocols,
    /// Path the protocol manifest is reported under.
    pub protocols_rel: &'a str,
    /// Parsed loom-coverage manifest (L8).
    pub loom: &'a LoomManifest,
    /// Path the loom manifest is reported under.
    pub loom_rel: &'a str,
    /// `docs/ALGORITHM.md` source, if readable (anchor checks).
    pub algorithm_src: Option<&'a str>,
    /// Read a workspace-relative file (loom-suite existence, L8
    /// fingerprints). Return `None` for missing files.
    pub read: &'a dyn Fn(&str) -> Option<String>,
}

impl std::fmt::Debug for GlobalInputs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalInputs")
            .field("protocols_rel", &self.protocols_rel)
            .field("loom_rel", &self.loom_rel)
            .finish_non_exhaustive()
    }
}

/// Lint everything named by `config`: the per-file rules over the runtime
/// dirs, the field scan over the field dirs, then the cross-file pass
/// (L6 pairing, L7 claims, L8 freshness). Output is sorted.
pub fn run(config: &Config) -> std::io::Result<Report> {
    let mut report = Report::default();
    let read_rel = |rel: &str| std::fs::read_to_string(config.root.join(rel)).ok();

    let loom_src = read_rel(&path_str(&config.manifest)).unwrap_or_default();
    let loom = LoomManifest::parse(&loom_src);
    let manifest_paths: Vec<String> = loom.entries.iter().map(|e| e.path.clone()).collect();

    let mut files = Vec::new();
    for dir in &config.runtime_dirs {
        collect_rs_files(&config.root.join(dir), &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut scan = WorkspaceScan::default();
    let mut runtime_rels = BTreeSet::new();
    for path in &files {
        let rel = relative_to(path, &config.root);
        let src = std::fs::read_to_string(path)?;
        let file_scan = lint_file(
            &rel,
            &src,
            dir_match(&rel, &config.ordering_dirs),
            dir_match(&rel, &config.hot_path_dirs),
            &manifest_paths,
            &mut report,
        );
        if dir_match(&rel, &config.field_dirs) {
            scan.add(&rel, file_scan);
        } else {
            // Fences still pair; fields outside the field dirs are not
            // claimable, so drop them.
            let fences_only = FileScan {
                fences: file_scan.fences,
                fields: Vec::new(),
            };
            scan.add(&rel, fences_only);
        }
        runtime_rels.insert(rel);
        report.files_scanned += 1;
    }

    // Field-only dirs (e.g. the ft-sync facade): scan struct fields for
    // L7 without applying the runtime rules.
    let mut field_files = Vec::new();
    for dir in &config.field_dirs {
        collect_rs_files(&config.root.join(dir), &mut field_files)?;
    }
    field_files.sort();
    field_files.dedup();
    for path in &field_files {
        let rel = relative_to(path, &config.root);
        if runtime_rels.contains(&rel) {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        scan.add(&rel, field_scan_only(&src, &rel));
        report.files_scanned += 1;
    }

    let protocols_src = read_rel(&path_str(&config.protocols)).unwrap_or_default();
    let protocols = Protocols::parse(&protocols_src);
    let algorithm_src = read_rel(&path_str(&config.algorithm));
    let inputs = GlobalInputs {
        protocols: &protocols,
        protocols_rel: &path_str(&config.protocols),
        loom: &loom,
        loom_rel: &path_str(&config.manifest),
        algorithm_src: algorithm_src.as_deref(),
        read: &read_rel,
    };
    global_pass(&scan, &inputs, &mut report);

    report.sort();
    Ok(report)
}

/// Allocation / blocking / facade-bypass tokens barred inside hot-path
/// regions (rule L9), matched as substrings of the code text.
const L9_SUBSTRINGS: &[&str] = &[
    "Box::new",
    "vec!",
    "format!",
    "String::from",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    ".clone()",
    ".lock()",
    "println!",
    "eprintln!",
    "std::sync::atomic",
    "core::sync::atomic",
];

/// L9 tokens matched at identifier boundaries (so e.g. `sleeping_workers`
/// does not trip `sleep`).
const L9_WORDS: &[&str] = &["Mutex", "RwLock", "Condvar", "sleep"];

/// Lint one file's source with the per-file rules (L1–L5, L9, and the
/// tag-presence half of L6). Exposed for fixture tests; `rel` is the path
/// reported in spans, `manifest_paths` the claimed L4 entries. The
/// returned [`FileScan`] feeds the cross-file pass ([`global_pass`]).
pub fn lint_file(
    rel: &str,
    src: &str,
    in_ordering_dir: bool,
    in_hot_path_dir: bool,
    manifest_paths: &[String],
    report: &mut Report,
) -> FileScan {
    let lines = lex(src);
    let test_start = test_region_start(&lines).unwrap_or(lines.len());
    let code = &lines[..test_start];
    let items = parser::parse_items(code);
    let mut scan = FileScan::default();

    let mut uses_atomics = false;
    let mut ord_covered = false;
    for (idx, line) in code.iter().enumerate() {
        if line.comment.contains("ord:") {
            ord_covered = true;
        }

        // L3: direct atomic imports bypass the loom-switched facade.
        if line.code.contains("std::sync::atomic") || line.code.contains("core::sync::atomic") {
            uses_atomics = true;
            emit(
                report,
                &lines,
                idx,
                "L3",
                rel,
                format!(
                    "direct atomic import bypasses the ft-sync facade \
                     (use `ft_sync::atomic`, which switches to loom under \
                     `--cfg loom`): `{}`",
                    line.code.trim()
                ),
            );
        }
        if line.code.contains("ft_sync::atomic") {
            uses_atomics = true;
        }

        // L1: unsafe must be justified by an adjacent SAFETY comment.
        if has_word(&line.code, "unsafe") {
            let above = block_comment_above(&lines, idx);
            let here = &line.comment;
            let justified =
                above.contains("SAFETY:") || above.contains("# Safety") || here.contains("SAFETY:");
            if !justified {
                emit(
                    report,
                    &lines,
                    idx,
                    "L1",
                    rel,
                    format!(
                        "`unsafe` without an immediately preceding \
                         `// SAFETY:` comment stating the invariant: `{}`",
                        line.code.trim()
                    ),
                );
            }
        }

        // L2: non-SeqCst orderings need an `// ord:` justification tag
        // covering the contiguous run of atomic accesses.
        let orderings = ordering_tokens(&line.code);
        if !orderings.is_empty() {
            let weak: Vec<&str> = orderings
                .iter()
                .copied()
                .filter(|o| *o != "SeqCst")
                .collect();
            if in_ordering_dir && !weak.is_empty() && !ord_covered {
                emit(
                    report,
                    &lines,
                    idx,
                    "L2",
                    rel,
                    format!(
                        "non-SeqCst ordering without an `// ord:` \
                         justification tag (see docs/ALGORITHM.md \
                         \"Ordering discipline\"): Ordering::{}",
                        weak.join(", Ordering::")
                    ),
                );
            }
        } else {
            // A statement-ending code line with no atomic access closes
            // the run an `// ord:` tag covers; mid-statement continuation
            // lines (method chains) keep it open.
            let t = line.code.trim_end();
            if !t.trim().is_empty() && (t.ends_with(';') || t.ends_with('{') || t.ends_with('}')) {
                ord_covered = false;
            }
        }

        // L5: scheduler hot paths must propagate errors, not abort.
        if in_hot_path_dir && (line.code.contains(".unwrap()") || line.code.contains(".expect(")) {
            emit(
                report,
                &lines,
                idx,
                "L5",
                rel,
                format!(
                    "`unwrap()`/`expect()` in a scheduler hot path: `{}`",
                    line.code.trim()
                ),
            );
        }

        // L9: hot-path regions must stay pure — no allocation, blocking,
        // or facade bypasses between the markers.
        if let Some(region) = items.in_hot_region(idx) {
            let mut hits: Vec<&str> = L9_SUBSTRINGS
                .iter()
                .copied()
                .filter(|t| line.code.contains(t))
                .collect();
            hits.extend(L9_WORDS.iter().copied().filter(|t| has_word(&line.code, t)));
            if !hits.is_empty() {
                emit(
                    report,
                    &lines,
                    idx,
                    "L9",
                    rel,
                    format!(
                        "impurity in hot-path region `{}`: {} — allocation \
                         and blocking are barred between hot-path markers: \
                         `{}`",
                        region.name,
                        hits.join(", "),
                        line.code.trim()
                    ),
                );
            }
        }
    }

    // Malformed hot-path markers are L9 violations themselves: a typo'd
    // region silently un-guards the code it was meant to cover.
    for (marker_line, message) in &items.marker_errors {
        emit(
            report,
            &lines,
            marker_line - 1,
            "L9",
            rel,
            format!("hot-path marker error: {message}"),
        );
    }

    // L6 (local half): every fence carries an `sc:` tag. Tagged sites are
    // returned for cross-file pairing.
    for fence in &items.fences {
        let idx = fence.line - 1;
        match &fence.tag {
            None => emit(
                report,
                &lines,
                idx,
                "L6",
                rel,
                format!(
                    "`fence(...)` without a `// sc: <protocol>/<side>` \
                     pairing tag (same line or comment block above): `{}`",
                    lines[idx].code.trim()
                ),
            ),
            Some(tag) => scan.fences.push(TaggedFence {
                line: fence.line,
                tag: tag.clone(),
                waiver: waiver_reason(&lines, idx, "L6"),
            }),
        }
    }

    // Atomic fields feed the L7 claim check in the cross-file pass.
    for field in &items.fields {
        scan.fields.push(ScannedField {
            key: field.key(rel),
            line: field.line,
            waiver: waiver_reason(&lines, field.line - 1, "L7"),
        });
    }

    // L4: files with atomics must be claimed by the loom-coverage manifest.
    if uses_atomics && !manifest_paths.iter().any(|p| p == rel) {
        report.violations.push(Violation {
            rule: "L4",
            file: rel.to_string(),
            line: 1,
            message: format!(
                "file uses atomics but has no entry in the loom-coverage \
                 manifest (docs/LOOM_COVERAGE.toml); claim it with a \
                 `[[entry]]` whose path = \"{rel}\""
            ),
        });
    }

    scan
}

/// Field scan for files outside the runtime dirs (e.g. the ft-sync
/// facade): only L7 claim data is collected, no rules fire.
pub fn field_scan_only(src: &str, rel: &str) -> FileScan {
    let lines = lex(src);
    let test_start = test_region_start(&lines).unwrap_or(lines.len());
    let items = parser::parse_items(&lines[..test_start]);
    FileScan {
        fences: Vec::new(),
        fields: items
            .fields
            .iter()
            .map(|f| ScannedField {
                key: f.key(rel),
                line: f.line,
                waiver: waiver_reason(&lines, f.line - 1, "L7"),
            })
            .collect(),
    }
}

/// The cross-file rules: L6 fence pairing, L7 manifest claims, L8
/// loom-claim freshness. Pure over the scan + inputs so tests can drive
/// it without a workspace.
pub fn global_pass(scan: &WorkspaceScan, inputs: &GlobalInputs<'_>, report: &mut Report) {
    // --- L6: pairing -----------------------------------------------------
    // Sides per protocol across the whole workspace; pairing means the
    // protocol has at least two distinct sides (Dekker-style fences come
    // in registrant/drainer, writer/reader, ... pairs or better).
    let mut sides: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, fence) in &scan.fences {
        sides
            .entry(fence.tag.protocol.as_str())
            .or_default()
            .insert(fence.tag.side.as_str());
    }
    for (file, fence) in &scan.fences {
        let tag = &fence.tag;
        let problem = if inputs.protocols.by_name(&tag.protocol).is_none() {
            Some(format!(
                "fence tag `sc: {}/{}` names a protocol not declared in \
                 {} — add a [[protocol]] entry",
                tag.protocol, tag.side, inputs.protocols_rel
            ))
        } else if sides[tag.protocol.as_str()].len() < 2 {
            Some(format!(
                "unpaired fence: `sc: {}/{}` is the only side of protocol \
                 `{}` in the workspace — a fence needs a partner side to \
                 order against",
                tag.protocol, tag.side, tag.protocol
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            finding(
                report,
                "L6",
                file,
                fence.line,
                message,
                fence.waiver.as_ref(),
            );
        }
    }

    // --- L7: claims ------------------------------------------------------
    for (file, field) in &scan.fields {
        if inputs.protocols.claimant(&field.key).is_none() {
            finding(
                report,
                "L7",
                file,
                field.line,
                format!(
                    "atomic field `{}` is not claimed by any [[protocol]] \
                     in {} — map it to a protocol, ALGORITHM.md anchor and \
                     loom suite",
                    field.key, inputs.protocols_rel
                ),
                field.waiver.as_ref(),
            );
        }
    }
    let declared: BTreeSet<&str> = scan.fields.iter().map(|(_, f)| f.key.as_str()).collect();
    for protocol in &inputs.protocols.protocols {
        if protocol.name.is_empty() {
            finding(
                report,
                "L7",
                inputs.protocols_rel,
                protocol.line,
                "[[protocol]] without a name".to_string(),
                None,
            );
            continue;
        }
        for (key, line) in &protocol.fields {
            if !declared.contains(key.as_str()) {
                finding(
                    report,
                    "L7",
                    inputs.protocols_rel,
                    *line,
                    format!(
                        "dangling claim: protocol `{}` claims `{key}` but \
                         no scanned runtime struct declares it",
                        protocol.name
                    ),
                    None,
                );
            }
        }
        match (inputs.algorithm_src, protocol.anchor.as_str()) {
            (_, "") => finding(
                report,
                "L7",
                inputs.protocols_rel,
                protocol.line,
                format!("protocol `{}` has no ALGORITHM.md anchor", protocol.name),
                None,
            ),
            (None, _) => finding(
                report,
                "L7",
                inputs.protocols_rel,
                protocol.line,
                format!(
                    "protocol `{}`: ALGORITHM.md is unreadable, anchor \
                     `{}` cannot be verified",
                    protocol.name, protocol.anchor
                ),
                None,
            ),
            (Some(doc), anchor) if !doc.contains(&format!("<a id=\"{anchor}\"")) => finding(
                report,
                "L7",
                inputs.protocols_rel,
                protocol.line,
                format!(
                    "protocol `{}`: anchor `{anchor}` not found in \
                     ALGORITHM.md (expected `<a id=\"{anchor}\">` at the \
                     section heading)",
                    protocol.name
                ),
                None,
            ),
            _ => {}
        }
        for suite in &protocol.loom {
            if (inputs.read)(suite).is_none() {
                finding(
                    report,
                    "L7",
                    inputs.protocols_rel,
                    protocol.line,
                    format!(
                        "protocol `{}`: loom suite `{suite}` does not exist",
                        protocol.name
                    ),
                    None,
                );
            }
        }
        if protocol.loom.is_empty() && protocol.notes.is_empty() {
            finding(
                report,
                "L7",
                inputs.protocols_rel,
                protocol.line,
                format!(
                    "protocol `{}` has no loom suite and no notes \
                     justifying its absence",
                    protocol.name
                ),
                None,
            );
        }
    }

    // --- L8: freshness ---------------------------------------------------
    for entry in &inputs.loom.entries {
        let Some(src) = (inputs.read)(&entry.path) else {
            finding(
                report,
                "L8",
                inputs.loom_rel,
                entry.line,
                format!("entry claims `{}`, which does not exist", entry.path),
                None,
            );
            continue;
        };
        let fresh = manifest::protocol_fingerprint(&src);
        match &entry.fingerprint {
            None => finding(
                report,
                "L8",
                inputs.loom_rel,
                entry.line,
                format!(
                    "entry for `{}` has no fingerprint — run \
                     `cargo run -p ft-lint -- --restamp` after verifying \
                     the loom models still cover the file",
                    entry.path
                ),
                None,
            ),
            Some(old) if *old != fresh => finding(
                report,
                "L8",
                entry
                    .fingerprint_line
                    .map(|_| inputs.loom_rel)
                    .unwrap_or(inputs.loom_rel),
                entry.fingerprint_line.unwrap_or(entry.line),
                format!(
                    "stale fingerprint for `{}` (stamped {old}, now \
                     {fresh}): its atomic/unsafe/fence lines changed — \
                     re-verify the claimed loom models, then run \
                     `cargo run -p ft-lint -- --restamp`",
                    entry.path
                ),
                None,
            ),
            _ => {}
        }
    }
}

/// Record a cross-file finding, downgrading to a waiver when the scanned
/// site carried one.
fn finding(
    report: &mut Report,
    rule: &'static str,
    file: &str,
    line: usize,
    message: String,
    waiver: Option<&String>,
) {
    match waiver {
        Some(reason) => report.waivers.push(Waiver {
            rule,
            file: file.to_string(),
            line,
            reason: reason.clone(),
        }),
        None => report.violations.push(Violation {
            rule,
            file: file.to_string(),
            line,
            message,
        }),
    }
}

/// Record a finding, downgrading it to a waiver when one applies.
fn emit(
    report: &mut Report,
    lines: &[Line],
    idx: usize,
    rule: &'static str,
    rel: &str,
    message: String,
) {
    if let Some(reason) = waiver_reason(lines, idx, rule) {
        report.waivers.push(Waiver {
            rule,
            file: rel.to_string(),
            line: idx + 1,
            reason,
        });
    } else {
        report.violations.push(Violation {
            rule,
            file: rel.to_string(),
            line: idx + 1,
            message,
        });
    }
}

/// Text of the contiguous comment block immediately above `idx`,
/// skipping attribute-only lines (so `#[inline]` between the comment and
/// the item does not sever them).
fn block_comment_above(lines: &[Line], idx: usize) -> String {
    let mut text = String::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.is_comment_only() || l.is_attr_only() {
            let _ = write!(text, "{} ", l.comment);
        } else {
            break;
        }
    }
    text
}

/// The waiver reason for `rule` at line `idx`, if a well-formed
/// `ft-lint: allow(RULE) <reason>` comment covers it (same line or in the
/// comment block immediately above). A waiver without a reason is invalid
/// and does not suppress.
fn waiver_reason(lines: &[Line], idx: usize, rule: &str) -> Option<String> {
    let needle = format!("ft-lint: allow({rule})");
    let probe = |comment: &str| -> Option<String> {
        let at = comment.find(&needle)?;
        let reason = comment[at + needle.len()..].trim();
        (!reason.is_empty()).then(|| reason.to_string())
    };
    if let Some(r) = probe(&lines[idx].comment) {
        return Some(r);
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.is_comment_only() || l.is_attr_only() {
            if let Some(r) = probe(&l.comment) {
                return Some(r);
            }
        } else {
            break;
        }
    }
    None
}

/// All `Ordering::<Ident>` tokens on a code line.
fn ordering_tokens(code: &str) -> Vec<&str> {
    const KEY: &str = "Ordering::";
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(KEY) {
        let at = start + pos + KEY.len();
        let end = code[at..]
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map(|(k, _)| at + k)
            .unwrap_or(code.len());
        if end > at {
            out.push(&code[at..end]);
        }
        start = end.max(at);
    }
    out
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (stable across platforms so
/// manifest entries and JSON output never contain backslashes).
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// A relative `PathBuf` as a `/`-separated string.
fn path_str(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Is `rel` (a `/`-separated relative path) under any of `dirs`?
fn dir_match(rel: &str, dirs: &[PathBuf]) -> bool {
    dirs.iter().any(|d| {
        let d = path_str(d);
        rel == d || rel.starts_with(&format!("{d}/"))
    })
}

impl Report {
    /// Deterministic order: (file, line, rule) for violations and waivers
    /// alike. [`run`] calls this; CI artifact diffs stay stable.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.waivers
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Human-readable diagnostics, one finding per line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: {} {}", v.file, v.line, v.rule, v.message);
        }
        for w in &self.waivers {
            let _ = writeln!(
                out,
                "{}:{}: {} waived: {}",
                w.file, w.line, w.rule, w.reason
            );
        }
        let _ = writeln!(
            out,
            "ft-lint: {} file(s) scanned, {} violation(s), {} waiver(s)",
            self.files_scanned,
            self.violations.len(),
            self.waivers.len()
        );
        out
    }

    /// Machine-readable JSON (hand-rolled; no dependencies).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                v.rule,
                esc(&v.file),
                v.line,
                esc(&v.message)
            );
        }
        out.push_str("\n  ],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                w.rule,
                esc(&w.file),
                w.line,
                esc(&w.reason)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"files_scanned\": {}\n}}\n",
            self.files_scanned
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str, ordering: bool, hot: bool) -> Report {
        let mut r = Report::default();
        lint_file("test.rs", src, ordering, hot, &[], &mut r);
        r
    }

    #[test]
    fn l1_flags_bare_unsafe_and_accepts_safety() {
        let r = lint_str("fn f() { unsafe { g() } }\n", false, false);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L1");

        let ok = "// SAFETY: g is sound here because reasons.\nfn f() { unsafe { g() } }\n";
        assert!(lint_str(ok, false, false).violations.is_empty());
    }

    #[test]
    fn l1_accepts_doc_safety_section_through_attrs() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller upholds X.\n#[inline]\npub unsafe fn f() {}\n";
        assert!(lint_str(src, false, false).violations.is_empty());
    }

    #[test]
    fn l2_requires_and_honors_ord_tags() {
        let bad = "fn f(a: &A) { a.x.store(1, Ordering::Release); }\n";
        let r = lint_str(bad, true, false);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L2");

        let ok = "fn f(a: &A) {\n    // ord: Release — publishes x to the reader's Acquire.\n    a.x.store(1, Ordering::Release);\n}\n";
        assert!(lint_str(ok, true, false).violations.is_empty());

        // SeqCst needs no tag; outside ordering dirs nothing is checked.
        assert!(lint_str(
            "fn f(a: &A) { a.x.store(1, Ordering::SeqCst); }",
            true,
            false
        )
        .violations
        .is_empty());
        assert!(lint_str(bad, false, false).violations.is_empty());
    }

    #[test]
    fn l2_tag_covers_contiguous_run_but_not_past_plain_statements() {
        let src = "fn f(a: &A) {\n    // ord: Acquire/Relaxed — cluster justified.\n    let x = a.x.load(Ordering::Acquire);\n    let y = a.y.load(Ordering::Relaxed);\n    let z = x + y;\n    a.x.store(z, Ordering::Release);\n}\n";
        let r = lint_str(src, true, false);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 6);
    }

    #[test]
    fn l2_multiline_chain_stays_covered() {
        let src = "fn f(a: &A) {\n    // ord: AcqRel success / Relaxed failure — CAS publishes.\n    let won = a\n        .x\n        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)\n        .is_ok();\n}\n";
        assert!(lint_str(src, true, false).violations.is_empty());
    }

    #[test]
    fn l3_flags_direct_import_and_facade_passes() {
        let r = lint_str("use std::sync::atomic::AtomicUsize;\n", false, false);
        assert_eq!(r.violations.len(), 2, "L3 plus unclaimed-L4");
        assert_eq!(r.violations[0].rule, "L3");
        assert_eq!(r.violations[1].rule, "L4");

        let mut r = Report::default();
        lint_file(
            "test.rs",
            "use ft_sync::atomic::AtomicUsize;\n",
            false,
            false,
            &["test.rs".to_string()],
            &mut r,
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l5_flags_unwrap_and_waiver_suppresses_with_reason() {
        let r = lint_str("fn f() { x().unwrap(); }\n", false, true);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L5");

        let waived =
            "// ft-lint: allow(L5) unreachable: x is checked above.\nfn f() { x().unwrap(); }\n";
        let r = lint_str(waived, false, true);
        assert!(r.violations.is_empty());
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, "L5");

        // A reason-less waiver does not suppress.
        let bad = "// ft-lint: allow(L5)\nfn f() { x().unwrap(); }\n";
        assert_eq!(lint_str(bad, false, true).violations.len(), 1);
    }

    #[test]
    fn l6_untagged_fence_flagged_and_tagged_collected() {
        let bad = "fn f() { fence(Ordering::SeqCst); }\n";
        let r = lint_str(bad, false, false);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L6");

        let mut r = Report::default();
        let scan = lint_file(
            "test.rs",
            "fn f() {\n    // sc: notify/registrant — pairs with the drainer.\n    fence(Ordering::SeqCst);\n}\n",
            false,
            false,
            &[],
            &mut r,
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(scan.fences.len(), 1);
        assert_eq!(scan.fences[0].tag.protocol, "notify");
        assert_eq!(scan.fences[0].line, 3);
    }

    #[test]
    fn l9_flags_impurity_only_inside_regions() {
        let src = "fn cold() { let v = vec![1]; }\n// ft-lint: hot-path begin(demo)\nfn hot() {\n    let b = Box::new(1);\n    let g = m.lock();\n}\n// ft-lint: hot-path end(demo)\nfn cold2() { let s = format!(\"x\"); }\n";
        let r = lint_str(src, false, false);
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(r.violations.iter().all(|v| v.rule == "L9"));
        assert_eq!(r.violations[0].line, 4, "Box::new inside the region");
        assert_eq!(r.violations[1].line, 5, ".lock() inside the region");
        assert!(r.violations[0].message.contains("demo"));
    }

    #[test]
    fn l9_word_tokens_respect_identifier_boundaries() {
        let src = "// ft-lint: hot-path begin(r)\nfn hot() {\n    let sleeping_workers = 3;\n    wake(sleeping_workers);\n}\n// ft-lint: hot-path end(r)\n";
        assert!(lint_str(src, false, false).violations.is_empty());
        let bad = "// ft-lint: hot-path begin(r)\nfn hot() {\n    thread::sleep(d);\n}\n// ft-lint: hot-path end(r)\n";
        let r = lint_str(bad, false, false);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "L9");
    }

    #[test]
    fn l9_marker_errors_are_violations() {
        let src = "// ft-lint: hot-path begin(a)\nfn f() {}\n";
        let r = lint_str(src, false, false);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, "L9");
        assert!(r.violations[0].message.contains("never closed"));
    }

    #[test]
    fn l9_waiver_suppresses_a_hot_path_hit() {
        let src = "// ft-lint: hot-path begin(r)\nfn hot() {\n    // ft-lint: allow(L9) recovery path only; measured cold.\n    let b = Box::new(1);\n}\n// ft-lint: hot-path end(r)\n";
        let r = lint_str(src, false, false);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.waivers.len(), 1);
        assert_eq!(r.waivers[0].rule, "L9");
    }

    #[test]
    fn global_pass_pairs_fences_and_checks_claims() {
        let protocols = Protocols::parse(
            "[[protocol]]\nname = \"notify\"\nanchor = \"notify-gate\"\nloom = [\"tests/loom_notify.rs\"]\nfields = [\"a.rs::S::flag\"]\nnotes = \"n\"\n",
        );
        let loom = LoomManifest::parse("");
        let algorithm = "## Gate <a id=\"notify-gate\"></a>\n";
        let read = |path: &str| (path == "tests/loom_notify.rs").then(|| String::from("// model"));
        let inputs = GlobalInputs {
            protocols: &protocols,
            protocols_rel: "PROTOCOLS.toml",
            loom: &loom,
            loom_rel: "LOOM.toml",
            algorithm_src: Some(algorithm),
            read: &read,
        };

        // Paired fences + claimed field: clean.
        let mut scan = WorkspaceScan::default();
        scan.add(
            "a.rs",
            FileScan {
                fences: vec![
                    TaggedFence {
                        line: 3,
                        tag: ScTag {
                            protocol: "notify".into(),
                            side: "registrant".into(),
                        },
                        waiver: None,
                    },
                    TaggedFence {
                        line: 9,
                        tag: ScTag {
                            protocol: "notify".into(),
                            side: "drainer".into(),
                        },
                        waiver: None,
                    },
                ],
                fields: vec![ScannedField {
                    key: "a.rs::S::flag".into(),
                    line: 1,
                    waiver: None,
                }],
            },
        );
        let mut r = Report::default();
        global_pass(&scan, &inputs, &mut r);
        assert!(r.violations.is_empty(), "{:?}", r.violations);

        // Lone side: unpaired. Unknown protocol: undeclared. Unclaimed
        // field and dangling claim both fire.
        let mut scan = WorkspaceScan::default();
        scan.add(
            "b.rs",
            FileScan {
                fences: vec![
                    TaggedFence {
                        line: 1,
                        tag: ScTag {
                            protocol: "notify".into(),
                            side: "registrant".into(),
                        },
                        waiver: None,
                    },
                    TaggedFence {
                        line: 2,
                        tag: ScTag {
                            protocol: "ghost".into(),
                            side: "x".into(),
                        },
                        waiver: None,
                    },
                ],
                fields: vec![ScannedField {
                    key: "b.rs::T::seq".into(),
                    line: 5,
                    waiver: None,
                }],
            },
        );
        let mut r = Report::default();
        global_pass(&scan, &inputs, &mut r);
        let rules: Vec<(&str, usize)> = r.violations.iter().map(|v| (v.rule, v.line)).collect();
        assert!(
            rules.contains(&("L6", 1)) && rules.contains(&("L6", 2)),
            "unpaired + undeclared: {:?}",
            r.violations
        );
        assert!(
            rules.contains(&("L7", 5)),
            "unclaimed field: {:?}",
            r.violations
        );
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == "L7" && v.message.contains("dangling")),
            "dangling claim: {:?}",
            r.violations
        );
    }

    #[test]
    fn global_pass_checks_anchor_loom_and_freshness() {
        let protocols = Protocols::parse(
            "[[protocol]]\nname = \"p\"\nanchor = \"absent\"\nloom = [\"nope.rs\"]\nfields = []\nnotes = \"\"\n",
        );
        let loom = LoomManifest::parse(
            "[[entry]]\npath = \"x.rs\"\nmodels = []\n\n[[entry]]\npath = \"y.rs\"\nfingerprint = \"dead\"\nmodels = []\n",
        );
        let read = |path: &str| match path {
            "x.rs" | "y.rs" => Some(String::from(
                "fn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n",
            )),
            _ => None,
        };
        let inputs = GlobalInputs {
            protocols: &protocols,
            protocols_rel: "PROTOCOLS.toml",
            loom: &loom,
            loom_rel: "LOOM.toml",
            algorithm_src: Some("# no anchors here"),
            read: &read,
        };
        let mut r = Report::default();
        global_pass(&WorkspaceScan::default(), &inputs, &mut r);
        let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("anchor `absent` not found")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("loom suite `nope.rs`")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("no fingerprint")),
            "unstamped entry: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("stale fingerprint")),
            "stale entry: {msgs:?}"
        );
    }

    #[test]
    fn rules_skip_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicUsize;\n    fn g() { unsafe { h() } }\n}\n";
        assert!(lint_str(src, true, true).violations.is_empty());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = "fn f() { let s = \"unsafe Ordering::Relaxed\"; } // unsafe\n";
        assert!(lint_str(src, true, false).violations.is_empty());
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut r = Report::default();
        lint_file(
            "a.rs",
            "fn f() { unsafe { g(\"q\\\"\") } }\n",
            false,
            false,
            &[],
            &mut r,
        );
        let json = r.render_json();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"rule\": \"L1\""));
        assert!(json.contains("\"files_scanned\": 0"));
    }

    #[test]
    fn report_sort_orders_by_file_line_rule() {
        let mut r = Report::default();
        for (rule, file, line) in [("L5", "b.rs", 2), ("L1", "a.rs", 9), ("L2", "a.rs", 9)] {
            r.violations.push(Violation {
                rule,
                file: file.into(),
                line,
                message: String::new(),
            });
        }
        r.sort();
        let order: Vec<(&str, usize, &str)> = r
            .violations
            .iter()
            .map(|v| (v.file.as_str(), v.line, v.rule))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs", 9, "L1"), ("a.rs", 9, "L2"), ("b.rs", 2, "L5")]
        );
    }
}
