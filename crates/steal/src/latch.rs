//! Completion detection for fire-and-forget task DAGs.
//!
//! NABBIT's traversal never syncs on spawned children; the run is over when
//! the *sink task* completes (and, for quiescence-style uses, when all
//! outstanding jobs have drained). Two primitives cover both:
//!
//! * [`Flag`] — a one-shot boolean latch the sink task sets; the submitting
//!   thread blocks on it.
//! * [`CountLatch`] — counts outstanding jobs; trips at zero. The pool uses
//!   it to detect quiescence of a `run_until_complete` scope.

use ft_sync::atomic::{AtomicBool, AtomicIsize, Ordering};
use parking_lot::{Condvar, Mutex};

/// One-shot boolean latch.
#[derive(Default)]
pub struct Flag {
    set: AtomicBool,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl std::fmt::Debug for Flag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flag").field("set", &self.is_set()).finish()
    }
}

impl Flag {
    /// New, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the flag and wake all waiters. Idempotent.
    pub fn set(&self) {
        // ord: Release — publishes everything the setter did before `set`
        // to the waiter's Acquire load in `is_set`; the mutex round-trip
        // below additionally orders the store before `notify_all` so a
        // concurrent `wait` cannot miss the wakeup.
        self.set.store(true, Ordering::Release);
        let _g = self.lock.lock();
        self.condvar.notify_all();
    }

    /// True once `set` has been called.
    pub fn is_set(&self) -> bool {
        // ord: Acquire — pairs with the Release store in `set`.
        self.set.load(Ordering::Acquire)
    }

    /// Block until the flag is set.
    pub fn wait(&self) {
        if self.is_set() {
            return;
        }
        let mut g = self.lock.lock();
        while !self.is_set() {
            self.condvar.wait(&mut g);
        }
    }
}

/// Counts outstanding work items; trips when the count returns to zero.
///
/// The count starts at zero and the latch is considered tripped only after
/// at least one increment has happened and the count has returned to zero
/// (the usual "started then quiesced" semantics a pool scope needs).
pub struct CountLatch {
    count: AtomicIsize,
    started: AtomicBool,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl Default for CountLatch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CountLatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountLatch")
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

impl CountLatch {
    /// New latch with zero outstanding items.
    pub fn new() -> Self {
        CountLatch {
            count: AtomicIsize::new(0),
            started: AtomicBool::new(false),
            lock: Mutex::new(()),
            condvar: Condvar::new(),
        }
    }

    /// Register one more outstanding item.
    pub fn increment(&self) {
        // ord: Relaxed — `started` is monotone (false→true once) and only
        // gates quiescence together with the count; the AcqRel RMW below
        // orders it for any observer that sees the incremented count.
        self.started.store(true, Ordering::Relaxed);
        // ord: AcqRel — increments and decrements form a single release
        // sequence so the final decrement observes all prior updates.
        self.count.fetch_add(1, Ordering::AcqRel);
    }

    /// Mark one item complete; wakes waiters when the count hits zero.
    ///
    /// Returns `true` for the decrement that tripped the latch (the 1 → 0
    /// transition), which happens at most once per quiescence — callers use
    /// it to run once-only completion actions (e.g. an instance's quiesce
    /// hook) without a separate race-prone count probe.
    pub fn decrement(&self) -> bool {
        // ord: AcqRel — the decrement releases the completing job's writes
        // and the final decrement acquires every earlier one, so the waiter
        // woken at zero sees all completed work.
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev >= 1, "CountLatch underflow");
        if prev == 1 {
            let _g = self.lock.lock();
            self.condvar.notify_all();
            return true;
        }
        false
    }

    /// Current outstanding count.
    pub fn outstanding(&self) -> isize {
        // ord: Acquire — pairs with the AcqRel decrements so a zero read
        // implies the completed jobs' writes are visible.
        self.count.load(Ordering::Acquire)
    }

    /// True if at least one item was registered and all have completed.
    pub fn is_quiescent(&self) -> bool {
        // ord: Relaxed — monotone flag; see `increment`.
        self.started.load(Ordering::Relaxed) && self.outstanding() == 0
    }

    /// Block until quiescent.
    pub fn wait(&self) {
        if self.is_quiescent() {
            return;
        }
        let mut g = self.lock.lock();
        while !self.is_quiescent() {
            self.condvar.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn flag_set_then_wait_returns() {
        let f = Flag::new();
        assert!(!f.is_set());
        f.set();
        assert!(f.is_set());
        f.wait(); // must not block
    }

    #[test]
    fn flag_wakes_waiter() {
        let f = Arc::new(Flag::new());
        let f2 = Arc::clone(&f);
        let h = thread::spawn(move || f2.wait());
        thread::sleep(std::time::Duration::from_millis(5));
        f.set();
        h.join().unwrap();
    }

    #[test]
    fn flag_set_is_idempotent() {
        let f = Flag::new();
        f.set();
        f.set();
        assert!(f.is_set());
    }

    #[test]
    fn count_latch_trips_at_zero() {
        let l = CountLatch::new();
        assert!(!l.is_quiescent(), "never-started latch is not quiescent");
        l.increment();
        l.increment();
        assert_eq!(l.outstanding(), 2);
        assert!(!l.decrement(), "non-final decrement does not trip");
        assert!(!l.is_quiescent());
        assert!(l.decrement(), "final decrement reports the trip");
        assert!(l.is_quiescent());
        l.wait(); // must not block
    }

    #[test]
    fn count_latch_concurrent() {
        let l = Arc::new(CountLatch::new());
        for _ in 0..64 {
            l.increment();
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            handles.push(thread::spawn(move || {
                for _ in 0..8 {
                    l.decrement();
                }
            }));
        }
        l.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.outstanding(), 0);
    }
}
