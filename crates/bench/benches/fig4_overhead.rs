//! Criterion version of Figure 4: fault-free execution time of the
//! baseline scheduler vs the FT-enabled scheduler, per benchmark.
//!
//! The paper's claim: "these additional structures do not incur substantial
//! overheads" — baseline and FT bars should be statistically
//! indistinguishable (FW excepted: two-version blocks cost ~10%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_apps::AppConfig;
use ft_bench::{make_app, run_baseline, run_ft, AppKind};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::inject::FaultPlan;
use std::time::Duration;

fn bench_cfg(kind: AppKind) -> AppConfig {
    match kind {
        AppKind::Lcs | AppKind::Sw => AppConfig::new(2048, 128),
        _ => AppConfig::new(384, 48),
    }
}

fn fig4(c: &mut Criterion) {
    let threads = 4;
    let pool = Pool::new(PoolConfig::with_threads(threads));
    let mut group = c.benchmark_group("fig4_no_fault_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));
    for &kind in ft_bench::APP_KINDS {
        let cfg = bench_cfg(kind);
        group.bench_with_input(
            BenchmarkId::new("baseline", kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let app = make_app(kind, cfg);
                    assert!(run_baseline(&pool, app).sink_completed);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("ft", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let app = make_app(kind, cfg);
                assert!(run_ft(&pool, app, FaultPlan::none()).sink_completed);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
