//! Offline shim for the `proptest` crate.
//!
//! The workspace builds with no network and no crates.io mirror, so the
//! external `proptest` dependency is replaced by this in-repo shim
//! (pointed at via a path dependency in the workspace `Cargo.toml`). It
//! keeps the *shape* of proptest — `proptest!`, strategies, `prop_oneof!`,
//! `prop_assert*!`, `ProptestConfig`, regression-file persistence — while
//! implementing generation as plain seeded random sampling.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its replay seed instead; the
//!   seed is appended to the sibling `.proptest-regressions` file and
//!   replayed first on subsequent runs.
//! - **Deterministic seeds.** Cases derive from a hash of the test's
//!   module/name and the case index, overridable with `PROPTEST_SEED`.
//!   Same binary → same cases, which is what CI wants.
//! - Regression entries written by real proptest (whose `cc` payload
//!   encodes its own RNG state) are replayed by hashing the hex payload
//!   into a seed — a deterministic extra case, not a faithful replay.

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec(...)` etc., mirroring proptest's `prop` path.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. Duplicate draws are retried a bounded number of times, so
    /// the resulting set may be smaller than the draw when the element
    /// domain is nearly exhausted (matching proptest's best-effort
    /// behaviour for small domains).
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate ordered sets of values from `element` with size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = rng.usize_in(self.size.clone());
            let mut set = BTreeSet::new();
            let mut misses = 0;
            while set.len() < want && misses < 64 {
                if !set.insert(self.element.sample(rng)) {
                    misses += 1;
                }
            }
            set
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the current proptest case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest] {}", format!($($fmt)*));
        }
    };
}

/// Fail the current proptest case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fail the current proptest case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{:?} == {:?}", l, r);
    }};
}

/// Weighted union of strategies producing the same value type.
///
/// Arms are `strategy` or `weight => strategy`, as in real proptest.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_test(x in 0u64..10, ops in prop::collection::vec(op(), 0..50)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                ::core::file!(),
                &__config,
                &|__rng: &mut $crate::strategy::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
