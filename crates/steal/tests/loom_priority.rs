//! Loom model tests for the dual-lane priority injector: the hot-hint
//! protocol (SeqCst increment *before* publication, decrement *after* a
//! successful steal), lane isolation, and hot/normal races.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-steal --test loom_priority
//! ```
//!
//! Under `--cfg loom` the injectors inside [`PrioInjector`] compile
//! against `loom::sync::atomic`, so the hint RMWs and every underlying
//! queue CAS are model-exploration points. `LOOM_MAX_ITERS` / `LOOM_SEED`
//! control the exploration budget and make failures replayable.
#![cfg(loom)]

use ft_steal::deque::deque;
use ft_steal::priority::{PrioInjector, Priority};
use std::collections::HashSet;
use std::sync::Arc;

/// The hint protocol's load-bearing property: because the hint is
/// incremented *before* the hot push, a thief that runs entirely after a
/// completed `push(High)` can never see hint = 0 and skip a published
/// element.
#[test]
fn hint_never_undercounts_published_hot_work() {
    loom::model(|| {
        let q = Arc::new(PrioInjector::<u64>::new());
        let q2 = Arc::clone(&q);
        let producer = loom::thread::spawn(move || q2.push(7, Priority::High));
        producer.join().unwrap();
        // Publication happened-before this thread: the gate must be open
        // and the element must be there.
        assert_eq!(
            q.steal_hot(),
            Some(7),
            "hint-gated steal missed published work"
        );
        assert_eq!(q.hot_hint(), 0, "hint must return to zero");
        assert!(q.is_empty());
    });
}

/// One hot element, two thieves racing through the hint gate: exactly one
/// succeeds, the element is neither lost nor duplicated, and the hint
/// settles back to zero (decrements never exceed increments).
#[test]
fn two_thieves_race_one_hot_element() {
    loom::model(|| {
        let q = Arc::new(PrioInjector::<u64>::new());
        q.push(42, Priority::High);
        let q2 = Arc::clone(&q);
        let thief = loom::thread::spawn(move || q2.steal_hot());
        let here = q.steal_hot();
        let there = thief.join().unwrap();
        match (here, there) {
            (Some(42), None) | (None, Some(42)) => {}
            other => panic!("hot element lost or duplicated: {other:?}"),
        }
        assert_eq!(q.hot_hint(), 0);
        assert!(q.is_empty());
    });
}

/// Mixed-lane MPMC: a producer pushing into both lanes races two
/// consumers draining via the hot-first [`PrioInjector::steal`]. Every
/// element is consumed exactly once and the hint ends at zero.
#[test]
fn mixed_lanes_no_loss_no_duplication() {
    const N: u64 = 4; // 2 hot + 2 normal
    loom::model(|| {
        let q = Arc::new(PrioInjector::<u64>::new());
        let q2 = Arc::clone(&q);
        let producer = loom::thread::spawn(move || {
            q2.push(0, Priority::High);
            q2.push(1, Priority::Normal);
            q2.push(2, Priority::High);
            q2.push(3, Priority::Normal);
        });
        let q3 = Arc::clone(&q);
        let consumer = loom::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                if let Some(v) = q3.steal() {
                    got.push(v);
                }
            }
            got
        });
        let mut mine = Vec::new();
        while mine.len() < 2 {
            if let Some(v) = q.steal() {
                mine.push(v);
            }
        }
        producer.join().unwrap();
        let theirs = consumer.join().unwrap();
        // Drain the remainder (the consumer's two attempts may have raced
        // ahead of the producer and come up empty).
        let mut rest = Vec::new();
        while let Some(v) = q.steal() {
            rest.push(v);
        }
        let mut seen = HashSet::new();
        for &v in mine.iter().chain(theirs.iter()).chain(rest.iter()) {
            assert!(seen.insert(v), "element {v} consumed twice");
        }
        assert_eq!(seen.len() as u64, N, "elements lost: {seen:?}");
        assert_eq!(q.hot_hint(), 0, "hint must settle to zero");
        assert!(q.is_empty());
    });
}

/// Lane isolation under a race: a normal-lane batch steal into a worker
/// deque never captures hot-lane elements, even while a hot steal runs
/// concurrently.
#[test]
fn batch_steal_normal_never_captures_hot() {
    loom::model(|| {
        let q = Arc::new(PrioInjector::<u64>::new());
        q.push(100, Priority::High);
        q.push(1, Priority::Normal);
        q.push(2, Priority::Normal);
        let q2 = Arc::clone(&q);
        let hot_thief = loom::thread::spawn(move || q2.steal_hot());
        let (w, _s) = deque::<u64>();
        let mut batched = Vec::new();
        if let Some(first) = q.steal_batch_and_pop_normal(&w) {
            batched.push(first);
        }
        while let Some(v) = w.pop() {
            batched.push(v);
        }
        assert!(
            !batched.contains(&100),
            "hot element leaked into a normal batch: {batched:?}"
        );
        let hot = hot_thief.join().unwrap();
        assert_eq!(hot, Some(100), "single hot thief must win its element");
        assert_eq!(q.hot_hint(), 0);
    });
}
