//! Section V integration checks: the Theorem 2 completion-time machinery
//! evaluated against real executions of the benchmark graphs.

use ft_apps::lu::Lu;
use ft_apps::{AppConfig, BenchApp};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::analysis::{completion_bound, graph_stats, work_span, BoundParams};
use nabbit_ft::inject::{FaultPlan, Phase};
use nabbit_ft::scheduler::FtScheduler;
use nabbit_ft::{seq, TaskGraph};
use std::sync::Arc;

#[test]
fn bound_reduces_to_nabbit_without_failures() {
    // With N(A) = 1 the Theorem 2 expression must equal the plain NABBIT
    // bound's value (same terms with N = 1) — evaluate both at several P.
    let app = Lu::new(AppConfig::new(96, 16));
    let stats = graph_stats(&app);
    let (t1, tinf) = work_span(&app, |_| 1.0, |_| 1.0);
    for p in [1usize, 2, 8, 44] {
        let params = BoundParams {
            p,
            epsilon: 0.01,
            n_max: 1.0,
        };
        let b = completion_bound(&stats, t1, tinf, &params);
        // Recompute the NABBIT form manually.
        let pf = p as f64;
        let d = stats.max_degree() as f64;
        let m = stats.critical_path as f64;
        let l = (stats.edges as f64 / pf + m) * d.min(pf);
        let nabbit = t1 / pf + tinf + (pf / 0.01).log2() + m * d + l;
        assert!((b - nabbit).abs() < 1e-9, "P={p}: {b} vs {nabbit}");
    }
}

#[test]
fn bound_grows_with_failures() {
    let app = Lu::new(AppConfig::new(96, 16));
    let stats = graph_stats(&app);
    let (t1_clean, tinf_clean) = work_span(&app, |_| 1.0, |_| 1.0);
    // Double every N(A): both T1 and T∞ double, and the N-terms double.
    let (t1_faulty, tinf_faulty) = work_span(&app, |_| 1.0, |_| 2.0);
    assert!((t1_faulty - 2.0 * t1_clean).abs() < 1e-6);
    assert!((tinf_faulty - 2.0 * tinf_clean).abs() < 1e-6);
    let params = |n: f64| BoundParams {
        p: 4,
        epsilon: 0.01,
        n_max: n,
    };
    let b_clean = completion_bound(&stats, t1_clean, tinf_clean, &params(1.0));
    let b_faulty = completion_bound(&stats, t1_faulty, tinf_faulty, &params(2.0));
    assert!(b_faulty > b_clean);
    assert!(
        b_faulty < 2.5 * b_clean,
        "a-posteriori bound scales ~linearly in N: {b_faulty} vs {b_clean}"
    );
}

#[test]
fn measured_n_matches_reported_reexecutions() {
    // The empirical N(A) recorded by the scheduler is consistent with the
    // run report: Σ (N(A) − 1) = re_executions, max N(A) = max field.
    let app = Arc::new(Lu::new(AppConfig::new(96, 16)));
    let keys = app.all_tasks();
    let pool = Pool::new(PoolConfig::with_threads(4));
    let plan = Arc::new(FaultPlan::sample(&keys, 12, Phase::AfterCompute, 31));
    let sched = FtScheduler::with_plan(Arc::clone(&app) as Arc<dyn TaskGraph>, plan);
    let report = sched.run(&pool);
    assert!(report.sink_completed);
    let counts = sched.exec_counts();
    let total_reexec: u64 = counts.iter().map(|&(_, n)| n - 1).sum();
    let max_n = counts.iter().map(|&(_, n)| n).max().unwrap();
    assert_eq!(total_reexec, report.re_executions);
    assert_eq!(max_n, report.max_executions_one_task);
    assert_eq!(counts.len() as u64, report.distinct_tasks_executed);
}

#[test]
fn work_span_accounts_observed_time_at_p1() {
    // At P = 1 with per-task costs from a sequential run, T1 must predict
    // the single-worker FT time within a small constant factor.
    let cfg = AppConfig::new(96, 16);
    let app = Arc::new(Lu::new(cfg));
    let t_seq = {
        let t = std::time::Instant::now();
        seq::run(app.as_ref()).unwrap();
        t.elapsed().as_secs_f64()
    };
    let stats = graph_stats(app.as_ref());
    let per_task = t_seq / stats.tasks as f64;
    // T1 in seconds: compute work at per-task cost, notify scans at a
    // ~100ns synchronization cost (work_span's raw form counts the scan in
    // unit operations, which would swamp second-valued costs).
    const SYNC: f64 = 100e-9;
    let t1: f64 = seq::discover(app.as_ref())
        .into_iter()
        .map(|k| per_task + app.successors(k).len() as f64 * SYNC)
        .sum();

    let app2 = Arc::new(Lu::new(cfg));
    let pool = Pool::new(PoolConfig::with_threads(1));
    let report = FtScheduler::new(Arc::clone(&app2) as Arc<dyn TaskGraph>).run(&pool);
    assert!(report.sink_completed);
    let measured = report.elapsed.as_secs_f64();
    // T1 slightly overestimates (counts notify scans at full task cost) and
    // the runtime adds scheduling overhead; demand agreement within 4x both
    // ways — this is a units/shape check, not a microbenchmark.
    assert!(
        measured < 4.0 * t1 && t1 < 4.0 * measured,
        "T1 {t1:.4}s vs measured {measured:.4}s"
    );
}

#[test]
fn critical_path_lower_bounds_any_execution() {
    // T∞ with unit cost = critical path in tasks; the FT scheduler cannot
    // execute fewer "levels" than that: total computes >= critical path.
    let app = Arc::new(Lu::new(AppConfig::new(64, 16)));
    let stats = graph_stats(app.as_ref());
    let pool = Pool::new(PoolConfig::with_threads(4));
    let report = FtScheduler::new(Arc::clone(&app) as Arc<dyn TaskGraph>).run(&pool);
    assert!(report.computes as usize >= stats.critical_path);
    let (_, tinf) = work_span(app.as_ref(), |_| 1.0, |_| 1.0);
    assert_eq!(tinf as usize, stats.critical_path);
}
