//! Quickstart: define a small task graph, run it fault-free on the
//! fault-tolerant scheduler, and inspect the run report.
//!
//! The graph is the paper's Figure 1: `A → {B, C-via-B…}`, concretely
//!
//! ```text
//!     A ──> B ──> C ──> E      (E is the sink)
//!     │      └──> D ─────┘
//!     └────────────┘
//! ```
//!
//! Run with: `cargo run --example quickstart`

use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::FtScheduler;
use parking_lot::Mutex;
use std::sync::Arc;

const A: Key = 0;
const B: Key = 1;
const C: Key = 2;
const D: Key = 3;
const E: Key = 4;

struct Figure1 {
    log: Mutex<Vec<&'static str>>,
}

impl Figure1 {
    fn name(k: Key) -> &'static str {
        ["A", "B", "C", "D", "E"][k as usize]
    }
}

impl TaskGraph for Figure1 {
    fn sink(&self) -> Key {
        E
    }

    // The paper's Figure 1 dependences: A → B, A → D; B → C, B → D;
    // C → E, D → E.
    fn predecessors(&self, k: Key) -> Vec<Key> {
        match k {
            A => vec![],
            B => vec![A],
            C => vec![B],
            D => vec![A, B],
            E => vec![C, D],
            _ => unreachable!(),
        }
    }

    fn successors(&self, k: Key) -> Vec<Key> {
        match k {
            A => vec![B, D],
            B => vec![C, D],
            C => vec![E],
            D => vec![E],
            E => vec![],
            _ => unreachable!(),
        }
    }

    fn compute(&self, k: Key, ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        println!(
            "  compute {} (life {}, recovery: {}, worker: {:?})",
            Self::name(k),
            ctx.life,
            ctx.is_recovery,
            ctx.worker
        );
        self.log.lock().push(Self::name(k));
        Ok(())
    }
}

fn main() {
    let graph = Arc::new(Figure1 {
        log: Mutex::new(Vec::new()),
    });
    let pool = Pool::new(PoolConfig::with_threads(2));

    println!("running the Figure 1 task graph on 2 workers:");
    let scheduler = FtScheduler::new(Arc::clone(&graph) as _);
    let report = scheduler.run(&pool);

    println!("\nexecution order: {:?}", graph.log.lock());
    println!("report: {}", report.summary());
    assert!(report.sink_completed);
    assert_eq!(report.computes, 5);

    // Graph statistics, as the analysis module computes them for Table I.
    let stats = nabbit_ft::analysis::graph_stats(graph.as_ref());
    println!(
        "graph: {} tasks, {} dependences, critical path {} tasks, max degree {}",
        stats.tasks,
        stats.edges,
        stats.critical_path,
        stats.max_degree()
    );
}
