//! Fixture-based self-tests: each bad fixture must fail with exactly its
//! rule ID at the expected span, each good fixture must pass, and a waiver
//! comment must suppress (while staying reported as a waiver).

use ft_lint::{lint_file, Report};
use std::path::Path;

/// Lint one fixture file. `claimed` controls whether the fixture is listed
/// in the (synthetic) loom-coverage manifest, so L4 only fires when a test
/// wants it to.
fn lint_fixture(name: &str, ordering: bool, hot: bool, claimed: bool) -> Report {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let manifest = if claimed {
        vec![name.to_string()]
    } else {
        Vec::new()
    };
    let mut report = Report::default();
    lint_file(name, &src, ordering, hot, &manifest, &mut report);
    report
}

#[test]
fn bad_l1_missing_safety() {
    let r = lint_fixture("bad/l1_missing_safety.rs", false, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L1");
    assert_eq!(v.file, "bad/l1_missing_safety.rs");
    assert_eq!(v.line, 5, "span points at the unsafe block");
    assert!(r.waivers.is_empty());
}

#[test]
fn bad_l2_untagged_ordering() {
    let r = lint_fixture("bad/l2_untagged_ordering.rs", true, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L2");
    assert_eq!(v.line, 6, "span points at the untagged store");
    assert!(v.message.contains("Ordering::Release"));
}

#[test]
fn bad_l3_direct_atomic_import() {
    let r = lint_fixture("bad/l3_direct_atomic_import.rs", false, false, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L3");
    assert_eq!(v.line, 3, "span points at the import");
}

#[test]
fn bad_l4_unclaimed_atomics() {
    let r = lint_fixture("bad/l4_unclaimed_atomics.rs", false, false, false);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L4");
    assert!(v.message.contains("LOOM_COVERAGE"));
    // The same file claimed in the manifest is clean.
    let r = lint_fixture("bad/l4_unclaimed_atomics.rs", false, false, true);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn bad_l5_unwrap_in_hot_path() {
    let r = lint_fixture("bad/l5_unwrap_in_hot_path.rs", false, true, true);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L5");
    assert_eq!(v.line, 4, "span points at the unwrap call");
    // Outside the hot-path dirs the same code is fine.
    let r = lint_fixture("bad/l5_unwrap_in_hot_path.rs", false, false, true);
    assert!(r.violations.is_empty());
}

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good/l1_safety_comment.rs",
        "good/l2_ord_tags.rs",
        "good/l3_facade_import.rs",
    ] {
        let r = lint_fixture(name, true, true, true);
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(r.waivers.is_empty(), "{name}: {:?}", r.waivers);
    }
}

#[test]
fn waiver_suppresses_but_stays_reported() {
    let r = lint_fixture("good/l5_waived_unwrap.rs", false, true, true);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waivers.len(), 1);
    let w = &r.waivers[0];
    assert_eq!(w.rule, "L5");
    assert_eq!(w.line, 7, "span points at the waived unwrap");
    assert!(w.reason.contains("programming error") || !w.reason.is_empty());
}

#[test]
fn json_report_round_trips_rule_ids() {
    let r = lint_fixture("bad/l1_missing_safety.rs", false, false, true);
    let json = r.render_json();
    assert!(json.contains("\"rule\": \"L1\""));
    assert!(json.contains("\"file\": \"bad/l1_missing_safety.rs\""));
    assert!(json.contains("\"line\": 5"));
}

// ---------------------------------------------------------------------------
// PR 10: protocol-aware rules (L6–L9)
// ---------------------------------------------------------------------------

use ft_lint::manifest::{protocol_fingerprint, LoomManifest, Protocols};
use ft_lint::{global_pass, FileScan, GlobalInputs, WorkspaceScan};

/// Like [`lint_fixture`] but also returns the cross-file scan, for tests
/// that drive [`global_pass`] over synthetic manifests.
fn scan_fixture(name: &str, ordering: bool, hot: bool) -> (Report, FileScan) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"));
    let manifest = vec![name.to_string()];
    let mut report = Report::default();
    let scan = ft_lint::lint_file(name, &src, ordering, hot, &manifest, &mut report);
    (report, scan)
}

/// Synthesize [`GlobalInputs`] from manifest/doc strings and a read map.
fn run_global(
    scan: &WorkspaceScan,
    protocols: &str,
    loom: &str,
    algorithm: Option<&str>,
    files: &[(&str, &str)],
) -> Report {
    let protocols = Protocols::parse(protocols);
    let loom = LoomManifest::parse(loom);
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let read = move |rel: &str| -> Option<String> {
        files.iter().find(|(k, _)| k == rel).map(|(_, v)| v.clone())
    };
    let mut report = Report::default();
    global_pass(
        scan,
        &GlobalInputs {
            protocols: &protocols,
            protocols_rel: "docs/PROTOCOLS.toml",
            loom: &loom,
            loom_rel: "docs/LOOM_COVERAGE.toml",
            algorithm_src: algorithm,
            read: &read,
        },
        &mut report,
    );
    report.sort();
    report
}

#[test]
fn bad_l6_untagged_fence() {
    let (r, scan) = scan_fixture("bad/l6_untagged_fence.rs", false, false);
    assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
    let v = &r.violations[0];
    assert_eq!(v.rule, "L6");
    assert_eq!(v.line, 6, "span points at the fence call");
    assert!(v.message.contains("sc:"), "{}", v.message);
    // An untagged fence is reported locally, not collected for pairing.
    assert!(scan.fences.is_empty());
}

#[test]
fn good_l6_paired_fences_are_clean() {
    let (r, scan) = scan_fixture("good/l6_paired_fences.rs", false, false);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(scan.fences.len(), 2);

    let mut ws = WorkspaceScan::default();
    ws.add("good/l6_paired_fences.rs", scan);
    let protocols = r#"
[[protocol]]
name = "handshake"
anchor = "handshake"
loom = []
fields = []
notes = "fixture protocol"
"#;
    let r = run_global(
        &ws,
        protocols,
        "",
        Some("## Handshake <a id=\"handshake\"></a>"),
        &[],
    );
    assert!(r.violations.is_empty(), "{}", r.render_human());
}

#[test]
fn bad_l6_unpaired_and_undeclared_protocols() {
    let (_, scan) = scan_fixture("good/l6_paired_fences.rs", false, false);
    // Keep only the registrant side: the protocol loses its partner.
    let mut lone = scan.clone();
    lone.fences.truncate(1);
    let mut ws = WorkspaceScan::default();
    ws.add("good/l6_paired_fences.rs", lone);

    let declared = r#"
[[protocol]]
name = "handshake"
anchor = "handshake"
loom = []
fields = []
notes = "fixture protocol"
"#;
    let r = run_global(&ws, declared, "", Some("<a id=\"handshake\">"), &[]);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    assert_eq!(r.violations[0].rule, "L6");
    assert!(r.violations[0].message.contains("unpaired"));

    // Same scan against a manifest that never declares the protocol.
    let mut ws = WorkspaceScan::default();
    ws.add("good/l6_paired_fences.rs", scan);
    let r = run_global(&ws, "", "", None, &[]);
    assert_eq!(r.violations.len(), 2, "{}", r.render_human());
    assert!(r
        .violations
        .iter()
        .all(|v| v.rule == "L6" && v.message.contains("not declared")));
}

#[test]
fn bad_l7_unclaimed_field_and_dangling_claim() {
    let (r, scan) = scan_fixture("bad/l7_unclaimed_field.rs", false, false);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(scan.fields.len(), 1);
    assert_eq!(
        scan.fields[0].key,
        "bad/l7_unclaimed_field.rs::Gate::in_flight"
    );

    // No protocol claims the field: unclaimed.
    let mut ws = WorkspaceScan::default();
    ws.add("bad/l7_unclaimed_field.rs", scan.clone());
    let r = run_global(&ws, "", "", None, &[]);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    let v = &r.violations[0];
    assert_eq!(v.rule, "L7");
    assert_eq!(v.file, "bad/l7_unclaimed_field.rs");
    assert_eq!(v.line, 7, "span points at the field declaration");
    assert!(v.message.contains("not claimed"));

    // A claim for a field nobody declares: dangling.
    let protocols = r#"
[[protocol]]
name = "gate"
anchor = "gate"
loom = []
fields = [
    "bad/l7_unclaimed_field.rs::Gate::in_flight",
    "bad/l7_unclaimed_field.rs::Gate::ghost",
]
notes = "fixture protocol"
"#;
    let mut ws = WorkspaceScan::default();
    ws.add("bad/l7_unclaimed_field.rs", scan);
    let r = run_global(&ws, protocols, "", Some("<a id=\"gate\">"), &[]);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    let v = &r.violations[0];
    assert_eq!(v.rule, "L7");
    assert_eq!(v.file, "docs/PROTOCOLS.toml");
    assert!(v.message.contains("dangling claim"));
    assert!(v.message.contains("Gate::ghost"));
}

#[test]
fn bad_l7_anchor_loom_and_notes_checks() {
    let ws = WorkspaceScan::default();
    let protocols = r#"
[[protocol]]
name = "ghost"
anchor = "missing-anchor"
loom = ["crates/nowhere/tests/loom_ghost.rs"]
fields = []
notes = "fixture protocol"

[[protocol]]
name = "silent"
anchor = "present"
loom = []
fields = []
"#;
    let r = run_global(&ws, protocols, "", Some("<a id=\"present\">"), &[]);
    let msgs: Vec<&str> = r.violations.iter().map(|v| v.message.as_str()).collect();
    assert_eq!(r.violations.len(), 3, "{}", r.render_human());
    assert!(r.violations.iter().all(|v| v.rule == "L7"));
    assert!(msgs.iter().any(|m| m.contains("anchor `missing-anchor`")));
    assert!(msgs.iter().any(|m| m.contains("does not exist")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("no loom suite and no notes")));
}

#[test]
fn l8_fingerprint_freshness() {
    let src = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/good/l8_claimed_source.rs"),
    )
    .expect("fixture readable");
    let fresh = protocol_fingerprint(&src);
    let files = [("good/l8_claimed_source.rs", src.as_str())];
    let ws = WorkspaceScan::default();

    // Fresh fingerprint: clean.
    let loom = format!(
        "[[entry]]\npath = \"good/l8_claimed_source.rs\"\nfingerprint = \"{fresh}\"\nmodels = []\nnotes = \"fixture\"\n"
    );
    let r = run_global(&ws, "", &loom, None, &files);
    assert!(r.violations.is_empty(), "{}", r.render_human());

    // Stale fingerprint: flagged, pointing at the fingerprint line.
    let loom = "[[entry]]\npath = \"good/l8_claimed_source.rs\"\nfingerprint = \"0000000000000000\"\nmodels = []\nnotes = \"fixture\"\n";
    let r = run_global(&ws, "", loom, None, &files);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    let v = &r.violations[0];
    assert_eq!(v.rule, "L8");
    assert_eq!(v.file, "docs/LOOM_COVERAGE.toml");
    assert_eq!(v.line, 3, "span points at the fingerprint line");
    assert!(v.message.contains("stale fingerprint"));
    assert!(v.message.contains(&fresh));

    // Missing fingerprint: flagged.
    let loom =
        "[[entry]]\npath = \"good/l8_claimed_source.rs\"\nmodels = []\nnotes = \"fixture\"\n";
    let r = run_global(&ws, "", loom, None, &files);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    assert_eq!(r.violations[0].rule, "L8");
    assert!(r.violations[0].message.contains("--restamp"));

    // Claimed file vanished: flagged.
    let loom = "[[entry]]\npath = \"good/gone.rs\"\nfingerprint = \"0000000000000000\"\nmodels = []\nnotes = \"fixture\"\n";
    let r = run_global(&ws, "", loom, None, &files);
    assert_eq!(r.violations.len(), 1, "{}", r.render_human());
    assert_eq!(r.violations[0].rule, "L8");
    assert!(r.violations[0].message.contains("does not exist"));
}

#[test]
fn bad_l9_impure_hot_path() {
    let r = lint_fixture("bad/l9_impure_hot_path.rs", false, false, true);
    assert_eq!(r.violations.len(), 3, "{:?}", r.violations);
    assert!(r.violations.iter().all(|v| v.rule == "L9"));
    let lines: Vec<usize> = r.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, vec![8, 9, 10], "Mutex type, .lock(), Box::new");
    // The vec! outside the region is not flagged.
    assert!(r.violations.iter().all(|v| v.line != 4));
}

#[test]
fn good_l9_pure_hot_path_with_waiver() {
    let r = lint_fixture("good/l9_pure_hot_path.rs", false, false, true);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.waivers.len(), 1, "{:?}", r.waivers);
    let w = &r.waivers[0];
    assert_eq!(w.rule, "L9");
    assert_eq!(w.line, 13, "span points at the waived .to_vec()");
    assert!(w.reason.contains("diagnostics-only"));
}

#[test]
fn json_output_is_versioned_and_sorted() {
    let mut r = lint_fixture("bad/l9_impure_hot_path.rs", false, false, true);
    r.sort();
    let json = r.render_json();
    assert!(
        json.trim_start().starts_with("{\n  \"schema_version\": 2,"),
        "schema_version leads the document:\n{json}"
    );
    let lines: Vec<usize> = r.violations.iter().map(|v| v.line).collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}
