//! Good fixture for L6: both sides of a Dekker pair carry `sc:` tags
//! naming the same protocol.

use ft_sync::atomic::{fence, Ordering};

pub fn registrant_side() {
    // sc: handshake/registrant
    fence(Ordering::SeqCst);
}

pub fn drainer_side() {
    // sc: handshake/drainer
    fence(Ordering::SeqCst);
}
