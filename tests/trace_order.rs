//! Causality tests over the execution trace: the recorded event stream of
//! a faulted run must obey the orderings the Section IV guarantees imply.

use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::scheduler::FtScheduler;
use nabbit_ft::trace::{Event, Trace};
use std::collections::HashMap;
use std::sync::Arc;

struct Grid {
    n: i64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

fn traced_run(n: i64, plan: FaultPlan) -> (Arc<Trace>, nabbit_ft::RunReport) {
    let trace = Arc::new(Trace::new());
    let pool = Pool::new(PoolConfig::with_threads(4));
    let g = Arc::new(Grid { n });
    let sched = FtScheduler::with_plan_traced(g as _, Arc::new(plan), Arc::clone(&trace));
    let report = sched.run(&pool);
    assert!(report.sink_completed);
    (trace, report)
}

#[test]
fn fault_free_trace_is_clean() {
    let (trace, report) = traced_run(8, FaultPlan::none());
    let events = trace.events();
    let computed = events
        .iter()
        .filter(|e| matches!(e.event, Event::Computed { .. }))
        .count();
    let completed = events
        .iter()
        .filter(|e| matches!(e.event, Event::Completed { .. }))
        .count();
    let inserted = events
        .iter()
        .filter(|e| matches!(e.event, Event::Inserted { .. }))
        .count();
    assert_eq!(computed as u64, report.computes);
    assert_eq!(computed, 64);
    assert_eq!(completed, 64);
    assert_eq!(inserted, 64);
    assert!(!events
        .iter()
        .any(|e| matches!(e.event, Event::RecoveryStarted { .. } | Event::Reset { .. })));
}

#[test]
fn every_inserted_before_computed_before_completed() {
    let keys: Vec<Key> = (0..64).collect();
    let (trace, _) = traced_run(8, FaultPlan::sample(&keys, 16, Phase::AfterCompute, 5));
    for key in 0..64 {
        let evs = trace.events_for(key);
        let pos = |pred: &dyn Fn(&Event) -> bool| evs.iter().position(|e| pred(&e.event));
        let ins = pos(&|e| matches!(e, Event::Inserted { .. })).expect("inserted");
        let comp = pos(&|e| matches!(e, Event::Computed { .. })).expect("computed");
        let done = pos(&|e| matches!(e, Event::Completed { .. })).expect("completed");
        assert!(ins < comp, "task {key}: inserted before computed");
        assert!(comp < done, "task {key}: computed before completed");
    }
}

#[test]
fn recovery_lives_strictly_increase() {
    let sites = (0..64)
        .step_by(5)
        .map(|k| FaultSite {
            key: k,
            phase: Phase::AfterCompute,
            fires: 3,
        })
        .collect::<Vec<_>>();
    let (trace, report) = traced_run(8, FaultPlan::new(sites));
    assert!(report.recoveries > 0);
    let mut last_life: HashMap<Key, u64> = HashMap::new();
    for e in trace.events() {
        if let Event::RecoveryStarted { key, new_life } = e.event {
            let prev = last_life.insert(key, new_life).unwrap_or(1);
            assert!(
                new_life > prev,
                "recovery lives for {key} must strictly increase: {prev} -> {new_life}"
            );
        }
    }
}

#[test]
fn injection_precedes_recovery_of_same_task() {
    let keys: Vec<Key> = (0..64).collect();
    let (trace, _) = traced_run(8, FaultPlan::sample(&keys, 20, Phase::AfterCompute, 9));
    let events = trace.events();
    for (i, e) in events.iter().enumerate() {
        if let Event::RecoveryStarted { key, .. } = e.event {
            let injected_before = events[..i]
                .iter()
                .any(|p| matches!(p.event, Event::Injected { key: k, .. } if k == key));
            assert!(
                injected_before,
                "recovery of {key} must follow its injection"
            );
        }
    }
}

#[test]
fn after_compute_fault_computes_at_least_twice() {
    let (trace, _) = traced_run(8, FaultPlan::single(27, Phase::AfterCompute));
    let computes: Vec<u64> = trace
        .events_for(27)
        .iter()
        .filter_map(|e| match e.event {
            Event::Computed { life, .. } => Some(life),
            _ => None,
        })
        .collect();
    assert!(
        computes.len() >= 2,
        "failed task computes in at least two incarnations: {computes:?}"
    );
    assert_eq!(computes[0], 1, "first compute is the original incarnation");
    assert!(
        computes.last().copied().unwrap() >= 2,
        "final successful compute is a recovery incarnation"
    );
}

#[test]
fn suppressed_recoveries_recorded_when_contended() {
    // Many faults + many threads: at least the counts must line up between
    // trace and report.
    let keys: Vec<Key> = (0..144).collect();
    let (trace, report) = traced_run(12, FaultPlan::sample(&keys, 64, Phase::AfterCompute, 3));
    let started = trace
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::RecoveryStarted { .. }))
        .count() as u64;
    let suppressed = trace
        .events()
        .iter()
        .filter(|e| matches!(e.event, Event::RecoverySuppressed { .. }))
        .count() as u64;
    assert_eq!(started, report.recoveries);
    assert_eq!(suppressed, report.recoveries_suppressed);
}
