//! Allocation regression tests for the hot paths.
//!
//! Since PR 8 the traversal hot path is *allocation-free* apart from the
//! task map's one value box per insert: descriptors live in the engine's
//! epoch arena, spawn closures ride inline in the 64-byte `Job` cell,
//! predecessor/notify/bit-vector small buffers are inlined, and the
//! notify drain is indexed instead of copied. These tests pin that — a
//! single reintroduced per-task allocation (a pred-list clone, a spawn
//! box, a notify `to_vec`) moves the marginal count by ≥ 1.0 and fails.
//!
//! Method: run the baseline and FT schedulers on wavefront grids of two
//! sizes under the deterministic single-threaded `ft-det` executor and a
//! counting global allocator. The *marginal* allocations per task between
//! the two sizes cancel all fixed setup costs (shard tables sized by
//! `available_parallelism`, pool state, …), and determinism makes the
//! count exactly reproducible, so a pinned per-task budget is a stable
//! assertion rather than a flaky one. The multithreaded pool variant
//! pins the scheduler-free spawn/steal machinery at exactly **zero**
//! steady-state allocations.

use ft_det::DetPool;
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Wavefront grid with an allocation-free compute, so every counted
/// allocation belongs to the traversal itself.
struct Grid {
    n: i64,
}

impl TaskGraph for Grid {
    fn sink(&self) -> Key {
        self.n * self.n - 1
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut p = Vec::new();
        if i > 0 {
            p.push((i - 1) * self.n + j);
        }
        if j > 0 {
            p.push(i * self.n + (j - 1));
        }
        p
    }
    fn predecessors_into(&self, k: Key, out: &mut Vec<Key>) {
        // Fill the schedulers' reusable scratch directly: descriptor
        // creation pays zero allocations for the predecessor list.
        out.clear();
        let (i, j) = (k / self.n, k % self.n);
        if i > 0 {
            out.push((i - 1) * self.n + j);
        }
        if j > 0 {
            out.push(i * self.n + (j - 1));
        }
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        let (i, j) = (k / self.n, k % self.n);
        let mut s = Vec::new();
        if i + 1 < self.n {
            s.push((i + 1) * self.n + j);
        }
        if j + 1 < self.n {
            s.push(i * self.n + (j + 1));
        }
        s
    }
    fn out_degree(&self, k: Key) -> usize {
        // Counted directly: descriptor creation sizes its notify cells
        // without materializing the successor list.
        let (i, j) = (k / self.n, k % self.n);
        usize::from(i + 1 < self.n) + usize::from(j + 1 < self.n)
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

/// Serializes the tests in this binary: the counting allocator is global,
/// so a concurrently running test would pollute a counting window.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed) - before
}

fn run_baseline(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = BaselineScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

fn run_ft(n: i64) -> u64 {
    count_allocs(|| {
        let pool = DetPool::new(7);
        let g: Arc<dyn TaskGraph> = Arc::new(Grid { n });
        let r = FtScheduler::new(g).run(&pool);
        assert!(r.sink_completed);
    })
}

/// Marginal allocations per task between a 16×16 and a 32×32 grid.
#[cfg_attr(feature = "locked_notify", allow(dead_code))]
fn marginal_per_task(run: fn(i64) -> u64) -> f64 {
    let small = run(16);
    let large = run(32);
    assert!(large > small);
    (large - small) as f64 / (32.0 * 32.0 - 16.0 * 16.0)
}

#[test]
fn traversal_allocations_are_deterministic_and_bounded() {
    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Warm-up runs at *every measured size* so one-time lazy init (TLS,
    // parker state, allocator size-class setup, …) is paid before anything
    // is counted. A single small warm-up is not enough: the very first run
    // at a given size occasionally pays a couple of extra process-global
    // allocations, which tripped the determinism assertion below.
    for n in [16, 32] {
        run_baseline(n);
        run_ft(n);
    }

    // Determinism: identical (graph, seed) ⇒ identical allocation counts.
    assert_eq!(
        run_baseline(16),
        run_baseline(16),
        "baseline not deterministic"
    );
    assert_eq!(run_ft(16), run_ft(16), "ft not deterministic");

    // Per-task budget, re-pinned for PR 9. The PR-8 arena/inline-job
    // rework (epoch slab descriptors, inline 64-byte spawn cells,
    // PredList/bitvec small-buffer inlining, scratch-filled predecessor
    // lists) left the task map's value box as the only per-task
    // allocation, and the PR-9 lock-free notify cells keep it that way:
    // for out-degree ≤ INLINE_KEYS the cells are fully inline (no mutex,
    // no list, no spill), and the drain is a slot scan, not a copy.
    // Measured: baseline = 1.0273 allocs/task, FT = 1.0273 (the ~0.03 is
    // arena chunks at one per ~300 descriptors plus det-queue doubling).
    // Any new per-task allocation costs ≥ +1.0; 1.15 pins the hot path at
    // exactly one allocation per task with chunk-granularity headroom.
    // The `locked_notify` ablation deliberately reintroduces a per-task
    // allocation (the mutexed notify list's Vec), so the one-alloc budget
    // only holds for the real configuration.
    #[cfg(not(feature = "locked_notify"))]
    {
        let base = marginal_per_task(run_baseline);
        let ft = marginal_per_task(run_ft);
        assert!(
            base < 1.15,
            "baseline traversal allocates {base:.2}/task — hot-path allocation crept in"
        );
        assert!(
            ft < 1.15,
            "ft traversal allocates {ft:.2}/task — hot-path allocation crept in"
        );
    }
}

/// Deterministic fan-out-heavy layered random DAG: `layers × width` nodes
/// plus a sink over the last layer; an edge links layer-(l−1) node `i` to
/// layer-l node `j` when a hash of `(l, i, j)` clears a threshold (~50%
/// density), so mean fan-in/fan-out is `width / 2` — far past the inline
/// capacity of every descriptor small-buffer. Predecessors and successors
/// derive from the same hash, so the graph is consistent and needs no
/// stored adjacency.
struct FanDag {
    layers: i64,
    width: i64,
}

impl FanDag {
    fn edge(&self, l: i64, i: i64, j: i64) -> bool {
        // splitmix-style avalanche, allocation-free and deterministic.
        let mut x = (l as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((j as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x & 1 == 0
    }
    fn node(&self, l: i64, i: i64) -> Key {
        l * self.width + i
    }
}

impl TaskGraph for FanDag {
    fn sink(&self) -> Key {
        self.layers * self.width
    }
    fn predecessors(&self, k: Key) -> Vec<Key> {
        let mut p = Vec::new();
        self.predecessors_into(k, &mut p);
        p
    }
    fn predecessors_into(&self, k: Key, out: &mut Vec<Key>) {
        out.clear();
        if k == self.sink() {
            out.extend((0..self.width).map(|i| self.node(self.layers - 1, i)));
            return;
        }
        let (l, j) = (k / self.width, k % self.width);
        if l == 0 {
            return;
        }
        out.extend(
            (0..self.width)
                .filter(|&i| self.edge(l, i, j))
                .map(|i| self.node(l - 1, i)),
        );
    }
    fn successors(&self, k: Key) -> Vec<Key> {
        if k == self.sink() {
            return Vec::new();
        }
        let (l, i) = (k / self.width, k % self.width);
        if l == self.layers - 1 {
            return vec![self.sink()];
        }
        (0..self.width)
            .filter(|&j| self.edge(l + 1, i, j))
            .map(|j| self.node(l + 1, j))
            .collect()
    }
    fn out_degree(&self, k: Key) -> usize {
        if k == self.sink() {
            return 0;
        }
        let (l, i) = (k / self.width, k % self.width);
        if l == self.layers - 1 {
            return 1;
        }
        (0..self.width).filter(|&j| self.edge(l + 1, i, j)).count()
    }
    fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        Ok(())
    }
}

/// PR-9 satellite: the fan-out-heavy steady state. Wide nodes legitimately
/// spill their fixed-size small buffers (one `PredList` box past
/// `INLINE_KEYS` predecessors, one notify-cell spill box past
/// `INLINE_KEYS` successors), so the marginal budget here is the map's
/// value box plus those two — and **nothing else**: no per-edge
/// allocation, no notify-drain copy, no overflow segments (normal
/// operation never claims past the out-degree capacity).
#[test]
fn fanout_traversal_allocations_are_deterministic_and_bounded() {
    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let run_ft_dag = |layers: i64| -> u64 {
        count_allocs(|| {
            let pool = DetPool::new(11);
            let g: Arc<dyn TaskGraph> = Arc::new(FanDag { layers, width: 24 });
            let r = FtScheduler::new(g).run(&pool);
            assert!(r.sink_completed);
        })
    };
    for l in [4, 8] {
        run_ft_dag(l);
    }
    assert_eq!(run_ft_dag(4), run_ft_dag(4), "ft randdag not deterministic");
    let (small, large) = (run_ft_dag(4), run_ft_dag(8));
    let marginal = (large - small) as f64 / (4.0 * 24.0);
    // Map value box (1.0) + PredList spill (≤1.0) + notify spill (≤1.0)
    // + arena-chunk/queue-doubling drift. A per-*edge* allocation would
    // cost ≈ width/2 = +12/task, far past the budget.
    assert!(
        marginal < 3.5,
        "fan-out traversal allocates {marginal:.2}/task — \
         beyond map box + two wide-node spill buffers"
    );
}

/// The segmented injector must not allocate per push in steady state:
/// fully consumed blocks are reset and recycled through the one-slot block
/// cache, so sustained push/steal traffic reuses the same segments.
#[test]
fn injector_steady_state_allocates_nothing() {
    use ft_steal::injector::Injector;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let q: Injector<u64> = Injector::new();
    // Warm-up: enough laps that the block chain and recycle cache exist.
    for round in 0..10u64 {
        for i in 0..40 {
            q.push(round * 40 + i);
        }
        for i in 0..40 {
            assert_eq!(q.steal(), Some(round * 40 + i));
        }
    }
    // Steady state: thousands of pushes/steals crossing many block
    // boundaries — zero allocations.
    let allocs = count_allocs(|| {
        for round in 0..100u64 {
            for i in 0..40 {
                q.push(round * 40 + i);
            }
            for i in 0..40 {
                assert_eq!(q.steal(), Some(round * 40 + i));
            }
        }
    });
    assert_eq!(
        allocs, 0,
        "injector allocated {allocs} times in steady state — block recycling broke"
    );
}

/// Batch stealing must stay allocation-free too: `steal_batch_and_pop`
/// moves surplus items straight into the destination deque (no staging
/// buffer), and a warmed deque's ring buffer is reused across laps.
#[test]
fn injector_batch_steal_steady_state_allocates_nothing() {
    use ft_steal::deque::{deque, Worker};
    use ft_steal::injector::Injector;

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let q: Injector<u64> = Injector::new();
    let (w, _stealer): (Worker<u64>, _) = deque();
    let lap = |q: &Injector<u64>, w: &Worker<u64>| {
        for i in 0..40u64 {
            q.push(i);
        }
        let mut got = 0u64;
        while let Some(_v) = q.steal_batch_and_pop(w) {
            got += 1;
            while w.pop().is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 40);
    };
    // Warm-up: grow the deque ring and populate the block cache.
    for _ in 0..10 {
        lap(&q, &w);
    }
    let allocs = count_allocs(|| {
        for _ in 0..100 {
            lap(&q, &w);
        }
    });
    assert_eq!(
        allocs, 0,
        "batch steal allocated {allocs} times in steady state"
    );
}

/// Steady-state spawning on the *multithreaded* pool allocates nothing:
/// inline `Job` cells, recycled injector blocks, and warmed worker deques
/// mean a full execute/spawn/steal/quiesce round trip is allocation-free.
#[test]
fn pool_steady_state_allocates_nothing() {
    use ft_steal::pool::{Executor, Job, Pool, PoolConfig};

    let _serial = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = Pool::new(PoolConfig::with_threads(2));
    let hits = Arc::new(AtomicU64::new(0));

    // One round, two shapes. First the original mix: the root fans out 32
    // jobs through the injector; each fanned job spawns one child from
    // its worker (own-deque push), so the round exercises external
    // submission, batch stealing, worker-local push/pop and the
    // quiescence latch. Then a fan-out-heavy randdag-style burst (PR 9):
    // 8 wide nodes each spawning 6 children — the spawn profile of a
    // wide-layer random DAG's notify drain, where one completing task
    // makes many successors ready at once.
    let round = |pool: &Pool, hits: &Arc<AtomicU64>| {
        let h = Arc::clone(hits);
        pool.execute_job(Job::new(move |s| {
            for _ in 0..32 {
                let h2 = Arc::clone(&h);
                s.spawn(move |s| {
                    let h3 = Arc::clone(&h2);
                    s.spawn(move |_| {
                        h3.fetch_add(1, Ordering::Relaxed);
                    });
                    h2.fetch_add(1, Ordering::Relaxed);
                });
            }
        }));
        let h = Arc::clone(hits);
        pool.execute_job(Job::new(move |s| {
            for _ in 0..8 {
                let h2 = Arc::clone(&h);
                s.spawn(move |s| {
                    for _ in 0..6 {
                        let h3 = Arc::clone(&h2);
                        s.spawn(move |_| {
                            h3.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                    h2.fetch_add(1, Ordering::Relaxed);
                });
            }
        }));
    };

    // Warm-up: lets every worker grow its deque, fault in TLS, and fill
    // the injector's block cache. The injector index advances 32 slots
    // per round over 31-slot blocks, so the block-boundary phase cycles
    // with period 31 rounds; two full cycles guarantee every alignment
    // (hence the block-chain high-water mark) is reached before counting.
    for _ in 0..62 {
        round(&pool, &hits);
    }
    hits.store(0, Ordering::Relaxed);
    let rounds = 50u64;
    let allocs = count_allocs(|| {
        for _ in 0..rounds {
            round(&pool, &hits);
        }
    });
    // 32 parents + 32 children + 8 wide nodes + 48 fan-out children.
    assert_eq!(hits.load(Ordering::Relaxed), rounds * 120);
    assert_eq!(
        allocs, 0,
        "pool allocated {allocs} times across {rounds} warmed rounds — \
         the zero-allocation steady state regressed"
    );
}
