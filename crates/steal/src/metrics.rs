//! Per-worker scheduler counters.
//!
//! The experiment harness reports steals, executed jobs, and failed steal
//! attempts per run. Counters are owned by their worker (written with
//! `Relaxed` stores to a cache-line-padded slot) so the measurement itself
//! costs ~nothing on the hot path — the usual HPC rule that observability
//! must not perturb the observed system.

use ft_sync::atomic::{AtomicU64, Ordering};

/// Cache-line padding wrapper to avoid false sharing between workers'
/// counter blocks.
#[repr(align(128))]
pub struct CachePadded<T>(pub T);

impl<T: std::fmt::Debug> std::fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Counters for one worker thread.
#[derive(Default)]
pub struct WorkerMetrics {
    /// Jobs executed by this worker.
    pub executed: AtomicU64,
    /// Jobs pushed by this worker (local spawns).
    pub spawned: AtomicU64,
    /// Successful steals from another worker or the injector.
    pub steals: AtomicU64,
    /// Subset of `steals` that came from the shared injector (batch or
    /// single); distinguishes external-submission traffic from
    /// worker-to-worker stealing.
    pub injector_steals: AtomicU64,
    /// Steal attempts that found nothing.
    pub failed_steals: AtomicU64,
    /// Times this worker went to sleep.
    pub sleeps: AtomicU64,
}

impl std::fmt::Debug for WorkerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

impl WorkerMetrics {
    /// Add `1` to a counter (relaxed; the reader aggregates after quiesce).
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        // ord: Relaxed — pure statistics: each counter has one writer (its
        // worker) and is read only after the pool quiesces, which already
        // synchronizes via the CountLatch.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as a plain struct.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            // ord: Relaxed — read after quiesce; see `bump`.
            executed: self.executed.load(Ordering::Relaxed),
            spawned: self.spawned.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            injector_steals: self.injector_steals.load(Ordering::Relaxed),
            failed_steals: self.failed_steals.load(Ordering::Relaxed),
            sleeps: self.sleeps.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between experiment repetitions).
    pub fn reset(&self) {
        // ord: Relaxed — caller resets between runs, outside any
        // concurrent counting; see `bump`.
        self.executed.store(0, Ordering::Relaxed);
        self.spawned.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.injector_steals.store(0, Ordering::Relaxed);
        self.failed_steals.store(0, Ordering::Relaxed);
        self.sleeps.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs executed.
    pub executed: u64,
    /// Jobs spawned locally.
    pub spawned: u64,
    /// Successful steals.
    pub steals: u64,
    /// Subset of `steals` served by the shared injector.
    pub injector_steals: u64,
    /// Empty-handed steal attempts.
    pub failed_steals: u64,
    /// Park events.
    pub sleeps: u64,
}

impl MetricsSnapshot {
    /// Element-wise sum, for aggregating across workers.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            executed: self.executed + other.executed,
            spawned: self.spawned + other.spawned,
            steals: self.steals + other.steals,
            injector_steals: self.injector_steals + other.injector_steals,
            failed_steals: self.failed_steals + other.failed_steals,
            sleeps: self.sleeps + other.sleeps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let m = WorkerMetrics::default();
        WorkerMetrics::bump(&m.executed);
        WorkerMetrics::bump(&m.executed);
        WorkerMetrics::bump(&m.steals);
        let s = m.snapshot();
        assert_eq!(s.executed, 2);
        assert_eq!(s.steals, 1);
        assert_eq!(s.spawned, 0);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn merge_sums_fields() {
        let a = MetricsSnapshot {
            executed: 1,
            spawned: 2,
            steals: 3,
            injector_steals: 1,
            failed_steals: 4,
            sleeps: 5,
        };
        let b = MetricsSnapshot {
            executed: 10,
            spawned: 20,
            steals: 30,
            injector_steals: 10,
            failed_steals: 40,
            sleeps: 50,
        };
        let m = a.merge(&b);
        assert_eq!(m.executed, 11);
        assert_eq!(m.spawned, 22);
        assert_eq!(m.steals, 33);
        assert_eq!(m.injector_steals, 11);
        assert_eq!(m.failed_steals, 44);
        assert_eq!(m.sleeps, 55);
    }

    #[test]
    fn cache_padded_alignment() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 128);
    }
}
