//! Fault-injection campaigns (Section VI methodology).
//!
//! "To simulate faults, we a priori identify the tasks that would fail and
//! the point in their lifetimes where they would fail. When a fault is
//! injected, a flag is set to mark the fault, which is then observed by a
//! thread accessing that task."
//!
//! A [`FaultPlan`] is that a-priori identification: a set of task keys,
//! each with a lifecycle [`Phase`] and a fire budget (1 for the paper's
//! experiments; >1 exercises Guarantee 6 — failures during recovery are
//! recursively recovered). The fault-tolerant scheduler consults the plan
//! at each lifecycle point; a firing site poisons the task descriptor and
//! the task's output block versions.

use crate::graph::Key;
use ft_sync::atomic::{AtomicU64, Ordering};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// The point in a task's lifetime at which a planned fault fires
/// (Section VI, "Time": before compute, after compute, after notify).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Task has traversed its predecessors and is waiting to be scheduled;
    /// no computed work is lost.
    BeforeCompute,
    /// Task computed but has not yet notified successors; its computation
    /// is lost and must be redone.
    AfterCompute,
    /// Task finished notifying successors; the fault is observed only if a
    /// later consumer still needs this task's descriptor or data.
    AfterNotify,
}

/// One planned fault site.
#[derive(Debug, Clone, Copy)]
pub struct FaultSite {
    /// Task to fail.
    pub key: Key,
    /// Lifecycle point at which to fail it.
    pub phase: Phase,
    /// How many lifecycle passages fire (1 = fail once; k = also fail the
    /// first k−1 recovery incarnations, exercising recursive recovery).
    pub fires: u64,
}

impl FaultSite {
    /// A classic single-shot fault.
    pub fn once(key: Key, phase: Phase) -> Self {
        FaultSite {
            key,
            phase,
            fires: 1,
        }
    }
}

struct SiteState {
    phase: Phase,
    /// Original fire budget (immutable; lets the plan be re-serialized).
    budget: u64,
    remaining: AtomicU64,
    fired: AtomicU64,
}

/// An immutable set of planned fault sites with atomic fire bookkeeping.
#[derive(Default)]
pub struct FaultPlan {
    sites: HashMap<Key, SiteState>,
}

impl FaultPlan {
    /// A plan with no faults (the paper's "FT support, no failures" runs).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from explicit sites. At most one site per key (the
    /// paper injects at most one fault per task); later duplicates replace
    /// earlier ones.
    pub fn new(sites: impl IntoIterator<Item = FaultSite>) -> Self {
        let mut map = HashMap::new();
        for s in sites {
            map.insert(
                s.key,
                SiteState {
                    phase: s.phase,
                    budget: s.fires,
                    remaining: AtomicU64::new(s.fires),
                    fired: AtomicU64::new(0),
                },
            );
        }
        FaultPlan { sites: map }
    }

    /// Single-site convenience.
    pub fn single(key: Key, phase: Phase) -> Self {
        Self::new([FaultSite::once(key, phase)])
    }

    /// Sample `count` distinct keys from `candidates` (uniformly, seeded)
    /// and fail each once at `phase`. This is the paper's "randomly inject
    /// failures […] to effect the loss of a constant amount of work or a
    /// certain percentage of the total work".
    pub fn sample(candidates: &[Key], count: usize, phase: Phase, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut keys: Vec<Key> = candidates.to_vec();
        keys.shuffle(&mut rng);
        keys.truncate(count.min(keys.len()));
        Self::new(keys.into_iter().map(|k| FaultSite::once(k, phase)))
    }

    /// Consult the plan at a lifecycle point. Returns `true` exactly when a
    /// planned fault fires now (the caller then poisons the task).
    pub fn fire(&self, key: Key, phase: Phase) -> bool {
        let Some(site) = self.sites.get(&key) else {
            return false;
        };
        if site.phase != phase {
            return false;
        }
        // Atomically consume one fire if any remain.
        // ord: Relaxed read seeding the CAS loop; AcqRel on success so a
        // consumed budget is ordered against the fault it triggers, Relaxed
        // on failure/stat-bump — the budget is the only coupling and the
        // sabotage path never reads other shared state through it.
        let mut cur = site.remaining.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            // ord: AcqRel success — the consumed budget orders against
            // the fault it triggers; Relaxed failure — just reseed.
            match site.remaining.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // ord: Relaxed — statistics counter.
                    site.fired.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of planned sites.
    pub fn planned(&self) -> usize {
        self.sites.len()
    }

    /// The planned sites with their *original* fire budgets, sorted by key
    /// (deterministic order for failure reports and replay).
    pub fn sites(&self) -> Vec<FaultSite> {
        let mut v: Vec<FaultSite> = self
            .sites
            .iter()
            .map(|(&key, s)| FaultSite {
                key,
                phase: s.phase,
                fires: s.budget,
            })
            .collect();
        v.sort_unstable_by_key(|s| s.key);
        v
    }

    /// Total faults fired so far.
    pub fn fired(&self) -> u64 {
        self.sites
            .values()
            // ord: Relaxed — statistics read after the run quiesces.
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Keys of sites that never fired (diagnostics: e.g. after-notify sites
    /// whose task was never revisited are *expected* to fire but possibly
    /// never be observed; a site that did not fire means the task's
    /// lifecycle point was never reached).
    pub fn unfired_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self
            .sites
            .iter()
            // ord: Relaxed — diagnostics read after the run quiesces.
            .filter(|(_, s)| s.fired.load(Ordering::Relaxed) == 0)
            .map(|(&k, _)| k)
            .collect();
        v.sort_unstable();
        v
    }

    /// Reset all fire budgets to their original values — *not* supported;
    /// build a fresh plan per run instead. Present to document the
    /// single-use contract.
    pub fn is_exhausted(&self) -> bool {
        self.sites
            .values()
            // ord: Relaxed — diagnostics read after the run quiesces.
            .all(|s| s.remaining.load(Ordering::Relaxed) == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(!p.fire(1, Phase::BeforeCompute));
        assert_eq!(p.planned(), 0);
        assert_eq!(p.fired(), 0);
        assert!(p.is_exhausted());
    }

    #[test]
    fn single_fires_once_at_matching_phase() {
        let p = FaultPlan::single(5, Phase::AfterCompute);
        assert!(!p.fire(5, Phase::BeforeCompute), "wrong phase");
        assert!(!p.fire(4, Phase::AfterCompute), "wrong key");
        assert!(p.fire(5, Phase::AfterCompute));
        assert!(!p.fire(5, Phase::AfterCompute), "budget spent");
        assert_eq!(p.fired(), 1);
        assert!(p.is_exhausted());
    }

    #[test]
    fn multi_fire_site() {
        let p = FaultPlan::new([FaultSite {
            key: 1,
            phase: Phase::AfterCompute,
            fires: 3,
        }]);
        assert!(p.fire(1, Phase::AfterCompute));
        assert!(p.fire(1, Phase::AfterCompute));
        assert!(p.fire(1, Phase::AfterCompute));
        assert!(!p.fire(1, Phase::AfterCompute));
        assert_eq!(p.fired(), 3);
    }

    #[test]
    fn sample_is_deterministic_and_distinct() {
        let candidates: Vec<Key> = (0..100).collect();
        let a = FaultPlan::sample(&candidates, 10, Phase::AfterCompute, 42);
        let b = FaultPlan::sample(&candidates, 10, Phase::AfterCompute, 42);
        assert_eq!(a.planned(), 10);
        let mut ka = a.unfired_keys();
        let kb = b.unfired_keys();
        assert_eq!(ka, kb, "same seed, same sample");
        ka.dedup();
        assert_eq!(ka.len(), 10, "distinct keys");
        let c = FaultPlan::sample(&candidates, 10, Phase::AfterCompute, 43);
        assert_ne!(a.unfired_keys(), c.unfired_keys(), "different seed differs");
    }

    #[test]
    fn sample_count_clamped_to_candidates() {
        let p = FaultPlan::sample(&[1, 2, 3], 10, Phase::BeforeCompute, 0);
        assert_eq!(p.planned(), 3);
    }

    #[test]
    fn concurrent_fire_consumes_budget_exactly() {
        use ft_sync::atomic::AtomicUsize;
        let p = std::sync::Arc::new(FaultPlan::new([FaultSite {
            key: 7,
            phase: Phase::AfterCompute,
            fires: 100,
        }]));
        let hits = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let p = std::sync::Arc::clone(&p);
                let hits = std::sync::Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if p.fire(7, Phase::AfterCompute) {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(p.fired(), 100);
    }

    #[test]
    fn unfired_keys_tracks_observation() {
        let p = FaultPlan::new([
            FaultSite::once(1, Phase::AfterCompute),
            FaultSite::once(2, Phase::AfterCompute),
        ]);
        p.fire(1, Phase::AfterCompute);
        assert_eq!(p.unfired_keys(), vec![2]);
    }
}
