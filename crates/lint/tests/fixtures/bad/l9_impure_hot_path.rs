//! Bad fixture for L9: allocation and blocking inside a hot-path region.

pub fn cold_setup() -> Vec<u64> {
    vec![0; 16]
}

// ft-lint: hot-path begin(drain)
pub fn drain(q: &parking_lot::Mutex<Vec<u64>>) -> Option<u64> {
    let mut g = q.lock();
    let boxed = Box::new(g.pop());
    *boxed
}
// ft-lint: hot-path end(drain)
