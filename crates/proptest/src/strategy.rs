//! Strategies: composable deterministic samplers.
//!
//! A [`Strategy`] here is just "a way to draw a value from a seeded RNG";
//! the combinators (`prop_map`, `prop_flat_map`, unions, collections,
//! tuples, ranges) mirror real proptest's names so test code reads the
//! same.

use std::ops::Range;
use std::sync::Arc;

/// Deterministic per-case RNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from a case seed.
    pub fn new(seed: u64) -> TestRng {
        // splitmix64 the seed so 0/1/2… diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        TestRng {
            state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from a half-open `usize` range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() as usize) % (range.end - range.start)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A composable value generator.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred` (resamples; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.source.sample(rng);
        (self.f)(mid).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.reason
        );
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Construct the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.f64_unit()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights_loosely() {
        let u = crate::prop_oneof![
            9 => Just(1u32),
            1 => Just(2u32),
        ];
        let mut rng = TestRng::new(2);
        let ones = (0..1000).filter(|_| u.sample(&mut rng) == 1).count();
        assert!(ones > 700, "weight-9 arm drew only {ones}/1000");
    }

    #[test]
    fn flat_map_chains() {
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        let mut rng = TestRng::new(3);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn same_seed_same_values() {
        let s = crate::collection::vec(0u64..1000, 0..50);
        let a = s.sample(&mut TestRng::new(7));
        let b = s.sample(&mut TestRng::new(7));
        assert_eq!(a, b);
    }
}
