//! Epoch-tied slab allocation for task descriptors.
//!
//! [`Arena<T>`] is a typed, chunked bump allocator: values are written
//! into 64 KiB chunks claimed by an atomic offset bump, and the whole
//! arena — every chunk and every live value — is reclaimed **at once**
//! when the arena is dropped. The scheduler engine owns one arena per
//! graph instance (epoch): descriptors are allocated on the hot path with
//! one `fetch_add` instead of one `Box` each, handed around as [`ArenaRef`]
//! (a `Copy` pointer, no refcount traffic), and freed en masse when the
//! instance's epoch ends — after the once-only quiesce hook has fired and
//! the last `Arc<Engine>` clone (held by every in-flight job) drops. The
//! one-shot `Engine::run` path uses the same mechanism: the arena dies
//! with the engine when the run's caller drops it.
//!
//! # Protocol
//!
//! The arena has exactly two shared-state words: the `current` chunk
//! pointer and each chunk's `used` bump offset.
//!
//! * **Claim**: load `current` (Acquire), `fetch_add` the element size on
//!   its `used` offset. If the claimed range fits the chunk payload, the
//!   slot is exclusively owned — RMW atomicity alone partitions offsets —
//!   and the value is written in place.
//! * **Overflow**: a claimant that overshoots the payload installs a
//!   fresh chunk by CAS on `current` (Release, pairing with the Acquire
//!   claim load so the new chunk's header is visible before any bump on
//!   it), linking the old chunk through the header's `next` pointer.
//!   CAS losers free their speculative chunk and retry on the winner's.
//! * **Reclaim**: `Drop` takes `&mut self`, so every claimant has
//!   happens-before-ordered with the dropping thread through whatever
//!   handed it the `&Arena` (the engine's `Arc`). The chunk list is
//!   walked, live elements dropped, chunks freed.
//!
//! Publication of element *contents* to other threads is deliberately not
//! the arena's job: descriptors travel through the task map's seqlock or
//! the pool's queue protocols, which carry the necessary Release/Acquire
//! edges. The loom model in `crates/steal/tests/loom_arena.rs` checks the
//! claim/install handshake (no two claimants share a slot, installed
//! headers are visible, drop observes every committed element).

use ft_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::marker::PhantomData;
use std::mem::{align_of, size_of};
use std::ptr::NonNull;

/// Total bytes per chunk, header included.
pub const CHUNK_BYTES: usize = 64 * 1024;
/// Chunk alignment; also the upper bound on element alignment.
const CHUNK_ALIGN: usize = 64;
/// Bytes reserved at the start of each chunk for [`ChunkHeader`] (one
/// cache line, so the bump offset never false-shares with element data).
const HEADER_BYTES: usize = 64;
/// Usable element bytes per chunk.
const PAYLOAD_BYTES: usize = CHUNK_BYTES - HEADER_BYTES;

/// Per-chunk bookkeeping, stored in the chunk's first [`HEADER_BYTES`].
struct ChunkHeader {
    /// Previously-current chunk (intrusive list used by `Drop`/`owns`).
    /// Written once before the chunk is published, never changed after.
    next: AtomicPtr<u8>,
    /// Bump offset into the payload, in bytes. Monotone; may overshoot
    /// `PAYLOAD_BYTES` (claimants that overshoot install a new chunk).
    used: AtomicUsize,
}

/// A typed epoch arena. See the module docs for the protocol.
pub struct Arena<T> {
    /// Chunk currently receiving allocations; null until first use.
    current: AtomicPtr<u8>,
    _marker: PhantomData<T>,
}

impl<T> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("chunks", &self.chunks_allocated())
            .finish()
    }
}

// SAFETY: the arena owns its values; moving it to another thread moves
// them, which is sound exactly when `T: Send`.
unsafe impl<T: Send> Send for Arena<T> {}
// SAFETY: `&Arena` allows concurrent `alloc` (values arrive from any
// thread: `T: Send`) and hands out `&T` across threads via `ArenaRef`
// (`T: Sync`). The claim protocol gives each `alloc` an exclusive slot.
unsafe impl<T: Send + Sync> Sync for Arena<T> {}

/// Layout of one chunk.
fn chunk_layout() -> Layout {
    // Both values are compile-time constants; this cannot fail.
    Layout::from_size_align(CHUNK_BYTES, CHUNK_ALIGN)
        .unwrap_or_else(|_| unreachable!("constant chunk layout"))
}

/// Element stride: `size_of::<T>()` is always a multiple of
/// `align_of::<T>()`, so consecutive multiples of the stride are aligned.
fn stride<T>() -> usize {
    size_of::<T>()
}

/// Max elements per chunk.
fn chunk_capacity<T>() -> usize {
    PAYLOAD_BYTES / stride::<T>()
}

impl<T> Arena<T> {
    /// Create an empty arena. No memory is allocated until the first
    /// [`Arena::alloc`].
    pub fn new() -> Self {
        assert!(
            size_of::<T>() > 0,
            "Arena does not support zero-sized types"
        );
        assert!(
            size_of::<T>() <= PAYLOAD_BYTES,
            "element larger than a chunk payload"
        );
        assert!(
            align_of::<T>() <= CHUNK_ALIGN,
            "element alignment exceeds chunk alignment"
        );
        assert!(size_of::<ChunkHeader>() <= HEADER_BYTES);
        Arena {
            current: AtomicPtr::new(std::ptr::null_mut()),
            _marker: PhantomData,
        }
    }

    // ft-lint: hot-path begin(arena-alloc)

    /// Allocate `value` in the arena. The returned handle stays valid (and
    /// the value is not dropped) until the arena itself is dropped.
    pub fn alloc(&self, value: T) -> ArenaRef<T> {
        let slot = self.claim_slot();
        // SAFETY: `claim_slot` returns a properly aligned, in-payload slot
        // this call exclusively owns (disjoint `fetch_add` ranges).
        unsafe { std::ptr::write(slot, value) };
        // SAFETY: chunk pointers are non-null; `slot` points into one.
        let ptr = unsafe { NonNull::new_unchecked(slot) };
        ArenaRef { ptr }
    }

    /// Claim an exclusive, aligned slot for one element, installing chunks
    /// as needed.
    fn claim_slot(&self) -> *mut T {
        let sz = stride::<T>();
        loop {
            // ord: Acquire — pairs with the Release CAS in `install_chunk`
            // so the chunk header written before publication is visible.
            let cur = self.current.load(Ordering::Acquire);
            if !cur.is_null() {
                // SAFETY: a published chunk has a live header at its base
                // (written before the Release CAS we acquired above) and
                // is not freed until `Drop` (&mut self).
                let header = unsafe { &*cur.cast::<ChunkHeader>() };
                // ord: Relaxed — RMW atomicity alone partitions offsets
                // between claimants; element publication to other threads
                // happens through the task-map/queue protocols, and the
                // drop-side read of `used` is ordered by `&mut self`.
                let used = header.used.fetch_add(sz, Ordering::Relaxed);
                if used + sz <= PAYLOAD_BYTES {
                    // SAFETY: offset stays inside this chunk's payload.
                    return unsafe { cur.add(HEADER_BYTES + used).cast::<T>() };
                }
                // Chunk full (offset permanently overshot — harmless, the
                // drop-side element count saturates at capacity).
            }
            self.install_chunk(cur);
        }
    }

    // ft-lint: hot-path end(arena-alloc)

    /// Try to install a fresh chunk on top of `seen` (the `current` value
    /// this claimant just observed). Loses gracefully to racing installers.
    fn install_chunk(&self, seen: *mut u8) {
        let layout = chunk_layout();
        // SAFETY: `layout` has non-zero, 64-aligned constant size.
        let fresh = unsafe { alloc(layout) };
        if fresh.is_null() {
            handle_alloc_error(layout);
        }
        // SAFETY: `fresh` is exclusively ours and large enough for the
        // header; written before publication, so the Release CAS below
        // makes it visible to every Acquire load of `current`.
        unsafe {
            std::ptr::write(
                fresh.cast::<ChunkHeader>(),
                ChunkHeader {
                    next: AtomicPtr::new(seen),
                    used: AtomicUsize::new(0),
                },
            );
        }
        // ord: Release on success — publishes the header write above to
        // claimants' Acquire loads; Relaxed on failure — the loser frees
        // its chunk and re-reads `current` with Acquire in `claim_slot`.
        if self
            .current
            .compare_exchange(seen, fresh, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            // SAFETY: CAS failed, so `fresh` was never published; we still
            // own it exclusively. Drop the header in place (the loom shim's
            // atomics own state) and free the memory.
            unsafe {
                std::ptr::drop_in_place(fresh.cast::<ChunkHeader>());
                dealloc(fresh, layout);
            }
        }
    }

    /// Number of elements committed in a chunk given its bump offset:
    /// offsets are consecutive multiples of the stride, and a claimant
    /// writes its element iff the claimed range fits the payload, so the
    /// committed count is the total claim count saturated at capacity.
    fn committed(used: usize) -> usize {
        (used / stride::<T>()).min(chunk_capacity::<T>())
    }

    /// Whether `ptr` points into one of this arena's chunks. Used by the
    /// per-epoch isolation tests; O(chunks).
    pub fn owns(&self, ptr: *const T) -> bool {
        let p = ptr as usize;
        // ord: Acquire — see `claim_slot`; headers of published chunks are
        // visible before we walk their `next` links.
        let mut cur = self.current.load(Ordering::Acquire);
        while !cur.is_null() {
            let payload = cur as usize + HEADER_BYTES;
            if (payload..cur as usize + CHUNK_BYTES).contains(&p) {
                return true;
            }
            // SAFETY: published chunks have live headers until `Drop`.
            let header = unsafe { &*cur.cast::<ChunkHeader>() };
            // ord: Relaxed — `next` is written once before the chunk is
            // published and never changed; the Acquire above ordered it.
            cur = header.next.load(Ordering::Relaxed);
        }
        false
    }

    /// Number of chunks currently allocated. O(chunks); for tests/stats.
    pub fn chunks_allocated(&self) -> usize {
        let mut n = 0;
        // ord: Acquire — see `claim_slot`.
        let mut cur = self.current.load(Ordering::Acquire);
        while !cur.is_null() {
            n += 1;
            // SAFETY: published chunks have live headers until `Drop`.
            let header = unsafe { &*cur.cast::<ChunkHeader>() };
            // ord: Relaxed — `next` is immutable after publication (`owns`).
            cur = header.next.load(Ordering::Relaxed);
        }
        n
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        let layout = chunk_layout();
        // `&mut self`: no concurrent claimants; every committed write
        // happens-before this frame (see module docs).
        // ord: Relaxed — exclusive access.
        let mut cur = self.current.load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: `cur` is a live chunk we exclusively own.
            let header = unsafe { &*cur.cast::<ChunkHeader>() };
            // ord: Relaxed — exclusive access.
            let next = header.next.load(Ordering::Relaxed);
            let n = Self::committed(header.used.load(Ordering::Relaxed));
            for i in 0..n {
                // SAFETY: the first `n` slots hold committed elements
                // (see `committed`); each is dropped exactly once here.
                unsafe {
                    std::ptr::drop_in_place(cur.add(HEADER_BYTES + i * stride::<T>()).cast::<T>())
                };
            }
            // SAFETY: header was `ptr::write`-initialized at install; the
            // chunk came from `alloc(layout)` and is freed exactly once.
            unsafe {
                std::ptr::drop_in_place(cur.cast::<ChunkHeader>());
                dealloc(cur, layout);
            }
            cur = next;
        }
    }
}

/// A `Copy` handle to an arena-allocated value.
///
/// Validity is epoch-scoped, not tracked by the type: a handle must not
/// outlive the arena that produced it. The scheduler upholds this by
/// having every job that carries handles also carry an `Arc` of the
/// engine that owns the arena.
pub struct ArenaRef<T> {
    ptr: NonNull<T>,
}

impl<T> Clone for ArenaRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArenaRef<T> {}

// SAFETY: an `ArenaRef` is a shared reference in disguise — it never
// confers ownership or uniqueness — so sending/sharing it across threads
// is sound exactly when `&T` is, i.e. `T: Sync`. `T: Send` is demanded
// too because the arena (and thus the value's eventual drop) may live on
// a different thread than the allocator.
unsafe impl<T: Send + Sync> Send for ArenaRef<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for ArenaRef<T> {}

impl<T> ArenaRef<T> {
    /// The raw pointer (for identity comparisons and `owns` checks).
    pub fn as_ptr(self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Pointer identity: do two handles name the same allocation?
    pub fn ptr_eq(a: ArenaRef<T>, b: ArenaRef<T>) -> bool {
        a.ptr == b.ptr
    }
}

impl<T> std::ops::Deref for ArenaRef<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the handle's epoch contract (see type docs): the arena
        // is alive, so the slot holds a live, never-moved `T`.
        unsafe { self.ptr.as_ref() }
    }
}

impl<T> std::fmt::Debug for ArenaRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaRef").field("ptr", &self.ptr).finish()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn alloc_and_deref() {
        let arena = Arena::new();
        let a = arena.alloc(41u64);
        let b = arena.alloc(1u64);
        assert_eq!(*a + *b, 42);
        assert!(!ArenaRef::ptr_eq(a, b));
        assert!(ArenaRef::ptr_eq(a, a));
        assert_eq!(arena.chunks_allocated(), 1);
    }

    #[test]
    fn spills_into_new_chunks() {
        let arena = Arena::new();
        let per_chunk = chunk_capacity::<[u64; 16]>();
        let refs: Vec<_> = (0..per_chunk * 2 + 1)
            .map(|i| arena.alloc([i as u64; 16]))
            .collect();
        assert_eq!(arena.chunks_allocated(), 3);
        for (i, r) in refs.iter().enumerate() {
            assert_eq!(r[0], i as u64);
            assert!(arena.owns(r.as_ptr()));
        }
    }

    #[test]
    fn owns_rejects_foreign_pointers() {
        let a = Arena::new();
        let b = Arena::new();
        let ra = a.alloc(1u64);
        let rb = b.alloc(2u64);
        assert!(a.owns(ra.as_ptr()) && b.owns(rb.as_ptr()));
        assert!(!a.owns(rb.as_ptr()) && !b.owns(ra.as_ptr()));
        let stack = 3u64;
        assert!(!a.owns(&stack as *const u64));
    }

    #[test]
    fn drop_runs_element_drops_once() {
        struct Canary(Arc<StdAtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::Relaxed);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        let n = 10_000; // forces several chunks
        {
            let arena = Arena::new();
            for _ in 0..n {
                arena.alloc(Canary(Arc::clone(&drops)));
            }
        }
        assert_eq!(drops.load(StdOrdering::Relaxed), n);
    }

    #[test]
    fn concurrent_alloc_yields_distinct_slots() {
        let arena = Arc::new(Arena::<u64>::new());
        let threads = 4;
        let per_thread = 20_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || {
                    (0..per_thread)
                        .map(|i| {
                            let r = arena.alloc((t * per_thread + i) as u64);
                            r.as_ptr() as usize
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("no panic"))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), threads * per_thread, "slots must be distinct");
    }
}
