//! Property-based tests: random layered DAGs × random fault plans,
//! generated *jointly* so every sampled fault site names a task that
//! actually exists in the sampled DAG (key × phase × fires).
//!
//! For arbitrary DAG shapes and arbitrary fault injections, the
//! fault-tolerant scheduler must (P1/Theorem 1) produce exactly the values
//! a sequential execution produces, (P2/Guarantee 1) recover each failure
//! at most once, and (P4/Lemma 3) always complete. Every run is recorded
//! and replayed through the guarantee oracle; a violation dumps the trace
//! and fault plan as JSON under `target/oracle-failures/`.

use ft_integration::graphs::ValueDag;
use ft_integration::{assert_oracle_clean, traced_run_on};
use ft_steal::pool::{Pool, PoolConfig};
use nabbit_ft::graph::{Key, TaskGraph};
use nabbit_ft::inject::{FaultPlan, FaultSite, Phase};
use nabbit_ft::seq;
use nabbit_ft::trace::oracle::{check_result_equivalence, OracleMode};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

fn shared_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(PoolConfig::with_threads(4)))
}

/// Oracle: values from a sequential fault-free execution.
fn sequential_values(widths: &[usize], edges_seed: u64) -> HashMap<Key, u64> {
    let dag = ValueDag::generate(widths, edges_seed);
    seq::run(&dag).unwrap();
    dag.all_keys()
        .into_iter()
        .map(|k| (k, dag.value_of(k).unwrap()))
        .collect()
}

/// A DAG shape together with a fault plan drawn over that DAG's keys.
#[derive(Debug, Clone)]
struct DagWithFaults {
    widths: Vec<usize>,
    edges_seed: u64,
    sites: Vec<FaultSite>,
}

fn any_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::BeforeCompute),
        Just(Phase::AfterCompute),
        Just(Phase::AfterNotify),
    ]
}

/// Joint strategy: sample a DAG shape, then sample fault sites *over the
/// keys of that DAG* — each site an independently drawn
/// (key, phase, fires ∈ 1..=max_fires) triple. Duplicate keys are fine:
/// `FaultPlan::new` keeps the last site per key (the paper injects at most
/// one fault per task).
fn dag_with_faults(max_fires: u64) -> impl Strategy<Value = DagWithFaults> {
    (prop::collection::vec(1usize..7, 1..6), any::<u64>()).prop_flat_map(
        move |(widths, edges_seed)| {
            let keys = ValueDag::generate(&widths, edges_seed).all_keys();
            let n = keys.len();
            let site =
                (0..n, any_phase(), 1u64..max_fires + 1).prop_map(move |(i, phase, fires)| {
                    FaultSite {
                        key: keys[i],
                        phase,
                        fires,
                    }
                });
            let widths2 = widths.clone();
            prop::collection::vec(site, 0..n + 1).prop_map(move |sites| DagWithFaults {
                widths: widths2.clone(),
                edges_seed,
                sites,
            })
        },
    )
}

/// Run one sampled (DAG, fault plan) instance on the shared pool, check
/// the trace with the oracle, and return `(dag, plan fired count)` for
/// extra per-test assertions.
fn run_and_check(case: &DagWithFaults, label: &str) -> Arc<ValueDag> {
    let reference = sequential_values(&case.widths, case.edges_seed);
    let dag = Arc::new(ValueDag::generate(&case.widths, case.edges_seed));
    let keys = dag.all_keys();
    let plan = Arc::new(FaultPlan::new(case.sites.iter().copied()));
    let (_, trace, report) = traced_run_on(
        Arc::clone(&dag) as Arc<dyn TaskGraph>,
        Arc::clone(&plan),
        shared_pool(),
    );
    assert!(report.sink_completed, "{label}: sink must complete (P4)");
    assert_eq!(
        report.distinct_tasks_executed as usize,
        dag.task_count(),
        "{label}: every task executed at least once"
    );
    let dag2 = Arc::clone(&dag);
    let extra =
        check_result_equivalence(&keys, |k| dag2.value_of(k), |k| reference.get(&k).copied());
    assert_oracle_clean(
        label,
        0, // pool schedules are not seeded; the fault plan is in the dump
        &plan,
        dag.as_ref(),
        &trace,
        &report,
        OracleMode::Concurrent,
        extra,
    );
    dag
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_dag_random_faults_same_result(case in dag_with_faults(1)) {
        run_and_check(&case, "random-dag-single-fire");
    }

    #[test]
    fn random_dag_multi_fire_faults_same_result(case in dag_with_faults(3)) {
        // fires ∈ 1..=3 exercises Guarantee 6's recursive recovery: a
        // recovered incarnation can itself fail and must be recovered at a
        // strictly larger life.
        run_and_check(&case, "random-dag-multi-fire");
    }

    #[test]
    fn random_dag_fault_free_executes_each_task_once(
        widths in prop::collection::vec(1usize..8, 1..6),
        edges_seed in any::<u64>(),
    ) {
        let case = DagWithFaults { widths, edges_seed, sites: vec![] };
        let dag = run_and_check(&case, "random-dag-fault-free");
        let plan = Arc::new(FaultPlan::none());
        let (_, _, report) = traced_run_on(
            Arc::clone(&dag) as Arc<dyn TaskGraph>,
            plan,
            shared_pool(),
        );
        // Second, fault-free pass over an already-complete graph object:
        // fresh scheduler, so every task recomputes exactly once (P6).
        prop_assert!(report.sink_completed);
        prop_assert_eq!(report.computes as usize, dag.task_count(), "P6");
        prop_assert_eq!(report.re_executions, 0);
        prop_assert_eq!(report.recoveries, 0);
    }
}
