//! Cholesky factorization — blocked right-looking, lower triangular.
//!
//! Tasks per round `k`: `POTRF(k)` factors the diagonal tile; `TRSM(k,i)`
//! (`i > k`) computes the panel tile `(i,k)`; `UPDATE(k,i,j)`
//! (`k < j ≤ i`) applies `C −= L_{ik}·L_{jk}ᵀ` (SYRK when `i == j`, GEMM
//! otherwise). Task count reproduces Table I:
//! `T = Σ_k [1 + m + m(m+1)/2]` (with `m = nb−k−1`) → 88,560 at `nb = 80`;
//! critical path `S = 3·nb − 2 = 238`.
//!
//! Versioning mirrors LU: block `(i,j)` (lower triangle) gains one version
//! per update round, finishing at version `j + 1`; `KeepLast(2)` reuse is
//! naturally safe, and `v=last` failures cascade down the update chain.

use crate::common::{keys, AppConfig, BenchApp, VerifyOutcome, VersionClass};
use nabbit_ft::blocks::{BlockError, BlockStore, Retention};
use nabbit_ft::fault::Fault;
use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
use std::sync::Arc;

const POTRF: u8 = 1;
const TRSM: u8 = 2; // tile (i,k), i > k
const UPDATE: u8 = 3; // tile (i,j), k < j <= i

/// Blocked Cholesky benchmark instance.
pub struct Cholesky {
    cfg: AppConfig,
    store: BlockStore<f64>,
    input: Vec<f64>,
}

impl Cholesky {
    /// Create an instance over a random symmetric positive-definite matrix
    /// (symmetric + diagonally dominant), with the paper's two-version
    /// memory reuse.
    pub fn new(cfg: AppConfig) -> Self {
        Self::with_retention(cfg, Retention::KeepLast(2))
    }

    /// Single-assignment variant (every version retained).
    pub fn single_assignment(cfg: AppConfig) -> Self {
        Self::with_retention(cfg, Retention::KeepAll)
    }

    /// Explicit retention policy.
    pub fn with_retention(cfg: AppConfig, retention: Retention) -> Self {
        let n = cfg.n;
        let raw = crate::common::random_matrix(n, 0.1, 1.0, cfg.seed);
        let mut input = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                input[r * n + c] = 0.5 * (raw[r * n + c] + raw[c * n + r]);
            }
            input[r * n + r] += n as f64;
        }
        let nb = cfg.nb();
        let store = BlockStore::new(nb * nb, retention);
        for ti in 0..nb {
            for tj in 0..=ti {
                let tile = crate::common::extract_tile(&input, n, cfg.b, ti, tj);
                store.publish_pinned(ti * nb + tj, 0, tile);
            }
        }
        Cholesky { cfg, store, input }
    }

    fn nb(&self) -> usize {
        self.cfg.nb()
    }

    fn bid(&self, i: usize, j: usize) -> usize {
        i * self.nb() + j
    }

    /// Final version of lower-triangle block `(i,j)`: `j + 1`.
    fn final_version(j: usize) -> u64 {
        (j + 1) as u64
    }

    /// Read the factored tile `(i,j)` (`i ≥ j`) after a completed run.
    pub fn factored_tile(&self, i: usize, j: usize) -> Option<Arc<Vec<f64>>> {
        self.store.read(self.bid(i, j), Self::final_version(j)).ok()
    }

    /// Independent reference: unblocked lower Cholesky on the same input.
    pub fn reference(&self) -> Vec<f64> {
        let n = self.cfg.n;
        let mut a = self.input.clone();
        for t in 0..n {
            a[t * n + t] = a[t * n + t].sqrt();
            let d = a[t * n + t];
            for u in t + 1..n {
                a[u * n + t] /= d;
            }
            for u in t + 1..n {
                let l = a[u * n + t];
                for v in t + 1..=u {
                    a[u * n + v] -= l * a[v * n + t];
                }
            }
        }
        a
    }
}

/// In-place lower Cholesky of a `b×b` tile (upper part left untouched).
fn kernel_potrf(a: &mut [f64], b: usize) {
    for t in 0..b {
        a[t * b + t] = a[t * b + t].sqrt();
        let d = a[t * b + t];
        for u in t + 1..b {
            a[u * b + t] /= d;
        }
        for u in t + 1..b {
            let l = a[u * b + t];
            for v in t + 1..=u {
                a[u * b + v] -= l * a[v * b + t];
            }
        }
    }
}

/// Panel solve `X = A · L⁻ᵀ` against the factored diagonal tile, column by
/// column in elimination order.
fn kernel_trsm(a: &mut [f64], diag: &[f64], b: usize) {
    for t in 0..b {
        let d = diag[t * b + t];
        for u in 0..b {
            a[u * b + t] /= d;
        }
        for v in t + 1..b {
            let l = diag[v * b + t];
            for u in 0..b {
                a[u * b + v] -= l * a[u * b + t];
            }
        }
    }
}

/// Trailing update `C −= L_i · L_jᵀ`, per elimination step `t` in order.
fn kernel_update(c: &mut [f64], li: &[f64], lj: &[f64], b: usize, syrk: bool) {
    for t in 0..b {
        for row in 0..b {
            let lv = li[row * b + t];
            // For the diagonal (SYRK) tile only the lower part is live.
            let cols = if syrk { row + 1 } else { b };
            for col in 0..cols {
                c[row * b + col] -= lv * lj[col * b + t];
            }
        }
    }
}

impl TaskGraph for Cholesky {
    fn sink(&self) -> Key {
        keys::encode(POTRF, self.nb() - 1, 0, 0)
    }

    fn predecessors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let mut p = Vec::with_capacity(3);
        match tag {
            POTRF => {
                if k > 0 {
                    p.push(keys::encode(UPDATE, k - 1, k, k));
                }
            }
            TRSM => {
                p.push(keys::encode(POTRF, k, 0, 0));
                if k > 0 {
                    p.push(keys::encode(UPDATE, k - 1, i, k));
                }
            }
            UPDATE => {
                p.push(keys::encode(TRSM, k, i, 0));
                if j != i {
                    p.push(keys::encode(TRSM, k, j, 0));
                }
                if k > 0 {
                    p.push(keys::encode(UPDATE, k - 1, i, j));
                }
            }
            _ => unreachable!("bad Cholesky task tag"),
        }
        p
    }

    fn successors(&self, key: Key) -> Vec<Key> {
        let (tag, k, i, j) = keys::decode(key);
        let nb = self.nb();
        let mut s = Vec::new();
        match tag {
            POTRF => {
                for i2 in k + 1..nb {
                    s.push(keys::encode(TRSM, k, i2, 0));
                }
            }
            TRSM => {
                // L(i,k) feeds every round-k update involving row i:
                // UPDATE(k, i, j) for k < j <= i and UPDATE(k, i2, i) for i2 >= i.
                for j2 in k + 1..=i {
                    s.push(keys::encode(UPDATE, k, i, j2));
                }
                for i2 in i + 1..nb {
                    s.push(keys::encode(UPDATE, k, i2, i));
                }
            }
            UPDATE => {
                // Round k+1 task on block (i,j).
                s.push(if i == k + 1 && j == k + 1 {
                    keys::encode(POTRF, k + 1, 0, 0)
                } else if j == k + 1 {
                    keys::encode(TRSM, k + 1, i, 0)
                } else {
                    keys::encode(UPDATE, k + 1, i, j)
                });
            }
            _ => unreachable!("bad Cholesky task tag"),
        }
        s
    }

    fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
        let (tag, k, i, j) = keys::decode(key);
        let b = self.cfg.b;
        let v = k as u64;
        let read = |bi: usize, bj: usize, ver: u64| {
            self.store
                .read(self.bid(bi, bj), ver)
                .map_err(|e| e.into_fault())
        };
        match tag {
            POTRF => {
                let mut a = read(k, k, v)?.as_ref().clone();
                kernel_potrf(&mut a, b);
                self.store.publish(self.bid(k, k), v + 1, key, a);
            }
            TRSM => {
                let mut a = read(i, k, v)?.as_ref().clone();
                let d = read(k, k, v + 1)?;
                kernel_trsm(&mut a, &d, b);
                self.store.publish(self.bid(i, k), v + 1, key, a);
            }
            UPDATE => {
                let mut c = read(i, j, v)?.as_ref().clone();
                let li = read(i, k, v + 1)?;
                if i == j {
                    kernel_update(&mut c, &li, &li, b, true);
                } else {
                    let lj = read(j, k, v + 1)?;
                    kernel_update(&mut c, &li, &lj, b, false);
                }
                self.store.publish(self.bid(i, j), v + 1, key, c);
            }
            _ => unreachable!("bad Cholesky task tag"),
        }
        Ok(())
    }

    fn poison_outputs(&self, key: Key) {
        let (tag, k, i, j) = keys::decode(key);
        let (bi, bj) = match tag {
            POTRF => (k, k),
            TRSM => (i, k),
            UPDATE => (i, j),
            _ => return,
        };
        self.store.poison(self.bid(bi, bj), (k + 1) as u64);
    }
}

impl BenchApp for Cholesky {
    fn name(&self) -> &'static str {
        "Cholesky"
    }

    fn config(&self) -> AppConfig {
        self.cfg
    }

    fn all_tasks(&self) -> Vec<Key> {
        let nb = self.nb();
        let mut v = Vec::new();
        for k in 0..nb {
            v.push(keys::encode(POTRF, k, 0, 0));
            for i in k + 1..nb {
                v.push(keys::encode(TRSM, k, i, 0));
            }
            for i in k + 1..nb {
                for j in k + 1..=i {
                    v.push(keys::encode(UPDATE, k, i, j));
                }
            }
        }
        v
    }

    fn tasks_of_class(&self, class: VersionClass) -> Vec<Key> {
        match class {
            VersionClass::First => self
                .all_tasks()
                .into_iter()
                .filter(|&t| keys::decode(t).1 == 0)
                .collect(),
            VersionClass::Last => self
                .all_tasks()
                .into_iter()
                .filter(|&t| keys::decode(t).0 != UPDATE)
                .collect(),
            VersionClass::Rand => self.all_tasks(),
        }
    }

    fn verify_detailed(&self) -> Result<VerifyOutcome, String> {
        let reference = self.reference();
        let nb = self.nb();
        let b = self.cfg.b;
        let tol = 1e-9 * self.cfg.n as f64;
        let mut checked = 0;
        let mut skipped = 0;
        for ti in 0..nb {
            for tj in 0..=ti {
                let got = match self.store.read(self.bid(ti, tj), Self::final_version(tj)) {
                    Ok(g) => g,
                    Err(BlockError::Poisoned { .. }) => {
                        skipped += 1;
                        continue;
                    }
                    Err(e) => return Err(format!("factored tile ({ti},{tj}): {e:?}")),
                };
                let want = crate::common::extract_tile(&reference, self.cfg.n, b, ti, tj);
                // Compare the live region: full tile below the diagonal,
                // lower triangle on the diagonal tile.
                let mut diff = 0.0f64;
                for r in 0..b {
                    let cols = if ti == tj { r + 1 } else { b };
                    for c in 0..cols {
                        diff = diff.max((got[r * b + c] - want[r * b + c]).abs());
                    }
                }
                if diff > tol {
                    return Err(format!("Cholesky tile ({ti},{tj}) differs by {diff}"));
                }
                checked += 1;
            }
        }
        Ok(VerifyOutcome {
            checked,
            skipped_poisoned: skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_steal::pool::{Pool, PoolConfig};
    use nabbit_ft::inject::{FaultPlan, Phase};
    use nabbit_ft::scheduler::{BaselineScheduler, FtScheduler};
    use nabbit_ft::seq;

    #[test]
    fn task_count_formula_matches_paper() {
        // T = Σ_{m=0}^{nb-1} [1 + m + m(m+1)/2]; Table I: 88,560 at nb=80.
        let t = |nb: usize| -> usize {
            (0..nb)
                .map(|k| {
                    let m = nb - k - 1;
                    1 + m + m * (m + 1) / 2
                })
                .sum()
        };
        assert_eq!(t(80), 88_560);
        let app = Cholesky::new(AppConfig::new(64, 16));
        assert_eq!(app.all_tasks().len(), t(4));
    }

    #[test]
    fn critical_path_matches_paper() {
        let app = Cholesky::new(AppConfig::new(64, 16));
        let s = nabbit_ft::analysis::graph_stats(&app);
        assert_eq!(s.critical_path, 3 * 4 - 2);
        assert_eq!(3 * 80 - 2, 238); // Table I: S = 238
    }

    #[test]
    fn pred_succ_symmetry() {
        let app = Cholesky::new(AppConfig::new(80, 16)); // nb = 5
        for &k in &app.all_tasks() {
            for p in app.predecessors(k) {
                assert!(app.successors(p).contains(&k), "pred/succ: {p} -> {k}");
            }
            for su in app.successors(k) {
                assert!(app.predecessors(su).contains(&k), "succ/pred: {k} -> {su}");
            }
        }
    }

    #[test]
    fn sequential_matches_reference() {
        let app = Arc::new(Cholesky::new(AppConfig::new(64, 16)));
        seq::run(app.as_ref()).unwrap();
        app.verify().unwrap();
    }

    #[test]
    fn parallel_baseline_matches_reference() {
        let app = Arc::new(Cholesky::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        app.verify().unwrap();
    }

    #[test]
    fn ft_without_faults_matches_reference() {
        let app = Arc::new(Cholesky::new(AppConfig::new(64, 16)));
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = FtScheduler::new(Arc::clone(&app) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.re_executions, 0);
        app.verify().unwrap();
    }

    #[test]
    fn ft_with_random_faults_matches_reference() {
        let app = Arc::new(Cholesky::new(AppConfig::new(64, 16)));
        let keys = app.all_tasks();
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::sample(&keys, 8, Phase::AfterCompute, 61));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.injected, 8);
        app.verify().unwrap();
    }

    #[test]
    fn ft_potrf_fault_recovers() {
        // Failing the very last POTRF (the sink) exercises recovery of a
        // task with a long evicted input chain.
        let app = Arc::new(Cholesky::new(AppConfig::new(96, 16))); // nb = 6
        let pool = Pool::new(PoolConfig::with_threads(4));
        let plan = Arc::new(FaultPlan::single(app.sink(), Phase::AfterCompute));
        let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
        assert!(report.sink_completed);
        assert!(report.re_executions >= 1);
        app.verify().unwrap();
    }

    #[test]
    fn ft_all_phases_verify() {
        for (phase, seed) in [
            (Phase::BeforeCompute, 67),
            (Phase::AfterCompute, 71),
            (Phase::AfterNotify, 73),
        ] {
            let app = Arc::new(Cholesky::new(AppConfig::new(64, 16)));
            let keys = app.all_tasks();
            let pool = Pool::new(PoolConfig::with_threads(4));
            let plan = Arc::new(FaultPlan::sample(&keys, 6, phase, seed));
            let report = FtScheduler::with_plan(Arc::clone(&app) as _, plan).run(&pool);
            assert!(report.sink_completed, "phase {phase:?}");
            let o = app
                .verify_detailed()
                .unwrap_or_else(|e| panic!("phase {phase:?}: {e}"));
            assert!(o.skipped_poisoned as u64 <= report.injected);
        }
    }

    #[test]
    fn class_partitions() {
        let app = Cholesky::new(AppConfig::new(64, 16)); // nb = 4
                                                         // Round 0: potrf + 3 trsm + 6 updates = 10.
        assert_eq!(app.tasks_of_class(VersionClass::First).len(), 10);
        // 4 potrf + 6 trsm = 10 v=last producers.
        assert_eq!(app.tasks_of_class(VersionClass::Last).len(), 10);
        assert_eq!(app.tasks_of_class(VersionClass::Rand).len(), 20);
    }
}

#[cfg(test)]
mod kernel_tests {
    use super::*;

    /// 2×2 Cholesky by hand: A = [[4,2],[2,5]] → L = [[2,0],[1,2]].
    #[test]
    fn potrf_2x2_hand_computed() {
        let mut a = vec![4.0, 2.0, 2.0, 5.0];
        kernel_potrf(&mut a, 2);
        assert!((a[0] - 2.0).abs() < 1e-12);
        assert!((a[2] - 1.0).abs() < 1e-12);
        assert!((a[3] - 2.0).abs() < 1e-12);
    }

    /// Panel solve: X·Lᵀ = A.
    #[test]
    fn trsm_inverts_l_transpose() {
        // L = [[2,0],[1,3]] (lower), X = [[1,2],[3,4]]:
        // A = X·Lᵀ = [[2, 7],[6, 15]].
        let diag = vec![2.0, 0.0, 1.0, 3.0];
        let mut a = vec![2.0, 7.0, 6.0, 15.0];
        kernel_trsm(&mut a, &diag, 2);
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert!((a[1] - 2.0).abs() < 1e-12);
        assert!((a[2] - 3.0).abs() < 1e-12);
        assert!((a[3] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn update_gemm_and_syrk() {
        // GEMM: C -= Li·Ljᵀ with Li = I → C -= Ljᵀ.
        let li = vec![1.0, 0.0, 0.0, 1.0];
        let lj = vec![1.0, 2.0, 3.0, 4.0]; // Ljᵀ = [[1,3],[2,4]]
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        kernel_update(&mut c, &li, &lj, 2, false);
        assert_eq!(c, vec![9.0, 7.0, 8.0, 6.0]);

        // SYRK touches only the lower triangle.
        let mut c = vec![10.0, 99.0, 10.0, 10.0];
        let l = vec![1.0, 0.0, 2.0, 1.0];
        kernel_update(&mut c, &l, &l, 2, true);
        // C -= L·Lᵀ (lower): c00 -= 1, c10 -= 2, c11 -= 5.
        assert_eq!(c, vec![9.0, 99.0, 8.0, 5.0]);
    }

    #[test]
    fn factor_reconstructs_spd_matrix() {
        // L·Lᵀ must reproduce the input (residual check on a small run).
        let app = Cholesky::new(AppConfig::new(32, 8));
        nabbit_ft::seq::run(&app).unwrap();
        let n = 32;
        let reference = app.reference();
        // Rebuild A from the unblocked reference L and compare to input.
        let mut rebuilt = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = 0.0;
                for t in 0..=j {
                    s += reference[i * n + t] * reference[j * n + t];
                }
                rebuilt[i * n + j] = s;
            }
        }
        for i in 0..n {
            for j in 0..=i {
                let want = app.input[i * n + j];
                let got = rebuilt[i * n + j];
                assert!(
                    (got - want).abs() < 1e-8 * n as f64,
                    "A[{i}][{j}]: {got} vs {want}"
                );
            }
        }
    }
}
