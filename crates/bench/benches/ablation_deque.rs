//! Ablation: the hand-rolled Chase-Lev deque vs a mutex-guarded `VecDeque`
//! under the pool's actual access pattern (owner push/pop with concurrent
//! thieves). Justifies DESIGN.md decision #1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_steal::deque::{deque, Steal};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const OPS: usize = 100_000;

/// Owner pushes/pops OPS items while `thieves` threads steal.
fn chase_lev_round(thieves: usize) {
    let (w, s) = deque::<u64>();
    let done = Arc::new(AtomicBool::new(false));
    let stolen = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..thieves {
            let s = s.clone();
            let done = Arc::clone(&done);
            let stolen = Arc::clone(&stolen);
            scope.spawn(move || loop {
                match s.steal() {
                    Steal::Success(_) => {
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty if done.load(Ordering::Acquire) => break,
                    _ => std::hint::spin_loop(),
                }
            });
        }
        let mut popped = 0u64;
        for i in 0..OPS as u64 {
            w.push(i);
            if i % 2 == 0 && w.pop().is_some() {
                popped += 1;
            }
        }
        while w.pop().is_some() {
            popped += 1;
        }
        done.store(true, Ordering::Release);
        stolen.fetch_add(popped, Ordering::Relaxed);
    });
    assert_eq!(stolen.load(Ordering::Relaxed), OPS as u64);
}

/// Same workload over `Mutex<VecDeque>`.
fn mutex_round(thieves: usize) {
    let q = Arc::new(Mutex::new(VecDeque::<u64>::new()));
    let done = Arc::new(AtomicBool::new(false));
    let consumed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..thieves {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            let consumed = Arc::clone(&consumed);
            scope.spawn(move || loop {
                let got = q.lock().pop_front();
                match got {
                    Some(_) => {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                    None if done.load(Ordering::Acquire) => break,
                    None => std::hint::spin_loop(),
                }
            });
        }
        let mut popped = 0u64;
        for i in 0..OPS as u64 {
            q.lock().push_back(i);
            if i % 2 == 0 && q.lock().pop_back().is_some() {
                popped += 1;
            }
        }
        while q.lock().pop_back().is_some() {
            popped += 1;
        }
        done.store(true, Ordering::Release);
        consumed.fetch_add(popped, Ordering::Relaxed);
    });
    assert_eq!(consumed.load(Ordering::Relaxed), OPS as u64);
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_deque");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(6))
        .warm_up_time(Duration::from_secs(1));
    for thieves in [1usize, 3] {
        group.bench_with_input(BenchmarkId::new("chase_lev", thieves), &thieves, |b, &t| {
            b.iter(|| chase_lev_round(t))
        });
        group.bench_with_input(
            BenchmarkId::new("mutex_vecdeque", thieves),
            &thieves,
            |b, &t| b.iter(|| mutex_round(t)),
        );
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
