//! Shared fixtures and the oracle-checked campaign driver for the
//! repo-root integration tests.
//!
//! The tests in `tests/` (hosted by this crate via `[[test]]` path
//! entries) share three things:
//!
//! * [`graphs`] — reusable task graphs: the wavefront [`graphs::Grid`],
//!   a serial [`graphs::Chain`], and [`graphs::ValueDag`], a random
//!   layered DAG whose tasks produce deterministic values and whose
//!   outputs can be poisoned (so after-notify faults are observable by
//!   later consumers).
//! * [`det_traced_run`] — the deterministic-exploration driver: run the
//!   FT scheduler on an [`ft_det::DetPool`] with a seeded schedule and a
//!   fault plan, recording an execution trace.
//! * [`assert_oracle_clean`] — validate the recorded trace against the
//!   Section-IV guarantee oracle, and on violation dump a replayable JSON
//!   failure report (graph label + schedule seed + fault plan + full
//!   trace) under `target/oracle-failures/`.
//!
//! A failure therefore reproduces from `(graph, fault plan, seed)` alone;
//! the JSON report names all three.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nabbit_ft::graph::TaskGraph;
use nabbit_ft::inject::FaultPlan;
use nabbit_ft::metrics::RunReport;
use nabbit_ft::scheduler::{FtScheduler, SchedOpts};
use nabbit_ft::trace::oracle::{check_trace, FailureReport, OracleMode, Violation};
use nabbit_ft::trace::Trace;

pub mod graphs {
    //! Task graphs shared by the integration tests.

    use ft_cmap::ShardedMap;
    use nabbit_ft::fault::Fault;
    use nabbit_ft::graph::{ComputeCtx, Key, TaskGraph};
    use std::collections::HashMap;

    /// n×n wavefront grid: (i,j) depends on (i-1,j) and (i,j-1). No data
    /// blocks; compute always succeeds.
    pub struct Grid {
        /// Side length.
        pub n: i64,
    }

    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut s = Vec::new();
            if i + 1 < self.n {
                s.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                s.push(i * self.n + (j + 1));
            }
            s
        }
        fn compute(&self, _k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    /// A pure serial chain 0 → 1 → … → len-1 (maximal critical path).
    pub struct Chain {
        /// Number of tasks.
        pub len: i64,
    }

    impl TaskGraph for Chain {
        fn sink(&self) -> Key {
            self.len - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            if k == 0 {
                vec![]
            } else {
                vec![k - 1]
            }
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            if k == self.len - 1 {
                vec![]
            } else {
                vec![k + 1]
            }
        }
        fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    /// A randomly generated layered DAG whose tasks compute deterministic
    /// values (a hash of predecessor values) into a concurrent map.
    ///
    /// Unlike the grid, this graph has *observable data*: a fired fault
    /// poisons the task's output value ([`TaskGraph::poison_outputs`]),
    /// and any later consumer reading it reports a data fault back to the
    /// scheduler — which is how an after-notify fault becomes observable
    /// through the paper's "later consumer" path. A recovered incarnation
    /// rewrites the value, clearing the poison.
    pub struct ValueDag {
        preds: HashMap<Key, Vec<Key>>,
        succs: HashMap<Key, Vec<Key>>,
        sink: Key,
        values: ShardedMap<u64>,
        /// Poison marks on output values (true = corrupt).
        poisoned: ShardedMap<bool>,
    }

    impl ValueDag {
        /// Build from a shape description: `widths[l]` nodes in layer `l`;
        /// `edges_seed` drives predecessor selection. Keys are
        /// `layer * 1000 + index`; the sink (999_999) depends on every
        /// node without successors.
        pub fn generate(widths: &[usize], edges_seed: u64) -> ValueDag {
            let mut preds: HashMap<Key, Vec<Key>> = HashMap::new();
            let mut succs: HashMap<Key, Vec<Key>> = HashMap::new();
            let mut state = edges_seed | 1;
            let mut next = move || {
                // xorshift64
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let key_of = |layer: usize, idx: usize| (layer * 1000 + idx) as Key;
            for (l, &w) in widths.iter().enumerate() {
                for idx in 0..w {
                    let k = key_of(l, idx);
                    let mut p = Vec::new();
                    if l > 0 {
                        let prev_w = widths[l - 1];
                        let nparents = 1 + (next() as usize) % 3.min(prev_w);
                        for t in 0..nparents {
                            let cand = key_of(l - 1, (next() as usize + t) % prev_w);
                            if !p.contains(&cand) {
                                p.push(cand);
                            }
                        }
                    }
                    for &q in &p {
                        succs.entry(q).or_default().push(k);
                    }
                    preds.insert(k, p);
                    succs.entry(k).or_default();
                }
            }
            let sink: Key = 999_999;
            let mut sink_preds: Vec<Key> = preds
                .keys()
                .copied()
                .filter(|k| succs.get(k).map(|s| s.is_empty()).unwrap_or(true))
                .collect();
            sink_preds.sort_unstable();
            for &q in &sink_preds {
                succs.get_mut(&q).unwrap().push(sink);
            }
            preds.insert(sink, sink_preds);
            succs.insert(sink, vec![]);
            ValueDag {
                preds,
                succs,
                sink,
                values: ShardedMap::with_shards(16),
                poisoned: ShardedMap::with_shards(16),
            }
        }

        /// Number of tasks, sink included.
        pub fn task_count(&self) -> usize {
            self.preds.len()
        }

        /// All task keys, sorted.
        pub fn all_keys(&self) -> Vec<Key> {
            let mut v: Vec<Key> = self.preds.keys().copied().collect();
            v.sort_unstable();
            v
        }

        /// The computed value of `k`, if it has been computed.
        pub fn value_of(&self, k: Key) -> Option<u64> {
            self.values.get(k)
        }
    }

    impl TaskGraph for ValueDag {
        fn sink(&self) -> Key {
            self.sink
        }
        fn predecessors(&self, key: Key) -> Vec<Key> {
            self.preds.get(&key).cloned().unwrap_or_default()
        }
        fn successors(&self, key: Key) -> Vec<Key> {
            self.succs.get(&key).cloned().unwrap_or_default()
        }
        fn compute(&self, key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            let mut h = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for p in self.predecessors(key) {
                // A poisoned input is a detected data fault in `p`.
                if self.poisoned.get(p).unwrap_or(false) {
                    return Err(Fault::data(p));
                }
                let pv = self
                    .values
                    .get(p)
                    .expect("predecessor value present (dependences guarantee it)");
                h = h.rotate_left(13) ^ pv.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
            self.values.replace(key, h);
            // A fresh (re-)execution produces clean data.
            self.poisoned.replace(key, false);
            Ok(())
        }
        fn poison_outputs(&self, key: Key) {
            self.poisoned.replace(key, true);
        }
    }
}

/// Directory failing campaigns dump their JSON reports into.
pub fn failure_dump_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/oracle-failures")
}

/// Run the FT scheduler over `graph` on a deterministic pool seeded with
/// `schedule_seed`, recording a trace. Returns the scheduler (for value /
/// exec-count inspection), the trace, and the run report.
pub fn det_traced_run(
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    schedule_seed: u64,
) -> (Arc<FtScheduler>, Arc<Trace>, RunReport) {
    let trace = Arc::new(Trace::new());
    let sched = FtScheduler::with_plan_traced(graph, plan, Arc::clone(&trace));
    let pool = ft_det::DetPool::new(schedule_seed);
    let report = sched.run(&pool);
    (sched, trace, report)
}

/// Like [`det_traced_run`] but with explicit scheduler options (priority
/// pop order, deadline monitoring). With `SchedOpts::default()` this is
/// exactly `det_traced_run`; campaigns use it to run the same
/// `(graph, plan, seed)` triple under both pop orders.
pub fn det_traced_run_opts(
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    schedule_seed: u64,
    opts: SchedOpts,
) -> (Arc<FtScheduler>, Arc<Trace>, RunReport) {
    let trace = Arc::new(Trace::new());
    let sched = FtScheduler::with_opts(graph, plan, Some(Arc::clone(&trace)), opts);
    let pool = ft_det::DetPool::new(schedule_seed);
    let report = sched.run(&pool);
    (sched, trace, report)
}

/// Like [`det_traced_run`] but on an arbitrary executor (typically a real
/// work-stealing pool). Traces recorded this way must be validated in
/// [`OracleMode::Concurrent`]: emission order between threads is not
/// authoritative.
pub fn traced_run_on(
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    exec: &dyn ft_steal::pool::Executor,
) -> (Arc<FtScheduler>, Arc<Trace>, RunReport) {
    traced_run_on_opts(graph, plan, exec, SchedOpts::default())
}

/// [`traced_run_on`] with explicit scheduler options (priority pop order,
/// deadline monitoring).
pub fn traced_run_on_opts(
    graph: Arc<dyn TaskGraph>,
    plan: Arc<FaultPlan>,
    exec: &dyn ft_steal::pool::Executor,
    opts: SchedOpts,
) -> (Arc<FtScheduler>, Arc<Trace>, RunReport) {
    let trace = Arc::new(Trace::new());
    let sched = FtScheduler::with_opts(graph, plan, Some(Arc::clone(&trace)), opts);
    let report = sched.run(exec);
    (sched, trace, report)
}

/// Validate a recorded trace against the guarantee oracle plus any extra
/// violations the caller collected (e.g. result-equivalence); on failure,
/// write a replayable JSON report and panic with its path and the seed.
#[allow(clippy::too_many_arguments)]
pub fn assert_oracle_clean(
    label: &str,
    schedule_seed: u64,
    plan: &FaultPlan,
    graph: &dyn TaskGraph,
    trace: &Trace,
    report: &RunReport,
    mode: OracleMode,
    extra: Vec<Violation>,
) {
    let events = trace.events();
    let mut violations = check_trace(graph, &events, report, mode);
    violations.extend(extra);
    if violations.is_empty() {
        return;
    }
    let sites = plan.sites();
    let failure = FailureReport {
        label: label.to_string(),
        seed: schedule_seed,
        sites: &sites,
        violations: &violations,
        events: &events,
    };
    let dir = failure_dump_dir();
    match failure.write_to(&dir) {
        Ok(path) => panic!(
            "oracle violations in '{label}' (schedule seed {schedule_seed}, \
             {} fault sites); report dumped to {}:\n{}",
            sites.len(),
            path.display(),
            render_violations(&violations),
        ),
        Err(e) => panic!(
            "oracle violations in '{label}' (schedule seed {schedule_seed}) \
             — report dump to {} failed ({e}):\n{}\n{}",
            dir.display(),
            render_violations(&violations),
            failure.to_json(),
        ),
    }
}

/// Run the trace oracle and *return* the violations instead of panicking
/// (used by the mutation test, which expects them).
pub fn oracle_violations(
    graph: &dyn TaskGraph,
    trace: &Trace,
    report: &RunReport,
    mode: OracleMode,
) -> Vec<Violation> {
    check_trace(graph, &trace.events(), report, mode)
}

fn render_violations(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  - {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}
