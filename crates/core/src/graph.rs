//! The user-facing task-graph specification.
//!
//! Section III of the paper: "the fault-tolerant scheduling algorithm relies
//! on the following information from the user about the task graph": a
//! unique **task key** per task, the **sink task**, ordered **predecessor
//! and successor** functions, and a **compute** function. This module is
//! that contract.

use crate::fault::Fault;

/// Unique identifier of a task. The paper fixes `int64_t`.
pub type Key = i64;

/// Context handed to [`TaskGraph::compute`].
///
/// Carries runtime facts a compute function may want: which incarnation
/// (life number) is executing, whether this execution is a recovery
/// re-execution, and the worker running it. Applications read/write their
/// data blocks through their own [`crate::blocks::BlockStore`]; detected
/// data faults are reported back by returning `Err` (the paper's
/// "errors are reported back to the runtime through exceptions").
#[derive(Debug, Clone, Copy)]
pub struct ComputeCtx<'a> {
    /// Life number of the incarnation being executed (1 = original).
    pub life: u64,
    /// True when this execution was started by the recovery path.
    pub is_recovery: bool,
    /// Index of the executing worker, if run on a pool worker.
    pub worker: Option<usize>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> ComputeCtx<'a> {
    /// Construct a context (used by the schedulers and the sequential
    /// executor).
    pub fn new(life: u64, is_recovery: bool, worker: Option<usize>) -> Self {
        ComputeCtx {
            life,
            is_recovery,
            worker,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A dynamic task graph, specified exactly as the paper's Section III
/// requires.
///
/// Implementations must be deterministic: `predecessors`/`successors` must
/// return the same ordered lists for the same key every time (the
/// notification bit vector indexes into the ordered predecessor list), and
/// `compute` must be **stateless** — the same inputs produce the same
/// outputs (Theorem 1 relies on this).
pub trait TaskGraph: Send + Sync {
    /// The unique task that transitively depends on all others.
    fn sink(&self) -> Key;

    /// Ordered list of immediate predecessors of `key`.
    fn predecessors(&self, key: Key) -> Vec<Key>;

    /// Write the ordered predecessors of `key` into `out` (cleared first).
    ///
    /// The schedulers call this on their descriptor-creation hot path with
    /// a reused scratch buffer, so a graph that overrides it to push
    /// directly into `out` pays **zero** allocations per descriptor; the
    /// default falls back to [`TaskGraph::predecessors`] and inherits its
    /// one `Vec` per call.
    fn predecessors_into(&self, key: Key, out: &mut Vec<Key>) {
        out.clear();
        out.extend(self.predecessors(key));
    }

    /// Ordered list of immediate successors of `key`. Only consulted by the
    /// recovery path (`RecoverTask` walks successors to rebuild the notify
    /// array) and by graph analysis.
    fn successors(&self, key: Key) -> Vec<Key>;

    /// Number of immediate successors of `key` — the notify-cell capacity
    /// of its descriptor (each successor registers at most once outside
    /// recovery).
    ///
    /// The schedulers call this once per descriptor creation; the default
    /// materializes [`TaskGraph::successors`] and inherits its `Vec`
    /// allocation, so hot graphs should override it with a direct count.
    fn out_degree(&self, key: Key) -> usize {
        self.successors(key).len()
    }

    /// The task body. Reads this task's input data blocks, writes its
    /// output blocks. A detected fault in an input (poisoned or evicted
    /// block version) is returned as `Err(fault)` carrying the *source*
    /// task whose data is corrupt.
    fn compute(&self, key: Key, ctx: &ComputeCtx<'_>) -> Result<(), Fault>;

    /// Poison every data-block version this task has produced. Called by
    /// the fault injector when a planned fault fires on `key` ("a fault
    /// affects both a task and the data blocks it has computed"). Default:
    /// the graph has no block store.
    fn poison_outputs(&self, key: Key) {
        let _ = key;
    }

    /// Roots (tasks with no predecessors), if cheaply enumerable. Only used
    /// by diagnostics; default derives nothing.
    fn source_hint(&self) -> Option<Vec<Key>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line;
    impl TaskGraph for Line {
        fn sink(&self) -> Key {
            2
        }
        fn predecessors(&self, key: Key) -> Vec<Key> {
            if key == 0 {
                vec![]
            } else {
                vec![key - 1]
            }
        }
        fn successors(&self, key: Key) -> Vec<Key> {
            if key == 2 {
                vec![]
            } else {
                vec![key + 1]
            }
        }
        fn compute(&self, _key: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            Ok(())
        }
    }

    #[test]
    fn trait_object_safe() {
        let g: Box<dyn TaskGraph> = Box::new(Line);
        assert_eq!(g.sink(), 2);
        assert_eq!(g.predecessors(2), vec![1]);
        assert_eq!(g.successors(0), vec![1]);
        let mut scratch = vec![99, 98];
        g.predecessors_into(2, &mut scratch);
        assert_eq!(scratch, vec![1], "default predecessors_into clears out");
        assert_eq!(g.out_degree(0), 1, "default out_degree counts successors");
        assert_eq!(g.out_degree(2), 0);
        assert!(g.source_hint().is_none());
        g.poison_outputs(0); // default no-op
    }

    #[test]
    fn compute_ctx_fields() {
        let ctx = ComputeCtx::new(3, true, Some(7));
        assert_eq!(ctx.life, 3);
        assert!(ctx.is_recovery);
        assert_eq!(ctx.worker, Some(7));
    }
}
