//! Loom model tests for the lock-free core of the runtime: the Chase–Lev
//! deque's single-element pop/steal race and the `CountLatch` quiescence
//! protocol.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-steal --test loom_models
//! ```
//!
//! Under `--cfg loom` the deque and latch are compiled against
//! `loom::sync::atomic`, so every atomic operation is a model-exploration
//! point. `LOOM_MAX_ITERS` / `LOOM_SEED` control the exploration budget
//! and make failures replayable.
#![cfg(loom)]

use ft_steal::deque::{deque, Steal};
use ft_steal::latch::CountLatch;
use std::collections::HashSet;
use std::sync::Arc;

/// The classic Chase–Lev race: one element, owner popping at the bottom
/// while a thief steals at the top. Exactly one side may win; the element
/// must be neither lost nor duplicated.
#[test]
fn deque_single_element_pop_steal_race() {
    loom::model(|| {
        let (w, s) = deque::<u64>();
        w.push(42);
        let thief = loom::thread::spawn(move || loop {
            match s.steal() {
                Steal::Success(v) => break Some(v),
                Steal::Empty => break None,
                Steal::Retry => {}
            }
        });
        let popped = w.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(42), None) | (None, Some(42)) => {}
            other => panic!("element lost or duplicated: {other:?}"),
        }
    });
}

/// Bulk transfer: a thief drains from the top while the owner pops from
/// the bottom. Every pushed element is consumed by exactly one side.
#[test]
fn deque_concurrent_drain_no_loss_no_dup() {
    const N: u64 = 16;
    loom::model(|| {
        let (w, s) = deque::<u64>();
        for i in 0..N {
            w.push(i);
        }
        let thief = loom::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match s.steal() {
                    Steal::Success(v) => got.push(v),
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            }
            got
        });
        let mut popped = Vec::new();
        while let Some(v) = w.pop() {
            popped.push(v);
        }
        let stolen = thief.join().unwrap();
        // The thief may observe Empty while the owner still holds items,
        // but nothing may vanish or double up across the two sides.
        let mut seen = HashSet::new();
        for &v in popped.iter().chain(stolen.iter()) {
            assert!(seen.insert(v), "element {v} consumed twice");
        }
        assert_eq!(
            seen.len() as u64,
            N,
            "lost elements: popped {} + stolen {}",
            popped.len(),
            stolen.len()
        );
    });
}

/// CountLatch quiescence: concurrent decrements against a waiting thread.
/// The waiter must wake exactly when the count returns to zero, and the
/// latch must report quiescence afterwards.
#[test]
fn count_latch_concurrent_decrement_quiescence() {
    loom::model(|| {
        let l = Arc::new(CountLatch::new());
        for _ in 0..4 {
            l.increment();
        }
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                loom::thread::spawn(move || {
                    l.decrement();
                    l.decrement();
                })
            })
            .collect();
        l.wait();
        assert!(l.is_quiescent());
        assert_eq!(l.outstanding(), 0);
        for h in workers {
            h.join().unwrap();
        }
    });
}

/// Increment racing decrement: a scope that spawns one more job while the
/// previous one is finishing must not be observed as quiescent in between
/// if the new job is registered before the old one completes.
#[test]
fn count_latch_increment_before_decrement_keeps_scope_alive() {
    loom::model(|| {
        let l = Arc::new(CountLatch::new());
        l.increment(); // job A
        l.increment(); // job B registered before A finishes
        let l2 = Arc::clone(&l);
        let a = loom::thread::spawn(move || {
            l2.decrement(); // A completes
        });
        // Even with A's decrement in flight, B is still outstanding.
        assert!(!l.is_quiescent(), "latch tripped with a job outstanding");
        l.decrement(); // B completes
        a.join().unwrap();
        l.wait();
        assert!(l.is_quiescent());
    });
}
