//! The baseline NABBIT scheduler — Figure 2, non-shaded portions only.
//!
//! Execution begins by inserting the **sink** task and invoking
//! `InitAndCompute` on it. The traversal expands the task graph bottom-up
//! (toward the sources): `TryInitCompute` creates each predecessor on first
//! touch and either registers the current task in the predecessor's notify
//! array (predecessor not yet computed) or directly notifies the current
//! task. A task whose join counter reaches zero runs `ComputeAndNotify`,
//! which executes the user compute function and drains the notify array.
//!
//! Every traversal step is a work-stealing job ("the creation and
//! computation of the predecessors of a given task are concurrent and can
//! be executed by different threads").

use crate::graph::{ComputeCtx, Key, TaskGraph};
use crate::metrics::{RunMetrics, RunReport};
use crate::task::{BaseDesc, Status};
use ft_cmap::ShardedMap;
use ft_steal::pool::{Executor, Scope};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The non-fault-tolerant NABBIT scheduler.
pub struct BaselineScheduler {
    graph: Arc<dyn TaskGraph>,
    map: ShardedMap<Arc<BaseDesc>>,
    metrics: RunMetrics,
}

impl BaselineScheduler {
    /// Create a scheduler for `graph`. One scheduler instance = one run.
    pub fn new(graph: Arc<dyn TaskGraph>) -> Arc<Self> {
        Arc::new(BaselineScheduler {
            graph,
            map: ShardedMap::new(),
            metrics: RunMetrics::new(),
        })
    }

    /// Execute the task graph to completion on `exec`; returns run
    /// statistics. Panics if any compute returns a fault — the baseline
    /// scheduler, like the paper's, has no recovery path.
    pub fn run(self: &Arc<Self>, exec: &dyn Executor) -> RunReport {
        let start = Instant::now();
        let sink = self.graph.sink();
        self.insert_if_absent(sink);
        let sd = self.map.get(sink).expect("sink just inserted");
        let this = Arc::clone(self);
        let root = Arc::clone(&sd);
        exec.execute_job(Box::new(move |scope: &Scope<'_>| {
            scope.spawn(move |s| this.init_and_compute(s, root));
        }));
        let mut report = self.metrics.snapshot();
        report.sink_completed = self
            .map
            .get(sink)
            .map(|d| d.status() == Status::Completed)
            .unwrap_or(false);
        report.elapsed = start.elapsed();
        report
    }

    /// Number of task descriptors created (diagnostics).
    pub fn tasks_created(&self) -> usize {
        self.map.len()
    }

    fn insert_if_absent(&self, key: Key) -> bool {
        self.map.insert_if_absent(key, || {
            Arc::new(BaseDesc::new(key, self.graph.predecessors(key)))
        })
    }

    /// `InitAndCompute(A)`: traverse immediate predecessors, then
    /// self-notify (consuming the `+1` in the join counter).
    fn init_and_compute(self: &Arc<Self>, s: &Scope<'_>, a: Arc<BaseDesc>) {
        for pkey in a.preds.clone() {
            let this = Arc::clone(self);
            let a2 = Arc::clone(&a);
            s.spawn(move |s| this.try_init_compute(s, a2, pkey));
        }
        let key = a.key;
        self.notify_once(s, a, key);
    }

    /// `TryInitCompute(A, pkey)`: create/visit predecessor `pkey`; register
    /// A for notification or observe completion.
    fn try_init_compute(self: &Arc<Self>, s: &Scope<'_>, a: Arc<BaseDesc>, pkey: Key) {
        let inserted = self.insert_if_absent(pkey);
        let b = self.map.get(pkey).expect("predecessor just ensured");
        if inserted {
            let this = Arc::clone(self);
            let b2 = Arc::clone(&b);
            s.spawn(move |s| this.init_and_compute(s, b2));
        }
        let finished = {
            // The status read must happen under B's notify lock: it pairs
            // with ComputeAndNotify's locked length re-check so a
            // registration can never be missed.
            let mut g = b.notify.lock();
            if b.status() < Status::Computed {
                g.push(a.key);
                false
            } else {
                true
            }
        };
        if finished {
            self.notify_once(s, a, pkey);
        }
    }

    /// `NotifyOnce(A, pkey)`: decrement the join counter; execute A when it
    /// reaches zero.
    fn notify_once(self: &Arc<Self>, s: &Scope<'_>, a: Arc<BaseDesc>, _pkey: Key) {
        self.metrics.notifications.fetch_add(1, Ordering::Relaxed);
        let val = a.join.fetch_sub(1, Ordering::AcqRel) - 1;
        debug_assert!(
            val >= 0,
            "baseline join counter underflow on task {}",
            a.key
        );
        if val == 0 {
            self.compute_and_notify(s, a);
        }
    }

    /// `ComputeAndNotify(A)`: run the user compute, transition to Computed,
    /// drain the notify array, transition to Completed.
    fn compute_and_notify(self: &Arc<Self>, s: &Scope<'_>, a: Arc<BaseDesc>) {
        let ctx = ComputeCtx::new(1, false, s.worker_index());
        self.graph
            .compute(a.key, &ctx)
            .unwrap_or_else(|f| panic!("baseline scheduler has no recovery path: {f}"));
        self.metrics.record_compute(a.key);
        a.set_status(Status::Computed);

        let mut notified = 0usize;
        loop {
            let batch: Vec<Key> = {
                let g = a.notify.lock();
                g[notified..].to_vec()
            };
            for skey in &batch {
                let this = Arc::clone(self);
                let skey = *skey;
                let key = a.key;
                s.spawn(move |s| this.notify_successor(s, key, skey));
            }
            notified += batch.len();
            let g = a.notify.lock();
            if g.len() == notified {
                a.set_status(Status::Completed);
                return;
            }
        }
    }

    /// `NotifySuccessor(key, skey)`.
    fn notify_successor(self: &Arc<Self>, s: &Scope<'_>, key: Key, skey: Key) {
        let Some(sd) = self.map.get(skey) else {
            debug_assert!(false, "successor {skey} vanished from the task map");
            return;
        };
        self.notify_once(s, sd, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use ft_steal::pool::{Pool, PoolConfig};
    use parking_lot::Mutex;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    /// A 2-D wavefront grid graph: (i,j) depends on (i-1,j) and (i,j-1);
    /// sink is (n-1, n-1); key = i*n + j.
    struct Grid {
        n: i64,
        computed: Mutex<Vec<Key>>,
    }

    impl Grid {
        fn new(n: i64) -> Self {
            Grid {
                n,
                computed: Mutex::new(Vec::new()),
            }
        }
    }

    impl TaskGraph for Grid {
        fn sink(&self) -> Key {
            self.n * self.n - 1
        }
        fn predecessors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut p = Vec::new();
            if i > 0 {
                p.push((i - 1) * self.n + j);
            }
            if j > 0 {
                p.push(i * self.n + (j - 1));
            }
            p
        }
        fn successors(&self, k: Key) -> Vec<Key> {
            let (i, j) = (k / self.n, k % self.n);
            let mut su = Vec::new();
            if i + 1 < self.n {
                su.push((i + 1) * self.n + j);
            }
            if j + 1 < self.n {
                su.push(i * self.n + (j + 1));
            }
            su
        }
        fn compute(&self, k: Key, _ctx: &ComputeCtx<'_>) -> Result<(), Fault> {
            self.computed.lock().push(k);
            Ok(())
        }
    }

    fn run_grid(n: i64, threads: usize) -> (Arc<Grid>, RunReport) {
        let g = Arc::new(Grid::new(n));
        let pool = Pool::new(PoolConfig::with_threads(threads));
        let sched = BaselineScheduler::new(Arc::clone(&g) as Arc<dyn TaskGraph>);
        let report = sched.run(&pool);
        (g, report)
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let (g, report) = run_grid(16, 4);
        let order = g.computed.lock();
        assert_eq!(order.len(), 256);
        let unique: HashSet<_> = order.iter().collect();
        assert_eq!(unique.len(), 256, "no task executed twice");
        assert!(report.sink_completed);
        assert_eq!(report.computes, 256);
        assert_eq!(report.re_executions, 0);
    }

    #[test]
    fn respects_dependence_order() {
        let (g, _) = run_grid(8, 4);
        let order = g.computed.lock();
        let pos: std::collections::HashMap<Key, usize> =
            order.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        for &k in order.iter() {
            for p in g.predecessors(k) {
                assert!(pos[&p] < pos[&k], "pred {p} must precede {k}");
            }
        }
    }

    #[test]
    fn single_task_graph() {
        struct One(AtomicU64);
        impl TaskGraph for One {
            fn sink(&self) -> Key {
                0
            }
            fn predecessors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn successors(&self, _: Key) -> Vec<Key> {
                vec![]
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
        let g = Arc::new(One(AtomicU64::new(0)));
        let pool = Pool::new(PoolConfig::with_threads(2));
        let sched = BaselineScheduler::new(Arc::clone(&g) as _);
        let report = sched.run(&pool);
        assert!(report.sink_completed);
        assert_eq!(g.0.load(Ordering::Relaxed), 1);
        assert_eq!(sched.tasks_created(), 1);
    }

    #[test]
    fn chain_graph_sequential_dependences() {
        struct Chain {
            len: i64,
            acc: AtomicU64,
        }
        impl TaskGraph for Chain {
            fn sink(&self) -> Key {
                self.len - 1
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                if k == 0 {
                    vec![]
                } else {
                    vec![k - 1]
                }
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                if k == self.len - 1 {
                    vec![]
                } else {
                    vec![k + 1]
                }
            }
            fn compute(&self, k: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                // Monotone check: k-th task sees exactly k prior computes.
                let prev = self.acc.fetch_add(1, Ordering::SeqCst);
                assert_eq!(prev, k as u64, "chain executed out of order");
                Ok(())
            }
        }
        let g = Arc::new(Chain {
            len: 200,
            acc: AtomicU64::new(0),
        });
        let pool = Pool::new(PoolConfig::with_threads(4));
        let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 200);
    }

    #[test]
    fn wide_fanin_graph() {
        // Sink depends on 500 sources: stresses the notify array and the
        // join counter contention path.
        struct Fan {
            width: i64,
        }
        impl TaskGraph for Fan {
            fn sink(&self) -> Key {
                self.width
            }
            fn predecessors(&self, k: Key) -> Vec<Key> {
                if k == self.width {
                    (0..self.width).collect()
                } else {
                    vec![]
                }
            }
            fn successors(&self, k: Key) -> Vec<Key> {
                if k == self.width {
                    vec![]
                } else {
                    vec![self.width]
                }
            }
            fn compute(&self, _: Key, _: &ComputeCtx<'_>) -> Result<(), Fault> {
                Ok(())
            }
        }
        let g = Arc::new(Fan { width: 500 });
        let pool = Pool::new(PoolConfig::with_threads(8));
        let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
        assert!(report.sink_completed);
        assert_eq!(report.computes, 501);
    }

    #[test]
    fn repeated_runs_fresh_scheduler() {
        let pool = Pool::new(PoolConfig::with_threads(4));
        for _ in 0..3 {
            let g = Arc::new(Grid::new(10));
            let report = BaselineScheduler::new(Arc::clone(&g) as _).run(&pool);
            assert!(report.sink_completed);
            assert_eq!(report.computes, 100);
        }
    }
}
