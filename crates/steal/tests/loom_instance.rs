//! Loom models for the per-instance (epoch) admission/completion
//! handshake introduced with the graph service:
//!
//! * the [`AdmissionGate`] never admits past its limit under racing
//!   `try_acquire` calls, and a released slot is re-acquirable;
//! * the latch-tripping decrement is reported to exactly one caller (the
//!   foundation of the once-only quiesce hook);
//! * a waiter that observes an instance as done is guaranteed the quiesce
//!   hook (slot release) has already run — the ordering the service's
//!   backpressure accounting relies on.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p ft-steal --test loom_instance
//! ```
#![cfg(loom)]

use ft_steal::instance::{instance_root, AdmissionGate};
use ft_steal::latch::CountLatch;
use ft_steal::pool::{Job, Scope, SpawnHost};
use std::sync::Arc;

/// Two threads race for the last slot: exactly one wins.
#[test]
fn gate_single_slot_race_admits_exactly_one() {
    loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1));
        let g1 = Arc::clone(&gate);
        let t = loom::thread::spawn(move || g1.try_acquire().is_ok());
        let mine = gate.try_acquire().is_ok();
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "one slot, two acquirers: exactly one must win (mine={mine}, theirs={theirs})"
        );
        assert_eq!(gate.in_flight(), 1);
        gate.release();
        assert_eq!(gate.in_flight(), 0);
    });
}

/// Release racing a fresh acquire: whether the acquirer wins or loses,
/// the occupancy stays consistent with the outcome.
#[test]
fn gate_release_reopens_slot_consistently() {
    loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1));
        gate.try_acquire().expect("empty gate admits");
        let g1 = Arc::clone(&gate);
        let releaser = loom::thread::spawn(move || g1.release());
        let won = gate.try_acquire().is_ok();
        releaser.join().unwrap();
        assert_eq!(
            gate.in_flight(),
            won as u64,
            "occupancy must match the acquire outcome"
        );
    });
}

/// The 1 → 0 latch transition is reported to exactly one decrementer —
/// what makes the instance quiesce hook fire once and only once.
#[test]
fn latch_trip_reported_exactly_once() {
    loom::model(|| {
        let l = Arc::new(CountLatch::new());
        l.increment();
        l.increment();
        let l2 = Arc::clone(&l);
        let t = loom::thread::spawn(move || l2.decrement() as usize);
        let mine = l.decrement() as usize;
        let theirs = t.join().unwrap();
        assert_eq!(mine + theirs, 1, "exactly one decrement reports the trip");
        assert!(l.is_quiescent());
    });
}

/// Host for a root job that spawns nothing (the model executes the
/// wrapped job directly on a model thread).
struct NullHost;

impl SpawnHost for NullHost {
    fn spawn_job(&self, _job: Job) {
        unreachable!("model root spawns nothing");
    }
    fn num_threads(&self) -> usize {
        1
    }
    fn worker_index(&self) -> Option<usize> {
        Some(0)
    }
}

/// The full handshake on the real instance machinery: a worker thread
/// finishes the instance's last job (hook releases the admission slot,
/// then the done flag is set) while the submitter polls. Any interleaving
/// where the submitter observes `is_done` must already see the slot
/// released — the service's invariant that completion implies a free slot.
#[test]
fn done_observation_implies_slot_released() {
    loom::model(|| {
        let gate = Arc::new(AdmissionGate::new(1));
        gate.try_acquire().expect("admit the instance");
        let g2 = Arc::clone(&gate);
        let (job, handle) = instance_root(Job::new(|_s| {}), Some(Box::new(move || g2.release())));
        let worker = loom::thread::spawn(move || {
            let host = NullHost;
            let scope = Scope::for_host(&host);
            job.run(&scope);
        });
        if handle.is_done() {
            assert_eq!(
                gate.in_flight(),
                0,
                "done observed before the quiesce hook released the slot"
            );
        }
        worker.join().unwrap();
        assert!(handle.is_done());
        assert_eq!(gate.in_flight(), 0);
        let stats = handle.stats();
        assert_eq!(stats.jobs_spawned, 1);
        assert_eq!(stats.jobs_executed, 1);
        assert_eq!(stats.panics, 0);
    });
}
